"""Tier-1 smoke of the benchmark entry points.

Runs the throughput bench plus one paper benchmark (the update path,
whose incremental install/remove claims this repo's churn fixes serve)
under pytest with ``--smoke`` (tiny synthetic inputs) and
``--benchmark-disable`` (each benchmark body executes exactly once), so
regressions in the benchmark harness itself surface in the fast suite
rather than on the next manual benchmark run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

SMOKE_TARGETS = [
    "benchmarks/bench_throughput.py",
    "benchmarks/bench_update.py",
]


def test_benchmarks_smoke_mode():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            *SMOKE_TARGETS,
            "--smoke",
            "--benchmark-disable",
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        "benchmark smoke run failed\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert " passed" in completed.stdout


def test_smoke_env_knob_matches_flag():
    """REPRO_BENCH_SMOKE=1 must enable smoke mode without the flag."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    env["REPRO_BENCH_SMOKE"] = "1"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_throughput.py::test_cached_batch_speedup",
            "--benchmark-disable",
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        "env-knob smoke run failed\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
