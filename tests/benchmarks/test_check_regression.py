"""The CI perf-regression gate must actually gate: a synthetic
regression in a speedup ratio fails the check, measurements inside the
tolerance band pass, and bench-mode churn (keys on one side only) never
blocks."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

import check_regression  # noqa: E402  (path set up above)


def write_record(path: Path, speedups: dict, streaming: dict | None = None) -> Path:
    record: dict = {"benchmark": "throughput", "speedups": speedups}
    if streaming is not None:
        record["streaming"] = streaming
    path.write_text(json.dumps(record))
    return path


def streaming_section(**overrides) -> dict:
    section = {
        "schedule": "bursty",
        "arrival_count": 2000,
        "shed_packets": 820,
        "shed_packets_rerun": 820,
        "p99_ticks": 40,
    }
    section.update(overrides)
    return section


BASELINE = {
    "cached_batch_vs_decomposition": 20.0,
    "pipelined_vs_serial_shm_small_batch": 1.1,
}


class TestRunChecks:
    def test_within_band_passes(self):
        checks = check_regression.run_checks(
            BASELINE,
            {
                # Smoke ratios legitimately sit below full-run ones; the
                # band absorbs that.
                "cached_batch_vs_decomposition": 6.0,
                "pipelined_vs_serial_shm_small_batch": 1.0,
            },
        )
        assert checks and all(check.ok for check in checks)

    def test_synthetic_regression_fails(self):
        """The demonstration the gate exists for: cached batch collapsing
        from 20x to 2x must trip the check."""
        checks = check_regression.run_checks(
            BASELINE,
            {
                "cached_batch_vs_decomposition": 2.0,
                "pipelined_vs_serial_shm_small_batch": 1.0,
            },
        )
        failed = [check for check in checks if not check.ok]
        assert [check.key for check in failed] == [
            "cached_batch_vs_decomposition"
        ]

    def test_key_churn_is_not_gated(self):
        """A mode only in the baseline (skipped in smoke) or only in the
        current run (newer than the committed record) is ignored."""
        checks = check_regression.run_checks(
            {"old_mode": 5.0, "shared": 2.0},
            {"new_mode": 0.01, "shared": 2.0},
        )
        assert [check.key for check in checks] == ["shared"]
        assert all(check.ok for check in checks)

    def test_absolute_floor_guards_near_unity_ratios(self):
        """Half of a ~1.0x baseline is vacuous; the absolute floor is
        what actually catches a transport turning into a slowdown."""
        checks = check_regression.run_checks(
            {"pipelined_vs_serial_shm_small_batch": 1.07},
            {"pipelined_vs_serial_shm_small_batch": 0.6},
        )
        (check,) = checks
        assert check.floor == pytest.approx(0.8)  # not 0.5 * 1.07
        assert not check.ok

    def test_floor_scales_with_tolerance(self):
        (check,) = check_regression.run_checks(
            {"k": 10.0}, {"k": 7.9}, tolerances={}, default_tolerance=0.8
        )
        assert check.floor == pytest.approx(8.0)
        assert not check.ok


class TestCli:
    def test_exit_codes_and_output(self, tmp_path, capsys):
        baseline = write_record(tmp_path / "baseline.json", BASELINE)
        good = write_record(
            tmp_path / "good.json",
            {"cached_batch_vs_decomposition": 8.0},
        )
        bad = write_record(
            tmp_path / "bad.json",
            {"cached_batch_vs_decomposition": 1.0},
        )
        ok = check_regression.main(
            ["--baseline", str(baseline), "--current", str(good)]
        )
        assert ok == 0
        assert "within tolerance" in capsys.readouterr().out

        failed = check_regression.main(
            ["--baseline", str(baseline), "--current", str(bad)]
        )
        assert failed == 1
        assert "FAIL cached_batch_vs_decomposition" in capsys.readouterr().out

    def test_tolerance_override(self, tmp_path):
        baseline = write_record(tmp_path / "baseline.json", {"k": 10.0})
        current = write_record(tmp_path / "current.json", {"k": 9.0})
        assert (
            check_regression.main(
                [
                    "--baseline",
                    str(baseline),
                    "--current",
                    str(current),
                    "--tolerance",
                    "0.95",
                ]
            )
            == 1
        )
        assert (
            check_regression.main(
                [
                    "--baseline",
                    str(baseline),
                    "--current",
                    str(current),
                    "--tolerance",
                    "0.8",
                ]
            )
            == 0
        )

    def test_empty_speedups_rejected(self, tmp_path):
        empty = write_record(tmp_path / "empty.json", {})
        with pytest.raises(SystemExit):
            check_regression.load_speedups(empty)

    def test_gate_passes_on_the_committed_record_itself(self):
        """Self-check: the committed baseline trivially satisfies its own
        bands (tolerances are all < 1)."""
        baseline = check_regression.load_speedups(
            check_regression.BASELINE_PATH
        )
        checks = check_regression.run_checks(baseline, baseline)
        assert checks and all(check.ok for check in checks)


class TestStreamingGate:
    def test_identical_sections_pass(self):
        section = streaming_section()
        failures, notes = check_regression.run_streaming_checks(
            section, section
        )
        assert failures == []
        assert any(note.startswith("ok   streaming p99") for note in notes)

    def test_shed_determinism_is_hard(self):
        """A rerun that sheds even one packet differently fails with no
        tolerance — same seed must shed identically."""
        failures, _ = check_regression.run_streaming_checks(
            streaming_section(),
            streaming_section(shed_packets=820, shed_packets_rerun=821),
        )
        assert len(failures) == 1
        assert "not deterministic" in failures[0]

    def test_p99_band(self):
        ok_failures, _ = check_regression.run_streaming_checks(
            streaming_section(p99_ticks=40),
            streaming_section(p99_ticks=55),  # within 1.5x of 40
        )
        assert ok_failures == []
        bad_failures, _ = check_regression.run_streaming_checks(
            streaming_section(p99_ticks=40),
            streaming_section(p99_ticks=70),
        )
        assert len(bad_failures) == 1
        assert "p99 regressed" in bad_failures[0]

    def test_resized_schedule_skips_the_band(self):
        """Virtual-tick percentiles are only comparable on the same
        schedule; a resize skips the band but keeps the determinism
        check."""
        failures, notes = check_regression.run_streaming_checks(
            streaming_section(arrival_count=2000),
            streaming_section(
                arrival_count=4000, p99_ticks=900, shed_packets_rerun=821
            ),
        )
        assert len(failures) == 1  # determinism still gated
        assert any("schedule resized" in note for note in notes)

    def test_missing_sections_skip(self):
        failures, notes = check_regression.run_streaming_checks({}, {})
        assert failures == []
        assert any("no streaming section" in note for note in notes)
        failures, notes = check_regression.run_streaming_checks(
            {}, streaming_section()
        )
        assert failures == []
        assert any("baseline record has no streaming" in n for n in notes)

    def test_cli_fails_on_streaming_regression(self, tmp_path, capsys):
        """End-to-end: healthy speedups but a nondeterministic shed
        ledger must still exit 1."""
        baseline = write_record(
            tmp_path / "base.json", BASELINE, streaming_section()
        )
        current = write_record(
            tmp_path / "cur.json",
            {"cached_batch_vs_decomposition": 8.0},
            streaming_section(shed_packets_rerun=800),
        )
        assert check_regression.main(
            ["--baseline", str(baseline), "--current", str(current)]
        ) == 1
        assert "not deterministic" in capsys.readouterr().out

    def test_cli_passes_without_streaming_sections(self, tmp_path, capsys):
        """Records predating the streaming bench still gate cleanly."""
        baseline = write_record(tmp_path / "base.json", BASELINE)
        current = write_record(
            tmp_path / "cur.json",
            {"cached_batch_vs_decomposition": 8.0},
        )
        assert check_regression.main(
            ["--baseline", str(baseline), "--current", str(current)]
        ) == 0
        assert "skip streaming" in capsys.readouterr().out


class TestCpuStamps:
    def test_cpu_sensitive_key_skipped_across_hosts(self):
        """A sharded ratio recorded on 1 cpu must not gate (or excuse) a
        4-cpu runner — the key is skipped, not compared."""
        skipped: list[str] = []
        checks = check_regression.run_checks(
            {"sharded_vs_single": 0.24, "cached_batch_vs_decomposition": 20.0},
            {"sharded_vs_single": 0.1, "cached_batch_vs_decomposition": 8.0},
            baseline_cpus={
                "sharded_vs_single": 1,
                "cached_batch_vs_decomposition": 1,
            },
            current_cpus={
                "sharded_vs_single": 4,
                "cached_batch_vs_decomposition": 4,
            },
            skipped=skipped,
        )
        assert skipped == ["sharded_vs_single"]
        # The cpu-insensitive key is still gated across hosts.
        assert [check.key for check in checks] == [
            "cached_batch_vs_decomposition"
        ]

    def test_cpu_sensitive_key_gated_on_same_host(self):
        checks = check_regression.run_checks(
            {"sharded_vs_single": 2.0},
            {"sharded_vs_single": 0.1},
            baseline_cpus={"sharded_vs_single": 4},
            current_cpus={"sharded_vs_single": 4},
        )
        (check,) = checks
        assert not check.ok

    def test_load_record_stamps(self, tmp_path):
        path = tmp_path / "rec.json"
        path.write_text(
            json.dumps(
                {
                    "cpu_count": 2,
                    "speedups": {"a": 1.0, "sharded_vs_single": 0.5},
                    "speedup_cpus": {"sharded_vs_single": 8},
                }
            )
        )
        speedups, cpus = check_regression.load_record(path)
        assert speedups == {"a": 1.0, "sharded_vs_single": 0.5}
        # Per-key stamp wins; unstamped keys fall back to cpu_count.
        assert cpus == {"a": 2, "sharded_vs_single": 8}

    def test_main_passes_when_everything_cpu_skipped(self, tmp_path, capsys):
        baseline = write_record(
            tmp_path / "base.json",
            {"sharded_vs_single": 0.24},
        )
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps(
                {
                    "cpu_count": 4,
                    "speedups": {"sharded_vs_single": 0.1},
                }
            )
        )
        # Baseline has no cpu info at all -> stamp None vs 4 -> skip.
        assert check_regression.main(
            ["--baseline", str(baseline), "--current", str(current)]
        ) == 0
        out = capsys.readouterr().out
        assert "skip sharded_vs_single" in out

    def test_absolute_floor_survives_cpu_mismatch(self):
        """Transport-slowdown floors hold on any host: a cpu-mismatched
        pipelined ratio loses only its baseline-relative band."""
        checks = check_regression.run_checks(
            {"pipelined_vs_serial_shm_small_batch": 1.1},
            {"pipelined_vs_serial_shm_small_batch": 0.5},
            baseline_cpus={"pipelined_vs_serial_shm_small_batch": 1},
            current_cpus={"pipelined_vs_serial_shm_small_batch": 4},
        )
        (check,) = checks
        assert check.floor == pytest.approx(0.8)  # the absolute floor
        assert not check.ok
