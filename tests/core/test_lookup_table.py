"""Differential tests: the decomposition table vs the behavioural oracle.

The central correctness claim of the reproduction — the Fig. 1
architecture computes exactly OpenFlow highest-priority-match — is
checked here by running the same flow entries and the same packets
through :class:`OpenFlowLookupTable` and the linear
:class:`~repro.openflow.table.FlowTable`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_lookup_table
from repro.core.lookup_table import OpenFlowLookupTable
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.flow import FlowEntry
from repro.openflow.match import ExactMatch, Match, PrefixMatch, RangeMatch
from repro.openflow.table import FlowTable
from repro.util.bits import canonical_prefix, mask_of


def assert_tables_agree(rule_set: RuleSet, trace) -> None:
    decomposition = build_lookup_table(rule_set)
    oracle = FlowTable()
    for entry in rule_set.to_flow_entries():
        oracle.add(entry)
    for fields in trace:
        got = decomposition.lookup(fields)
        want = oracle.lookup(fields)
        if want is None:
            assert got is None, f"false positive on {fields}"
        else:
            assert got is not None, f"false negative on {fields}"
            assert got.priority == want.priority
            assert got.match == want.match


class TestAgainstOracle:
    def test_mac_set(self, small_mac_set, generator):
        matches = [r.to_match() for r in small_mac_set]
        trace = generator.field_trace(matches, 300, hit_rate=0.7)
        assert_tables_agree(small_mac_set, trace)

    def test_routing_set(self, small_routing_set, generator):
        matches = [r.to_match() for r in small_routing_set]
        trace = generator.field_trace(matches, 300, hit_rate=0.7)
        assert_tables_agree(small_routing_set, trace)

    def test_acl_set(self, small_acl_set, generator):
        matches = [r.to_match() for r in small_acl_set]
        trace = generator.field_trace(matches, 300, hit_rate=0.7)
        assert_tables_agree(small_acl_set, trace)

    def test_tiny_routing_exact_cases(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        cases = {
            (1, 0x0A141E05): 24,  # /24 wins
            (1, 0x0A140005): 16,  # /16 wins
            (1, 0x0A990000): 8,  # /8 wins
            (1, 0xC0000000): 0,  # default route
            (2, 0x0A141E05): 8,  # port 2 only has the /8
        }
        for (port, address), expected_priority in cases.items():
            hit = table.lookup({"in_port": port, "ipv4_dst": address})
            assert hit is not None and hit.priority == expected_priority

    def test_miss_when_port_unknown(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        assert table.lookup({"in_port": 9, "ipv4_dst": 0x0A141E05}) is None

    def test_full_tie_resolves_by_creation_order_not_install_order(self):
        """Two overlapping rules with equal priority *and* equal
        specificity (a near-full range quantises to 0 constrained bits,
        same as the empty match): the behavioural table breaks the tie
        by entry creation order, so the decomposition must too — even
        when the rules are installed in the opposite order."""
        first = FlowEntry.build(match=Match({}), priority=0)
        second = FlowEntry.build(
            match=Match({"tcp_dst": RangeMatch(low=80, high=65535, bits=16)}),
            priority=0,
        )
        packet = {"tcp_dst": 443}
        for install_order in ((first, second), (second, first)):
            oracle = FlowTable()
            decomposition = OpenFlowLookupTable(("tcp_dst",))
            for entry in install_order:
                oracle.add(entry)
                decomposition.add(entry)
            want = oracle.lookup(packet)
            got = decomposition.lookup(packet)
            assert want is first, "oracle must prefer the earlier-built entry"
            assert got is not None
            assert (got.match, got.priority) == (want.match, want.priority)


# Random two-field rule generator exercising prefix nesting + wildcards.
random_rules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # port (small domain -> overlap)
        st.tuples(
            st.integers(min_value=0, max_value=mask_of(32)),
            st.integers(min_value=0, max_value=32),
        ),
        st.booleans(),  # wildcard port?
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(random_rules, st.data())
def test_random_rule_sets_agree(specs, data):
    rule_set = RuleSet("h", Application.ROUTING, ("in_port", "ipv4_dst"))
    for port, (raw, length), wild_port in specs:
        value, length = canonical_prefix(raw, length, 32)
        fields = {"ipv4_dst": PrefixMatch(value=value, length=length, bits=32)}
        if not wild_port:
            fields["in_port"] = ExactMatch(value=port, bits=32)
        rule_set.add(Rule(fields=fields, priority=length))

    port = data.draw(st.integers(min_value=0, max_value=3))
    address = data.draw(st.integers(min_value=0, max_value=mask_of(32)))
    # Bias probes toward stored prefixes so hits are common.
    if specs and data.draw(st.booleans()):
        _, (raw, length), _ = data.draw(st.sampled_from(specs))
        value, length = canonical_prefix(raw, length, 32)
        address = value | (address & mask_of(32 - length))

    trace = [{"in_port": port, "ipv4_dst": address}]
    assert_tables_agree(rule_set, trace)


class TestManagement:
    def test_schema_enforced(self):
        table = OpenFlowLookupTable(("in_port",))
        with pytest.raises(ValueError):
            table.add(FlowEntry.build(match=Match.exact(eth_type=5)))

    def test_add_replaces_same_match_priority(self):
        table = OpenFlowLookupTable(("in_port",))
        table.add(FlowEntry.build(match=Match.exact(in_port=1), priority=1))
        table.add(FlowEntry.build(match=Match.exact(in_port=1), priority=1))
        assert len(table) == 1

    def test_remove_clears_structures(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        for rule in tiny_routing_set:
            assert table.remove(rule.to_match(), rule.priority)
        assert len(table) == 0
        assert table.lookup({"in_port": 1, "ipv4_dst": 0x0A141E05}) is None
        assert all(
            len(engine.trie) == 0 for engine in table.tries().values()
        )
        assert all(len(engine.lut) == 0 for engine in table.luts().values())

    def test_remove_keeps_shared_entries(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        # Two rules share the 10/8 prefix (ports 1 and 2); removing one
        # must keep the trie entry alive for the other.
        rule = tiny_routing_set.rules[0]  # port 1, 10/8
        assert table.remove(rule.to_match(), rule.priority)
        hit = table.lookup({"in_port": 2, "ipv4_dst": 0x0A000001})
        assert hit is not None and hit.priority == 8

    def test_remove_where(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        removed = table.remove_where(lambda e: e.priority == 8)
        assert removed == 2
        assert len(table) == len(tiny_routing_set) - 2

    def test_remove_missing_false(self):
        table = OpenFlowLookupTable(("in_port",))
        assert not table.remove(Match.exact(in_port=1), 5)

    def test_iteration_and_miss_entry(self):
        table = OpenFlowLookupTable(("in_port",))
        miss = FlowEntry.build(match=Match({}), priority=0)
        table.add(miss)
        table.add(FlowEntry.build(match=Match.exact(in_port=1), priority=1))
        assert table.table_miss_entry is miss
        assert len(list(iter(table))) == 2

    def test_counters(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        table.lookup({"in_port": 1, "ipv4_dst": 0x0A141E05})
        table.lookup({"in_port": 9, "ipv4_dst": 0})
        assert table.lookup_count == 2 and table.matched_count == 1

    def test_search_exposes_labels(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        result = table.search({"in_port": 1, "ipv4_dst": 0x0A141E05})
        assert result.matched
        assert len(result.label_sets) == 3  # in_port, ip/hi, ip/lo
        # hi labels: the /8 entry plus (0x0A14, 16) — shared by the /16
        # and /24 rules, stored (and labelled) once by the label method.
        assert len(result.label_sets[1]) == 2

    def test_range_engines_accessor(self, small_acl_set):
        table = build_lookup_table(small_acl_set)
        assert set(table.range_engines()) == {"tcp_src", "tcp_dst"}


class TestChurn:
    """Action-table and index behaviour under add/remove churn."""

    def entry(self, port: int, priority: int = 1) -> FlowEntry:
        return FlowEntry.build(
            match=Match.exact(in_port=port), priority=priority
        )

    def test_replacement_reuses_action_slot(self):
        table = OpenFlowLookupTable(("in_port",))
        for _ in range(50):
            table.add(self.entry(1))
        assert len(table) == 1
        # Same-match replacement releases the old slot before allocating,
        # so the array never exceeds the live entry count by more than
        # the transient slot.
        assert table.actions.allocated_slots <= 2
        assert table.actions.free_slots <= 1

    def test_remove_reinstall_bounds_action_table(self):
        table = OpenFlowLookupTable(("in_port",))
        entries = [self.entry(port) for port in range(20)]
        for e in entries:
            table.add(e)
        for _ in range(10):
            for e in entries:
                assert table.remove(e.match, e.priority)
            for e in entries:
                table.add(e)
        assert len(table) == 20
        assert table.actions.allocated_slots == 20
        assert table.actions.free_slots == 0

    def test_free_slots_reported(self):
        from repro.memory.report import table_memory_report

        table = OpenFlowLookupTable(("in_port",))
        for port in range(8):
            table.add(self.entry(port))
        table.remove_where(lambda e: True)
        assert table.actions.free_slots == 8
        report = table_memory_report(table)
        by_name = {s.name: s for s in report.structures}
        assert by_name["actions"].entries == 0
        assert by_name["actions (free)"].entries == 8
        assert (
            by_name["actions (free)"].bits
            == 8 * table.actions.entry_bits
        )

    def test_shadowed_duplicate_removal_restores_survivor(self):
        # Two entries with the identical match region map to the same
        # label tuple; removing the higher-priority one must fall back to
        # the survivor, not keep serving a stale action index.
        table = OpenFlowLookupTable(("in_port",))
        low = self.entry(1, priority=1)
        high = self.entry(1, priority=2)
        table.add(low)
        table.add(high)
        assert table.lookup({"in_port": 1}) is high
        assert table.remove(high.match, high.priority)
        hit = table.lookup({"in_port": 1})
        assert hit is low

    def test_bulk_remove_where_scales(self):
        # The dict-backed installed set makes bulk deletion linear; this
        # is a smoke-scale check that 2k removals complete instantly.
        table = OpenFlowLookupTable(("in_port",))
        for port in range(2000):
            table.add(self.entry(port))
        assert table.remove_where(lambda e: True) == 2000
        assert len(table) == 0
        assert table.actions.free_slots == 2000


class TestBatchLookup:
    def test_search_batch_matches_scalar(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        trace = [
            {"in_port": 1, "ipv4_dst": 0x0A141E05},
            {"in_port": 1, "ipv4_dst": 0x0A141E05},  # duplicate header
            {"in_port": 2, "ipv4_dst": 0x0A141E05},
            {"in_port": 9, "ipv4_dst": 0x0A141E05},  # miss
            {"in_port": 1},  # field absent entirely
        ]
        batch = table.lookup_batch(trace)
        reference = build_lookup_table(tiny_routing_set)
        scalar = [reference.lookup(f) for f in trace]
        for got, want in zip(batch, scalar):
            assert (got is None) == (want is None)
            if want is not None:
                assert got.match == want.match
                assert got.priority == want.priority

    def test_batch_counters_count_every_packet(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        fields = {"in_port": 1, "ipv4_dst": 0x0A141E05}
        table.lookup_batch([fields] * 5)
        assert table.lookup_count == 5
        assert table.matched_count == 5
        hit = table.lookup(fields)
        assert hit.stats.packet_count == 6

    def test_field_engine_search_batch_matches_scalar(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        engine = table.engines["ipv4_dst"]
        keys_batch = [
            table.partitioner.extract(f)
            for f in (
                {"in_port": 1, "ipv4_dst": 0x0A141E05},
                {"in_port": 1, "ipv4_dst": 0x0A141E05},  # duplicate
                {"in_port": 2, "ipv4_dst": 0xC0000001},
                {"in_port": 1},
            )
        ]
        memo: dict = {}
        batched = engine.search_batch(keys_batch, memo)
        assert batched == [engine.search(keys) for keys in keys_batch]
        # every unique (partition, key) was memoized exactly once
        assert len(memo) == len(
            {
                (e.name, keys.get(e.name))
                for keys in keys_batch
                for e in engine.engines
            }
        )

    def test_extract_batch_matches_scalar_extract(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        partitioner = table.partitioner
        trace = [
            {"in_port": 3, "ipv4_dst": 0xDEADBEEF},
            {"in_port": 0},
            {},
        ]
        rows = partitioner.extract_batch(trace)
        assert len(rows) == len(trace)
        for fields, row in zip(trace, rows):
            scalar = partitioner.extract(fields)
            assert row == tuple(
                scalar[name] for name in partitioner.partition_names
            )
