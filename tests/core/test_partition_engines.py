"""Tests for the header partitioner and per-field engines."""

import pytest

from repro.algorithms.base import NO_LABEL
from repro.core.config import ArchitectureConfig
from repro.core.field_engine import (
    LutPartitionEngine,
    MetadataEngine,
    RangePartitionEngine,
    TriePartitionEngine,
    build_field_engine,
)
from repro.core.partition import HeaderPartitioner
from repro.openflow.match import (
    ExactMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)


class TestHeaderPartitioner:
    def test_partition_names(self):
        partitioner = HeaderPartitioner(("vlan_vid", "eth_dst"))
        assert partitioner.partition_names == (
            "vlan_vid",
            "eth_dst/hi",
            "eth_dst/mid",
            "eth_dst/lo",
        )

    def test_extract_slices_prefix_fields(self):
        partitioner = HeaderPartitioner(("in_port", "ipv4_dst"))
        keys = partitioner.extract({"in_port": 3, "ipv4_dst": 0x0A141E28})
        assert keys == {
            "in_port": 3,
            "ipv4_dst/hi": 0x0A14,
            "ipv4_dst/lo": 0x1E28,
        }

    def test_missing_field_yields_none(self):
        partitioner = HeaderPartitioner(("in_port", "ipv4_dst"))
        keys = partitioner.extract({"in_port": 3})
        assert keys["ipv4_dst/hi"] is None and keys["ipv4_dst/lo"] is None

    def test_exact_field_not_partitioned(self):
        """EM fields wider than 16 bits (in_port: 32) stay whole — they go
        to a LUT, not to tries."""
        partitioner = HeaderPartitioner(("in_port",))
        assert partitioner.partition_names == ("in_port",)
        assert partitioner.extract({"in_port": 0xABCD1234}) == {
            "in_port": 0xABCD1234
        }


class TestEngineConstruction:
    def test_prefix_field_gets_tries(self):
        engine = build_field_engine("eth_dst")
        assert all(isinstance(e, TriePartitionEngine) for e in engine.engines)
        assert len(engine.engines) == 3

    def test_exact_field_gets_lut(self):
        engine = build_field_engine("vlan_vid")
        assert isinstance(engine.engines[0], LutPartitionEngine)
        assert engine.engines[0].partition.bits == 13

    def test_range_field_gets_range_engine(self):
        engine = build_field_engine("tcp_dst")
        assert isinstance(engine.engines[0], RangePartitionEngine)

    def test_metadata_gets_identity(self):
        engine = build_field_engine("metadata")
        assert isinstance(engine.engines[0], MetadataEngine)

    def test_strides_follow_config(self):
        config = ArchitectureConfig(strides=(8, 8))
        engine = build_field_engine("ipv4_dst", config)
        assert engine.engines[0].trie.strides == (8, 8)


class TestInsertAndSearch:
    def test_trie_field_roundtrip(self):
        engine = build_field_engine("ipv4_dst")
        labels = engine.insert_rule(PrefixMatch(0x0A141E00, 24, 32))
        assert labels[0] != NO_LABEL and labels[1] != NO_LABEL
        sets = engine.search({"ipv4_dst/hi": 0x0A14, "ipv4_dst/lo": 0x1E55})
        assert labels[0] in sets[0] and labels[1] in sets[1]

    def test_trie_field_wildcard_partition(self):
        engine = build_field_engine("ipv4_dst")
        labels = engine.insert_rule(PrefixMatch(0x0A000000, 8, 32))
        assert labels[1] == NO_LABEL

    def test_repeated_value_same_label(self):
        engine = build_field_engine("ipv4_dst")
        a = engine.insert_rule(PrefixMatch(0x0A000000, 8, 32))
        b = engine.insert_rule(PrefixMatch(0x0A000000, 8, 32))
        assert a == b

    def test_lut_engine(self):
        engine = build_field_engine("vlan_vid")
        (label,) = engine.insert_rule(ExactMatch(0x1005, 13))
        assert engine.search({"vlan_vid": 0x1005}) == ((label,),)
        assert engine.search({"vlan_vid": 0x1006}) == ((),)
        assert engine.search({}) == ((),)

    def test_lut_rejects_prefix(self):
        engine = build_field_engine("vlan_vid")
        with pytest.raises(TypeError):
            engine.insert_rule(PrefixMatch(0x1000, 4, 13))

    def test_range_engine(self):
        engine = build_field_engine("tcp_dst")
        (label,) = engine.insert_rule(RangeMatch(0, 1023, 16))
        assert label in engine.search({"tcp_dst": 80})[0]
        assert engine.search({"tcp_dst": 2000}) == ((),)

    def test_range_engine_full_range_is_wildcard(self):
        engine = build_field_engine("tcp_dst")
        assert engine.insert_rule(RangeMatch(0, 65535, 16)) == (NO_LABEL,)

    def test_range_engine_exact_degenerates(self):
        engine = build_field_engine("tcp_dst")
        (label,) = engine.insert_rule(ExactMatch(80, 16))
        assert engine.search({"tcp_dst": 80}) == ((label,),)

    def test_wildcard_inserts_nothing(self):
        engine = build_field_engine("eth_dst")
        assert engine.insert_rule(WildcardMatch(48)) == (
            NO_LABEL,
            NO_LABEL,
            NO_LABEL,
        )
        assert all(e.entry_count() == 0 for e in engine.engines)


class TestMetadataEngine:
    def test_identity_semantics(self):
        engine = build_field_engine("metadata")
        assert engine.insert_rule(ExactMatch(5, 64)) == (5,)
        assert engine.search({"metadata": 5}) == ((5,),)

    def test_zero_metadata_is_miss(self):
        engine = build_field_engine("metadata")
        assert engine.search({"metadata": 0}) == ((),)
        assert engine.search({}) == ((),)

    def test_label_zero_rule_rejected(self):
        engine = build_field_engine("metadata")
        with pytest.raises(ValueError):
            engine.insert_rule(ExactMatch(0, 64))

    def test_non_exact_rejected(self):
        engine = build_field_engine("metadata")
        with pytest.raises(TypeError):
            engine.insert_rule(RangeMatch(0, 5, 64))
