"""Tests for the index calculation (DCFL-style aggregation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import IndexCalculator

label = st.integers(min_value=0, max_value=6)
rule_tuples = st.lists(
    st.tuples(label, label, label), min_size=0, max_size=30
)
label_set = st.lists(
    st.integers(min_value=1, max_value=6), max_size=4, unique=True
).map(tuple)


class TestBasics:
    def test_exact_hit(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 2), action_index=0, priority=5)
        assert index.lookup(((1,), (2,))) == 0

    def test_wildcard_partition(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 0), action_index=3, priority=5)
        assert index.lookup(((1,), (9,))) == 3
        assert index.lookup(((1,), ())) == 3

    def test_priority_selects_among_combinations(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 0), action_index=0, priority=1)
        index.add_rule((1, 2), action_index=1, priority=9)
        assert index.lookup(((1,), (2,))) == 1
        assert index.lookup(((1,), (7,))) == 0

    def test_miss(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=1)
        assert index.lookup(((2,),)) is None
        assert index.lookup(((),)) is None

    def test_duplicate_tuple_best_priority_wins(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=1)
        index.add_rule((1,), action_index=7, priority=9)
        assert index.lookup(((1,),)) == 7
        assert len(index) == 1

    def test_equal_priority_first_wins(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=5)
        index.add_rule((1,), action_index=9, priority=5)
        assert index.lookup(((1,),)) == 0

    def test_wrong_arity_rejected(self):
        index = IndexCalculator(("a", "b"))
        with pytest.raises(ValueError):
            index.add_rule((1,), action_index=0, priority=0)
        with pytest.raises(ValueError):
            index.lookup(((1,),))

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError):
            IndexCalculator(("a",)).add_rule((-1,), action_index=0, priority=0)

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            IndexCalculator(())


class TestRemoval:
    def test_remove_restores_miss(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 2), action_index=0, priority=5)
        assert index.remove_rule((1, 2))
        assert index.lookup(((1,), (2,))) is None
        assert len(index) == 0
        assert index.aggregation_sizes() == [0, 0]

    def test_remove_missing_false(self):
        assert not IndexCalculator(("a",)).remove_rule((1,))

    def test_refcounted_duplicates(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=5)
        index.add_rule((1,), action_index=1, priority=3)
        assert index.remove_rule((1,))
        assert index.lookup(((1,),)) is not None  # one reference left
        assert index.remove_rule((1,))
        assert index.lookup(((1,),)) is None

    def test_shared_prefixes_survive_partial_removal(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 2), action_index=0, priority=1)
        index.add_rule((1, 3), action_index=1, priority=1)
        index.remove_rule((1, 2))
        assert index.lookup(((1,), (3,))) == 1
        assert index.aggregation_sizes() == [1, 1]


class TestAggregationEquivalence:
    @settings(max_examples=150)
    @given(rule_tuples, label_set, label_set, label_set)
    def test_pruned_equals_naive(self, rules, set_a, set_b, set_c):
        index = IndexCalculator(("a", "b", "c"))
        for i, key in enumerate(rules):
            index.add_rule(key, action_index=i, priority=i % 7)
        query = (set_a, set_b, set_c)
        assert index.lookup(query) == index.lookup_naive(query)


class TestIntrospection:
    def test_aggregation_sizes(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 2), 0, 0)
        index.add_rule((1, 3), 1, 0)
        index.add_rule((2, 2), 2, 0)
        assert index.aggregation_sizes() == [2, 3]

    def test_observed_label_bits(self):
        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 300), 0, 0)
        bits = index.observed_label_bits()
        assert bits == (1, 9)
        assert index.key_bits() == 10


class TestExactRemoval:
    def test_remove_by_action_index(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=5)
        index.add_rule((1,), action_index=7, priority=9)
        # Removing the visible (higher-priority) reference must restore
        # the shadowed survivor, not keep serving a stale action index.
        assert index.remove_rule((1,), action_index=7)
        assert index.lookup(((1,),)) == 0

    def test_remove_unknown_action_index_is_noop(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=5)
        assert not index.remove_rule((1,), action_index=3)
        assert index.lookup(((1,),)) == 0
        assert index.aggregation_sizes() == [1]

    def test_specificity_breaks_priority_ties(self):
        index = IndexCalculator(("a",))
        index.add_rule((1,), action_index=0, priority=5, specificity=8)
        index.add_rule((1,), action_index=1, priority=5, specificity=16)
        assert index.lookup(((1,),)) == 1
