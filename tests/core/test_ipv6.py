"""IPv6 through the architecture: 128-bit fields become 8 partition tries.

The paper's Table II lists the IPv6 address fields (128 bits, LPM); the
architecture handles them with the same machinery — this exercises the
partitioning, trie construction and lookup at the widest field width.
"""

import pytest

from repro.core.builder import build_lookup_table
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import ExactMatch, PrefixMatch
from repro.util.bits import mask_of, prefix_mask


def v6(text_value: int, length: int) -> PrefixMatch:
    value = text_value & prefix_mask(length, 128)
    return PrefixMatch(value=value, length=length, bits=128)


@pytest.fixture()
def ipv6_routes() -> RuleSet:
    rules = RuleSet("v6", Application.ROUTING, ("in_port", "ipv6_dst"))
    prefixes = [
        (0x2001_0DB8 << 96, 32),  # 2001:db8::/32
        (0x2001_0DB8_0001 << 80, 48),  # 2001:db8:1::/48
        ((0x2001_0DB8_0001 << 80) | (0xAB << 64), 64),  # .../64
        (0xFE80 << 112, 10),  # link-local fe80::/10
        (0, 0),  # default
    ]
    for i, (value, length) in enumerate(prefixes):
        rules.add(
            Rule(
                fields={
                    "in_port": ExactMatch(1, 32),
                    "ipv6_dst": v6(value, length),
                },
                priority=length,
                action_port=i + 10,
            )
        )
    return rules


def test_eight_partitions(ipv6_routes):
    table = build_lookup_table(ipv6_routes)
    trie_names = sorted(table.tries())
    assert trie_names == [f"ipv6_dst/p{i}" for i in range(8)]


def test_longest_prefix_wins(ipv6_routes):
    table = build_lookup_table(ipv6_routes)
    address = (0x2001_0DB8_0001 << 80) | (0xAB << 64) | 0x1234
    hit = table.lookup({"in_port": 1, "ipv6_dst": address})
    assert hit is not None and hit.priority == 64


def test_fallback_chain(ipv6_routes):
    table = build_lookup_table(ipv6_routes)
    cases = {
        (0x2001_0DB8_0001 << 80) | (0xCD << 64): 48,  # misses the /64
        (0x2001_0DB8_9999 << 80): 32,  # misses the /48
        0xFE80 << 112 | 0x1: 10,  # link-local
        0x2600 << 112: 0,  # default route
    }
    for address, expected in cases.items():
        hit = table.lookup({"in_port": 1, "ipv6_dst": address})
        assert hit is not None and hit.priority == expected


def test_differential_vs_linear(ipv6_routes, generator):
    table = build_lookup_table(ipv6_routes)
    matches = [r.to_match() for r in ipv6_routes]
    trace = generator.field_trace(
        matches, 150, hit_rate=0.7, fill_fields=ipv6_routes.field_names
    )
    for fields in trace:
        want = ipv6_routes.linear_lookup(fields)
        got = table.lookup(fields)
        assert (got is None) == (want is None)
        if want is not None:
            assert got.priority == want.priority


def test_memory_report_covers_all_tries(ipv6_routes):
    from repro.memory.report import table_memory_report

    report = table_memory_report(build_lookup_table(ipv6_routes))
    trie_structures = [s for s in report.structures if s.kind == "trie"]
    assert len(trie_structures) == 8


def test_exact_128bit_value(ipv6_routes):
    from repro.openflow.flow import FlowEntry
    from repro.openflow.match import Match

    table = build_lookup_table(ipv6_routes)
    host = mask_of(128) ^ (1 << 127)  # arbitrary full address
    table.add(
        FlowEntry.build(
            match=Match(
                {
                    "in_port": ExactMatch(1, 32),
                    "ipv6_dst": ExactMatch(host, 128),
                }
            ),
            priority=128,
        )
    )
    hit = table.lookup({"in_port": 1, "ipv6_dst": host})
    assert hit is not None and hit.priority == 128
