"""Architecture-level tests: pipeline semantics over decomposition tables,
and the per-field split's equivalence to the monolithic table."""

import pytest

from repro.core.builder import (
    build_architecture,
    build_lookup_table,
    build_per_field_pipeline,
    build_prototype,
)
from repro.core.architecture import MultiTableLookupArchitecture
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import PrefixMatch
from repro.openflow.pipeline import OpenFlowPipeline


class TestMonolithicArchitecture:
    def test_single_app(self, small_mac_set, generator):
        architecture = build_architecture([small_mac_set])
        rule = small_mac_set.rules[0]
        fields = generator.fields_matching(rule.to_match())
        result = architecture.process(fields)
        assert result.matched
        assert result.output_ports == [rule.action_port]

    def test_miss_goes_to_controller(self, small_mac_set):
        architecture = build_architecture([small_mac_set])
        result = architecture.process({"vlan_vid": 0x1FFF, "eth_dst": 1})
        assert result.sent_to_controller

    def test_differential_vs_behavioural_pipeline(
        self, small_mac_set, small_routing_set, generator
    ):
        """The same flow entries in an OpenFlowPipeline over plain
        FlowTables must produce identical packet fates."""
        architecture = build_architecture([small_mac_set, small_routing_set])
        reference = OpenFlowPipeline(2)
        for i, rule_set in enumerate((small_mac_set, small_routing_set)):
            goto = 1 if i == 0 else None
            for entry in rule_set.to_flow_entries(goto_table=goto):
                reference.install(i, entry)

        mac_matches = [r.to_match() for r in small_mac_set.rules[:30]]
        route_matches = [r.to_match() for r in small_routing_set.rules[:30]]
        trace = generator.field_trace(mac_matches, 60, hit_rate=0.8)
        # Packets matching both applications end-to-end:
        for i, fields in enumerate(
            generator.field_trace(route_matches, 60, hit_rate=0.8)
        ):
            trace[i % len(trace)] |= fields
        for fields in trace:
            got = architecture.process(fields)
            want = reference.process(fields)
            assert got.output_ports == want.output_ports
            assert got.sent_to_controller == want.sent_to_controller
            assert got.tables_visited == want.tables_visited

    def test_chaining_requires_both_tables_to_match(
        self, small_mac_set, small_routing_set, generator
    ):
        architecture = build_architecture([small_mac_set, small_routing_set])
        mac_rule = small_mac_set.rules[0]
        fields = generator.fields_matching(mac_rule.to_match())
        fields["in_port"] = 0xDEAD  # no routing rule can match
        result = architecture.process(fields)
        assert result.sent_to_controller  # miss at table 1

    def test_empty_rule_sets_rejected(self):
        with pytest.raises(ValueError):
            build_architecture([])

    def test_describe(self, small_mac_set):
        text = build_architecture([small_mac_set]).describe()
        assert "table 0" in text and "eth_dst/lo:trie" in text


class TestPerFieldSplit:
    def test_split_equals_monolithic(self, small_mac_set, generator):
        """The paper's two-table split (field A -> metadata label ->
        (metadata, field B)) must classify exactly like the one-table
        decomposition."""
        monolithic = build_lookup_table(small_mac_set)
        tables = build_per_field_pipeline(small_mac_set)
        split = MultiTableLookupArchitecture(tables)

        matches = [r.to_match() for r in small_mac_set]
        for fields in generator.field_trace(matches, 250, hit_rate=0.7):
            want = monolithic.lookup(fields)
            got = split.process(fields)
            if want is None:
                assert got.sent_to_controller
            else:
                want_port = None
                for rule in small_mac_set:
                    if rule.to_match() == want.match:
                        want_port = rule.action_port
                assert got.output_ports == [want_port]

    def test_split_routing_lpm(self, tiny_routing_set):
        tables = build_per_field_pipeline(tiny_routing_set)
        split = MultiTableLookupArchitecture(tables)
        result = split.process({"in_port": 1, "ipv4_dst": 0x0A141E05})
        assert result.output_ports == [12]  # the /24 rule
        result = split.process({"in_port": 1, "ipv4_dst": 0xC0000000})
        assert result.output_ports == [99]  # default route via miss entry

    def test_split_table_a_holds_unique_values(self, small_mac_set):
        tables = build_per_field_pipeline(small_mac_set)
        # 16 unique VLANs + the table-miss entry.
        assert len(tables[0]) == 16 + 1
        assert len(tables[1]) == len(small_mac_set)

    def test_wildcard_first_field_rule(self):
        rules = RuleSet("w", Application.ROUTING, ("in_port", "ipv4_dst"))
        rules.add(
            Rule(
                fields={"ipv4_dst": PrefixMatch(0x0A000000, 8, 32)},
                priority=8,
                action_port=42,
            )
        )
        split = MultiTableLookupArchitecture(build_per_field_pipeline(rules))
        # No port constraint: any in_port must reach the rule via the
        # table-miss path with metadata 0.
        result = split.process({"in_port": 1234, "ipv4_dst": 0x0A000001})
        assert result.output_ports == [42]

    def test_split_requires_two_fields(self, small_acl_set):
        with pytest.raises(ValueError):
            build_per_field_pipeline(small_acl_set)


class TestPrototype:
    def test_four_tables(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        assert len(prototype.tables) == 4
        assert [t.table_id for t in prototype.tables] == [0, 1, 2, 3]

    def test_two_mbt_structures_two_luts(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        tries = [n for t in prototype.lookup_tables for n in t.tries()]
        luts = [n for t in prototype.lookup_tables for n in t.luts()]
        assert sorted(tries) == [
            "eth_dst/hi",
            "eth_dst/lo",
            "eth_dst/mid",
            "ipv4_dst/hi",
            "ipv4_dst/lo",
        ]
        assert sorted(luts) == ["in_port", "vlan_vid"]

    def test_chained_l2_l3_processing(
        self, small_mac_set, small_routing_set, generator
    ):
        prototype = build_prototype(small_mac_set, small_routing_set)
        mac_rule = small_mac_set.rules[3]
        route_rule = small_routing_set.rules[5]
        fields = generator.fields_matching(mac_rule.to_match())
        fields |= generator.fields_matching(route_rule.to_match())
        result = prototype.process(fields)
        assert result.tables_visited == [0, 1, 2, 3]
        # Write-Actions of both applications accumulate; the later output
        # (routing) wins the action-set merge.
        assert result.output_ports == [route_rule.action_port]

    def test_unchained_mac_only(self, small_mac_set, small_routing_set, generator):
        prototype = build_prototype(
            small_mac_set, small_routing_set, chain_applications=False
        )
        mac_rule = small_mac_set.rules[0]
        fields = generator.fields_matching(mac_rule.to_match())
        result = prototype.process(fields)
        assert result.tables_visited == [0, 1]
        assert result.output_ports == [mac_rule.action_port]
