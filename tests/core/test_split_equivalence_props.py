"""Property test: the per-field table split preserves classification.

The prototype's defining transformation — splitting a two-field table
into (field A -> metadata label) -> (metadata, field B) — must be
semantics-preserving for *any* rule set, including wildcards and
overlapping priorities.  hypothesis generates adversarial rule sets and
probes; the split pipeline must agree with the monolithic table on every
packet.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table, build_per_field_pipeline
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.actions import OutputAction
from repro.openflow.instructions import WriteActions
from repro.openflow.match import ExactMatch, PrefixMatch
from repro.util.bits import canonical_prefix, mask_of

rule_specs = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=3)),  # port
        st.tuples(
            st.integers(min_value=0, max_value=mask_of(32)),
            st.integers(min_value=0, max_value=32),
        ),
        st.integers(min_value=0, max_value=63),  # action port
    ),
    min_size=1,
    max_size=20,
)


def build_rule_set(specs) -> RuleSet:
    rules = RuleSet("prop", Application.ROUTING, ("in_port", "ipv4_dst"))
    for port, (raw, length), action in specs:
        value, length = canonical_prefix(raw, length, 32)
        fields = {"ipv4_dst": PrefixMatch(value=value, length=length, bits=32)}
        if port is not None:
            fields["in_port"] = ExactMatch(value=port, bits=32)
        rules.add(Rule(fields=fields, priority=length, action_port=action))
    return rules


def monolithic_port(table, fields) -> int | None:
    hit = table.lookup(fields)
    if hit is None:
        return None
    write = hit.instructions.get(WriteActions)
    assert isinstance(write, WriteActions)
    (action,) = write.actions
    assert isinstance(action, OutputAction)
    return action.port


@settings(max_examples=80, deadline=None)
@given(rule_specs, st.data())
def test_split_pipeline_equals_monolithic(specs, data):
    rules = build_rule_set(specs)
    monolithic = build_lookup_table(rules)
    split = MultiTableLookupArchitecture(build_per_field_pipeline(rules))

    port = data.draw(st.integers(min_value=0, max_value=3))
    address = data.draw(st.integers(min_value=0, max_value=mask_of(32)))
    if data.draw(st.booleans()):
        _, (raw, length), _ = data.draw(st.sampled_from(specs))
        value, length = canonical_prefix(raw, length, 32)
        address = value | (address & mask_of(32 - length))
    fields = {"in_port": port, "ipv4_dst": address}

    want = monolithic_port(monolithic, fields)
    got = split.process(fields)
    if want is None:
        assert got.sent_to_controller
    else:
        assert got.output_ports == [want]


@settings(max_examples=40, deadline=None)
@given(rule_specs)
def test_split_table_a_size_is_unique_port_count(specs):
    rules = build_rule_set(specs)
    tables = build_per_field_pipeline(rules)
    unique_ports = {
        predicate
        for rule in rules
        if (predicate := rule.fields.get("in_port")) is not None
    }
    # One entry per unique first-field value + the table-miss entry.
    assert len(tables[0]) == len(unique_ports) + 1
    # Table B holds one entry per distinct (match, priority): duplicate
    # rules collapse under OpenFlow flow-mod replacement semantics.
    distinct = {(rule.to_match(), rule.priority) for rule in rules}
    assert len(tables[1]) == len(distinct)


# ---------------------------------------------------------------------------
# Differential churn fuzzing: interleaved add/remove/lookup over identical
# rule sequences on the behavioural FlowTable (reference scan), the
# decomposition OpenFlowLookupTable, and the microflow-cached batch path.
# The cache must never serve a stale result across mutations.
# ---------------------------------------------------------------------------

from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.table import FlowTable
from repro.runtime.cache import MicroflowCache

FIELDS = ("in_port", "ipv4_dst")

churn_rule = st.tuples(
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),  # port
    st.tuples(
        st.integers(min_value=0, max_value=mask_of(32)),
        st.integers(min_value=0, max_value=32),
    ),
    st.integers(min_value=0, max_value=7),  # priority
)

churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "purge", "lookup"]),
        st.integers(min_value=0, max_value=1_000_000),
    ),
    min_size=4,
    max_size=50,
)


def churn_entry(spec) -> FlowEntry:
    port, (raw, length), priority = spec
    value, length = canonical_prefix(raw, length, 32)
    fields = {"ipv4_dst": PrefixMatch(value=value, length=length, bits=32)}
    if port is not None:
        fields["in_port"] = ExactMatch(value=port, bits=32)
    return FlowEntry.build(
        match=Match(fields),
        priority=priority,
        instructions=[WriteActions([OutputAction(priority)])],
    )


def assert_same_hit(fields, want, *results):
    for got in results:
        if want is None:
            assert got is None, f"false positive on {fields}"
        else:
            assert got is not None, f"false negative on {fields}"
            assert got.priority == want.priority
            assert got.match == want.match


@settings(max_examples=60, deadline=None)
@given(
    st.lists(churn_rule, min_size=1, max_size=12),
    churn_ops,
    st.data(),
)
def test_churn_differential_fuzz(universe, ops, data):
    entries = [churn_entry(spec) for spec in universe]
    oracle = FlowTable()
    decomposition = OpenFlowLookupTable(FIELDS)
    cached_table = OpenFlowLookupTable(FIELDS)
    cache = MicroflowCache(cached_table, capacity=64)

    def probe_fields():
        port = data.draw(st.integers(min_value=0, max_value=3))
        address = data.draw(st.integers(min_value=0, max_value=mask_of(32)))
        if data.draw(st.booleans()):
            _, (raw, length), _ = data.draw(st.sampled_from(universe))
            value, length = canonical_prefix(raw, length, 32)
            address = value | (address & mask_of(32 - length))
        return {"in_port": port, "ipv4_dst": address}

    def check(fields):
        want = oracle.lookup(fields)
        assert_same_hit(
            fields,
            want,
            decomposition.lookup(fields),
            cache.lookup(fields),
            cache.lookup_batch([fields])[0],
        )

    for op, pick in ops:
        if op == "add":
            entry = entries[pick % len(entries)]
            oracle.add(entry)
            decomposition.add(entry)
            cached_table.add(entry)
        elif op == "remove":
            entry = entries[pick % len(entries)]
            removed = oracle.remove(entry.match, entry.priority)
            assert decomposition.remove(entry.match, entry.priority) == removed
            assert cached_table.remove(entry.match, entry.priority) == removed
        elif op == "purge":
            priority = pick % 8
            predicate = lambda e: e.priority == priority
            count = oracle.remove_where(predicate)
            assert decomposition.remove_where(predicate) == count
            assert cached_table.remove_where(predicate) == count
        else:  # lookup
            check(probe_fields())
        assert len(oracle) == len(decomposition) == len(cached_table)

    # Final sweep: a probe per universe rule after all the churn.
    for _ in range(min(len(universe), 4)):
        check(probe_fields())
    # Churn must not strand action-table slots beyond the free list,
    # and the free list itself stays bounded by the table's high water.
    for table in (decomposition, cached_table):
        assert table.actions.allocated_slots - table.actions.free_slots == len(table)
