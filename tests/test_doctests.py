"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.algorithms.labels
import repro.algorithms.tcam
import repro.filters.partitions
import repro.util.bits
import repro.util.charts
import repro.util.tables
import repro.util.units

MODULES = [
    repro.util.bits,
    repro.util.units,
    repro.util.tables,
    repro.util.charts,
    repro.filters.partitions,
    repro.algorithms.labels,
    repro.algorithms.tcam,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted > 0  # every listed module carries examples
