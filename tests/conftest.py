"""Shared fixtures: small, deterministic rule sets and packet tooling."""

from __future__ import annotations

import pytest

from repro.filters.paper_data import MacFilterStats, RoutingFilterStats
from repro.filters.rule import Application, Rule, RuleSet
from repro.filters.synthetic import (
    SyntheticAclConfig,
    generate_acl_set,
    generate_mac_set,
    generate_routing_set,
)
from repro.openflow.match import ExactMatch, PrefixMatch, RangeMatch
from repro.packet.generator import PacketGenerator, TraceConfig

#: A small synthetic stats row so fixtures build fast (bbrb-scale).
SMALL_MAC_STATS = MacFilterStats("testmac", 151, 16, 26, 38, 55)
SMALL_ROUTING_STATS = RoutingFilterStats("testroute", 400, 12, 40, 90)


@pytest.fixture(scope="session")
def small_mac_set() -> RuleSet:
    return generate_mac_set(SMALL_MAC_STATS, seed=11)


@pytest.fixture(scope="session")
def small_routing_set() -> RuleSet:
    return generate_routing_set(SMALL_ROUTING_STATS, seed=13)


@pytest.fixture(scope="session")
def small_acl_set() -> RuleSet:
    return generate_acl_set(SyntheticAclConfig(rules=120, seed=17))


@pytest.fixture()
def generator() -> PacketGenerator:
    return PacketGenerator(TraceConfig(seed=23))


@pytest.fixture()
def tiny_routing_set() -> RuleSet:
    """A hand-written routing set with known overlaps for exact assertions."""
    rules = RuleSet(
        name="tiny-route",
        application=Application.ROUTING,
        field_names=("in_port", "ipv4_dst"),
    )

    def rule(port: int, value: int, length: int, action: int) -> Rule:
        return Rule(
            fields={
                "in_port": ExactMatch(value=port, bits=32),
                "ipv4_dst": PrefixMatch(value=value, length=length, bits=32),
            },
            priority=length,
            action_port=action,
        )

    rules.add(rule(1, 0x0A000000, 8, 10))  # 10/8
    rules.add(rule(1, 0x0A140000, 16, 11))  # 10.20/16
    rules.add(rule(1, 0x0A141E00, 24, 12))  # 10.20.30/24
    rules.add(rule(2, 0x0A000000, 8, 20))  # 10/8 on port 2
    rules.add(
        Rule(
            fields={
                "in_port": ExactMatch(value=1, bits=32),
                "ipv4_dst": PrefixMatch(value=0, length=0, bits=32),
            },
            priority=0,
            action_port=99,
        )
    )  # default route, port 1
    return rules


@pytest.fixture()
def tiny_acl_set() -> RuleSet:
    """A hand-written 5-tuple ACL with ranges for exact assertions."""
    rules = RuleSet(
        name="tiny-acl",
        application=Application.ACL,
        field_names=("ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst", "ip_proto"),
    )
    rules.add(
        Rule(
            fields={
                "ipv4_dst": PrefixMatch(value=0xC0A80000, length=16, bits=32),
                "tcp_dst": RangeMatch(low=0, high=1023, bits=16),
                "ip_proto": ExactMatch(value=6, bits=8),
            },
            priority=30,
            action_port=1,
        )
    )
    rules.add(
        Rule(
            fields={
                "ipv4_src": PrefixMatch(value=0x0A000000, length=8, bits=32),
                "tcp_dst": RangeMatch(low=80, high=80, bits=16),
            },
            priority=20,
            action_port=2,
        )
    )
    rules.add(Rule(fields={}, priority=1, action_port=3))  # catch-all
    return rules
