"""Tests for repro.util.units."""

from repro.util.units import (
    BITS_PER_KBIT,
    BITS_PER_MBIT,
    format_bits,
    kbits,
    mbits,
)


def test_binary_convention():
    assert BITS_PER_KBIT == 1024
    assert BITS_PER_MBIT == 1024 * 1024


def test_kbits():
    assert kbits(2048) == 2.0


def test_mbits():
    assert mbits(5 * BITS_PER_MBIT) == 5.0


def test_format_small():
    assert format_bits(832) == "832 bits"


def test_format_kbits():
    assert format_bits(586_311) == "572.57 Kbits"


def test_format_mbits():
    assert format_bits(5 * BITS_PER_MBIT) == "5.00 Mbits"


def test_format_boundary():
    assert format_bits(1024) == "1.00 Kbits"
