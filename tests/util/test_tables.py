"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import TextTable, read_csv_table


@pytest.fixture()
def table() -> TextTable:
    t = TextTable(headers=["filter", "rules", "kbits"], title="demo")
    t.add_row(["bbra", 507, 1.234])
    t.add_row(["gozb", 7370, 983.7])
    return t


def test_row_length_enforced(table):
    with pytest.raises(ValueError):
        table.add_row(["short"])


def test_markdown_shape(table):
    lines = table.to_markdown().splitlines()
    assert lines[0] == "### demo"
    assert lines[2].startswith("| filter |")
    assert lines[3].count("---") == 3
    assert "| bbra | 507 | 1.23 |" in lines


def test_markdown_without_title():
    t = TextTable(headers=["a"])
    t.add_row([1])
    assert t.to_markdown().splitlines()[0] == "| a |"


def test_column_access(table):
    assert table.column("rules") == [507, 7370]


def test_column_unknown(table):
    with pytest.raises(KeyError):
        table.column("nope")


def test_csv_roundtrip(table, tmp_path):
    path = table.write_csv(tmp_path / "nested" / "demo.csv")
    loaded = read_csv_table(path)
    assert list(loaded.headers) == ["filter", "rules", "kbits"]
    assert loaded.rows[1] == ["gozb", "7370", "983.70"]


def test_csv_float_formatting(table):
    assert "1.23" in table.to_csv()


def test_read_empty_csv_rejected(tmp_path):
    empty = tmp_path / "empty.csv"
    empty.write_text("")
    with pytest.raises(ValueError):
        read_csv_table(empty)
