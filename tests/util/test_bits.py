"""Tests for repro.util.bits — the arithmetic everything else leans on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit_slice,
    bits_needed,
    canonical_prefix,
    mask_of,
    prefix_contains,
    prefix_covers_value,
    prefix_mask,
    prefix_range,
    split_value,
)


class TestMaskOf:
    def test_zero(self):
        assert mask_of(0) == 0

    def test_small(self):
        assert mask_of(4) == 0xF

    def test_wide(self):
        assert mask_of(128) == (1 << 128) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of(-1)


class TestBitsNeeded:
    @pytest.mark.parametrize(
        "count,expected",
        [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)],
    )
    def test_values(self, count, expected):
        assert bits_needed(count) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_needed(-1)

    @given(st.integers(min_value=2, max_value=10**9))
    def test_addresses_all_items(self, count):
        bits = bits_needed(count)
        assert 2**bits >= count
        assert 2 ** (bits - 1) < count


class TestBitSlice:
    def test_msb_first(self):
        assert bit_slice(0xABCD, 16, 0, 8) == 0xAB
        assert bit_slice(0xABCD, 16, 8, 8) == 0xCD

    def test_middle(self):
        assert bit_slice(0b1011_0110, 8, 2, 4) == 0b1101

    def test_full_width(self):
        assert bit_slice(0x1234, 16, 0, 16) == 0x1234

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bit_slice(0xFF, 8, 4, 8)

    @given(st.integers(min_value=0, max_value=mask_of(48)))
    def test_slices_reassemble(self, value):
        parts = [bit_slice(value, 48, offset, 16) for offset in (0, 16, 32)]
        assert (parts[0] << 32) | (parts[1] << 16) | parts[2] == value


class TestSplitValue:
    def test_ethernet_three_parts(self):
        assert split_value(0x112233445566, 48, 16) == (0x1122, 0x3344, 0x5566)

    def test_ip_two_parts(self):
        assert split_value(0x0A141E28, 32, 16) == (0x0A14, 0x1E28)

    def test_single_part(self):
        assert split_value(0xBEEF, 16, 16) == (0xBEEF,)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            split_value(0, 13, 16)

    @given(st.integers(min_value=0, max_value=mask_of(64)))
    def test_roundtrip_64(self, value):
        parts = split_value(value, 64, 16)
        rebuilt = 0
        for part in parts:
            rebuilt = (rebuilt << 16) | part
        assert rebuilt == value


class TestPrefixMask:
    def test_cidr_24(self):
        assert prefix_mask(24, 32) == 0xFFFFFF00

    def test_zero_length(self):
        assert prefix_mask(0, 32) == 0

    def test_full_length(self):
        assert prefix_mask(16, 16) == 0xFFFF

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            prefix_mask(33, 32)


class TestPrefixCovers:
    def test_covers(self):
        assert prefix_covers_value(0x0A000000, 8, 0x0A012345, 32)

    def test_does_not_cover(self):
        assert not prefix_covers_value(0x0A000000, 8, 0x0B012345, 32)

    def test_zero_length_covers_all(self):
        assert prefix_covers_value(0, 0, 0xFFFFFFFF, 32)


class TestPrefixContains:
    def test_shorter_contains_longer(self):
        assert prefix_contains((0x0A000000, 8), (0x0A140000, 16), 32)

    def test_longer_never_contains_shorter(self):
        assert not prefix_contains((0x0A140000, 16), (0x0A000000, 8), 32)

    def test_disjoint(self):
        assert not prefix_contains((0x0A000000, 8), (0x0B000000, 8), 32)

    def test_self_containment(self):
        assert prefix_contains((0x0A000000, 8), (0x0A000000, 8), 32)

    @given(
        st.integers(min_value=0, max_value=mask_of(16)),
        st.integers(min_value=0, max_value=16),
        st.integers(min_value=0, max_value=16),
    )
    def test_containment_matches_range_inclusion(self, value, len_a, len_b):
        a = canonical_prefix(value, len_a, 16)
        b = canonical_prefix(value, len_b, 16)
        lo_a, hi_a = prefix_range(a[0], a[1], 16)
        lo_b, hi_b = prefix_range(b[0], b[1], 16)
        assert prefix_contains(a, b, 16) == (lo_a <= lo_b and hi_b <= hi_a)


class TestPrefixRange:
    def test_slash8(self):
        assert prefix_range(0x0A000000, 8, 32) == (0x0A000000, 0x0AFFFFFF)

    def test_host_route(self):
        assert prefix_range(0x01020304, 32, 32) == (0x01020304, 0x01020304)

    def test_default_route(self):
        assert prefix_range(0, 0, 32) == (0, 0xFFFFFFFF)


class TestCanonicalPrefix:
    def test_strips_host_bits(self):
        assert canonical_prefix(0x0A0101FF, 16, 32) == (0x0A010000, 16)

    def test_already_canonical(self):
        assert canonical_prefix(0x0A000000, 8, 32) == (0x0A000000, 8)
