"""Tests for repro.util.charts."""

import pytest

from repro.util.charts import GroupedBarChart, bar_chart


def test_bar_chart_scales_to_max():
    rendered = bar_chart({"a": 2.0, "b": 1.0}, width=10)
    lines = rendered.splitlines()
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5


def test_bar_chart_title_and_unit():
    rendered = bar_chart({"x": 1.0}, title="T", unit="Kbits")
    assert rendered.splitlines()[0] == "T"
    assert "1 Kbits" in rendered


def test_bar_chart_empty():
    assert "(no data)" in bar_chart({})


def test_bar_chart_zero_values():
    rendered = bar_chart({"a": 0.0, "b": 0.0})
    assert "█" not in rendered


def test_grouped_chart_renders_groups():
    chart = GroupedBarChart(series_names=["hi", "lo"], title="G", unit="n")
    chart.add_group("bbra", [3.0, 1.0])
    chart.add_group("gozb", [6.0, 2.0])
    rendered = chart.render()
    assert "bbra:" in rendered and "gozb:" in rendered
    assert rendered.splitlines()[0] == "G"


def test_grouped_chart_series_length_enforced():
    chart = GroupedBarChart(series_names=["hi", "lo"])
    with pytest.raises(ValueError):
        chart.add_group("x", [1.0])


def test_grouped_chart_empty():
    chart = GroupedBarChart(series_names=["a"])
    assert "(no data)" in chart.render()


def test_grouped_chart_global_scale():
    chart = GroupedBarChart(series_names=["v"], width=8)
    chart.add_group("big", [8.0])
    chart.add_group("small", [1.0])
    lines = chart.render().splitlines()
    big_line = next(line for line in lines if "8" in line and "█" in line)
    small_line = next(line for line in lines if "1" in line and "█" in line)
    assert big_line.count("█") == 8
    assert small_line.count("█") == 1
