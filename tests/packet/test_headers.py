"""Tests for header dataclasses and Packet field extraction."""

import pytest

from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    IP_PROTO_TCP,
    Ethernet,
    Icmp,
    IPv4,
    IPv6,
    Mpls,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet, ethernet_ipv4_tcp


class TestValidation:
    def test_ethernet_width(self):
        with pytest.raises(ValueError):
            Ethernet(dst=1 << 48, src=0, ethertype=0x0800)

    def test_vlan_vid_12_bits(self):
        with pytest.raises(ValueError):
            Vlan(vid=4096)

    def test_mpls_label_20_bits(self):
        with pytest.raises(ValueError):
            Mpls(label=1 << 20)

    def test_ipv4_fields(self):
        with pytest.raises(ValueError):
            IPv4(src=0, dst=0, proto=256)

    def test_ipv6_flow_label(self):
        with pytest.raises(ValueError):
            IPv6(src=0, dst=0, next_header=6, flow_label=1 << 20)

    def test_udp_length_minimum(self):
        with pytest.raises(ValueError):
            Udp(src_port=1, dst_port=2, length=7)


class TestMatchFields:
    def test_ethernet_contributes_three_fields(self):
        header = Ethernet(dst=0xA, src=0xB, ethertype=0x0800)
        assert header.match_fields() == {
            "eth_dst": 0xA,
            "eth_src": 0xB,
            "eth_type": 0x0800,
        }

    def test_vlan_sets_present_bit(self):
        assert Vlan(vid=100).match_fields()["vlan_vid"] == 100 | 0x1000

    def test_vlan_overrides_ethertype(self):
        fields = Vlan(vid=1, ethertype=0x86DD).match_fields()
        assert fields["eth_type"] == 0x86DD

    def test_ipv4_dscp_ecn(self):
        fields = IPv4(src=1, dst=2, proto=6, dscp=10, ecn=2).match_fields()
        assert fields["ip_dscp"] == 10 and fields["ip_ecn"] == 2

    def test_ipv6_splits_traffic_class(self):
        fields = IPv6(src=1, dst=2, next_header=17, traffic_class=0b101011).match_fields()
        assert fields["ip_dscp"] == 0b1010
        assert fields["ip_ecn"] == 0b11

    def test_udp_exposes_generic_ports(self):
        fields = Udp(src_port=53, dst_port=9).match_fields()
        assert fields["tcp_src"] == 53 and fields["udp_src"] == 53

    def test_icmp(self):
        fields = Icmp(icmp_type=8, code=0).match_fields()
        assert fields == {"icmpv4_type": 8, "icmpv4_code": 0}


class TestPacket:
    def test_must_start_with_ethernet(self):
        with pytest.raises(ValueError):
            Packet(headers=(Tcp(src_port=1, dst_port=2),))

    def test_outer_header_wins(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=10, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=20, ethertype=ETHERTYPE_IPV4),
            )
        )
        assert packet.match_fields()["vlan_vid"] == 10 | 0x1000

    def test_in_port_and_metadata_included(self):
        packet = Packet(
            headers=(Ethernet(dst=1, src=2, ethertype=0x0800),),
            in_port=7,
            metadata=3,
        )
        fields = packet.match_fields()
        assert fields["in_port"] == 7 and fields["metadata"] == 3

    def test_find(self):
        packet = ethernet_ipv4_tcp(1, 2, 3, 4, 5, 6)
        assert isinstance(packet.find(IPv4), IPv4)
        assert packet.find(Vlan) is None

    def test_with_in_port(self):
        packet = ethernet_ipv4_tcp(1, 2, 3, 4, 5, 6)
        assert packet.with_in_port(9).in_port == 9

    def test_convenience_builder_with_vlan(self):
        packet = ethernet_ipv4_tcp(1, 2, 3, 4, 5, 6, vlan=42)
        fields = packet.match_fields()
        assert fields["vlan_vid"] == 42 | 0x1000
        assert fields["ipv4_src"] == 3
        assert fields["tcp_dst"] == 6
        assert fields["ip_proto"] == IP_PROTO_TCP

    def test_summary(self):
        packet = ethernet_ipv4_tcp(1, 2, 3, 4, 5, 6, in_port=2)
        assert "Ethernet/IPv4/Tcp" in packet.summary


class TestTransportSchema:
    """The declared header->fields map cannot drift from the classes."""

    def test_declared_fields_match_the_classes(self):
        from repro.packet.headers import HEADER_MATCH_FIELDS

        samples = {
            Ethernet: Ethernet(dst=1, src=2, ethertype=0x0800),
            Vlan: Vlan(vid=5),
            Mpls: Mpls(label=9),
            IPv4: IPv4(src=1, dst=2, proto=6),
            IPv6: IPv6(src=1, dst=2, next_header=6),
            Tcp: Tcp(src_port=1, dst_port=2),
            Udp: Udp(src_port=1, dst_port=2),
            Icmp: Icmp(icmp_type=8),
        }
        assert set(samples) == set(HEADER_MATCH_FIELDS)
        for header_type, sample in samples.items():
            assert (
                tuple(sample.match_fields()) == HEADER_MATCH_FIELDS[header_type]
            ), header_type.__name__

    def test_schema_widths_come_from_the_registry(self):
        from repro.openflow.fields import REGISTRY
        from repro.packet.headers import (
            FRAME_LEN_BITS,
            FRAME_LEN_FIELD,
            transport_schema,
        )

        schema = transport_schema()
        assert schema["ipv6_src"] == 128
        assert schema["metadata"] == 64
        for name, bits in schema.items():
            if name == FRAME_LEN_FIELD:
                # Packet metadata, not an OXM match field: its width is
                # declared next to the constant, not in the registry.
                assert bits == FRAME_LEN_BITS
                continue
            assert REGISTRY[name].bits == bits
