"""Columnar ``PacketBatch``: round-trip, aliasing and key properties."""

from __future__ import annotations

import pytest

from repro.packet.batch import PacketBatch, packed_masked_key
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.packet.headers import FRAME_LEN_FIELD
from repro.packet.parser import parse_batch
from repro.packet.builder import build_packet
from repro.runtime.transport import BlockReader, BlockWriter, PacketBlockCodec

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


# A value pool crossing every lane boundary: zeros, in-width values,
# 64-bit edges and >64-bit (ipv6-sized) values.
_values = st.one_of(
    st.integers(0, 3),
    st.integers(0, 2**16 - 1),
    st.sampled_from((2**63, 2**64 - 1, 2**64, 2**100, 2**127)),
    st.integers(0, 2**128 - 1),
)

_field_names = ("ipv4_src", "tcp_dst", "ipv6_src", "odd_field", FRAME_LEN_FIELD)

_packet = st.dictionaries(
    st.sampled_from(_field_names), _values, max_size=len(_field_names)
)

_example = st.tuples(
    st.lists(_packet, min_size=1, max_size=8),  # distinct packet pool
    st.lists(st.integers(0, 7), min_size=1, max_size=24),  # aliasing picks
)


def _trace(example):
    pool, picks = example
    return [pool[pick % len(pool)] for pick in picks]


@settings(max_examples=60, deadline=None)
@given(example=_example)
def test_columnar_dict_round_trip(example):
    """from_dicts -> dicts() is the identity, aliasing included."""
    trace = _trace(example)
    batch = PacketBatch.from_dicts(trace)
    assert len(batch) == len(trace)
    decoded = batch.dicts()
    assert decoded == trace
    # Aliasing: the very same dict objects come back.
    for got, original in zip(decoded, trace):
        assert got is original


@settings(max_examples=40, deadline=None)
@given(example=_example)
def test_block_round_trip(example):
    """Encoding through a transport block and re-attaching loses nothing
    (the decode-free worker's view of a batch)."""
    trace = _trace(example)
    codec = PacketBlockCodec()
    writer = BlockWriter()
    layout = codec.encode(writer, trace, "pkt")
    buf = bytearray(writer.nbytes)
    segments = writer.write_to(memoryview(buf))
    reader = BlockReader(memoryview(buf), segments)
    decoded = codec.attach(reader, layout).dicts()
    assert decoded == trace
    # Duplicate positions decode to one shared dict.
    for i, a in enumerate(trace):
        for j, b in enumerate(trace):
            if a is b:
                assert decoded[i] is decoded[j]


@settings(max_examples=40, deadline=None)
@given(example=_example)
def test_masked_key_scalar_vector_parity(example):
    """The install-time scalar packing and the vectorized batch packing
    agree byte-for-byte on every row and mask."""
    trace = _trace(example)
    batch = PacketBatch.from_dicts(trace)
    masks = (
        (("ipv4_src", 0xFF00), ("tcp_dst", 0x0F)),
        (("ipv6_src", (1 << 128) - 1),),
        (("odd_field", 0x3), ("ipv4_src", 0)),
    )
    for mask in masks:
        keys = batch.masked_packed_keys(mask)
        for position in range(len(batch)):
            row = int(batch.pick[position])
            assert keys[row] == packed_masked_key(mask, trace[position])


def test_slice_views_share_rows():
    a = {"ipv4_src": 1, FRAME_LEN_FIELD: 100}
    b = {"ipv4_src": 2, FRAME_LEN_FIELD: 200}
    batch = PacketBatch.from_dicts([a, b, a, b, a])
    view = batch[1:4]
    assert len(view) == 3
    assert view.dicts() == [b, a, b]
    assert view.dicts()[1] is a
    assert view.byte_total == 500
    assert batch.byte_total == 700
    assert batch.frame_lengths().tolist() == [100, 200, 100, 200, 100]


def test_select_and_getitem():
    a = {"ipv4_src": 1}
    b = {"ipv4_src": 2}
    batch = PacketBatch.from_dicts([a, b, a])
    assert batch[0] is a and batch[1] is b
    sub = batch.select([2, 1])
    assert sub.dicts() == [a, b]
    assert list(batch) == [a, b, a]


def test_from_columns_materialises_lazily():
    trace = [{"ipv4_src": 7, "tcp_dst": 80}, {"ipv4_src": 7}]
    codec = PacketBlockCodec()
    writer = BlockWriter()
    layout = codec.encode(writer, trace, "pkt")
    buf = bytearray(writer.nbytes)
    segments = writer.write_to(memoryview(buf))
    attached = codec.attach(BlockReader(memoryview(buf), segments), layout)
    # Nothing materialised yet; one access materialises one row only.
    assert attached._store.row_cache == {}
    first = attached.fields_at(0)
    assert first == trace[0]
    assert len(attached._store.row_cache) == 1
    # Presence is honoured: row 1 has no tcp_dst key at all.
    assert attached.fields_at(1) == {"ipv4_src": 7}


def test_parse_batch_emits_columnar():
    generator = PacketGenerator(TraceConfig(seed=7))
    packets = [generator.random_packet() for _ in range(6)]
    frames = [build_packet(packet) for packet in packets]
    batch = parse_batch(frames, in_port=3)
    assert isinstance(batch, PacketBatch)
    assert len(batch) == len(frames)
    for fields, packet in zip(batch.dicts(), packets):
        assert fields["in_port"] == 3
        assert fields[FRAME_LEN_FIELD] == len(build_packet(packet))


def test_sample_batch_matches_sample_trace():
    generator = PacketGenerator(TraceConfig(seed=9))
    flows = [{"ipv4_src": i, FRAME_LEN_FIELD: 64 + i} for i in range(4)]
    batch = generator.sample_batch(flows, 32)
    reference = PacketGenerator(TraceConfig(seed=9)).sample_trace(flows, 32)
    assert batch.dicts() == reference


def test_negative_value_rejected():
    with pytest.raises(ValueError, match="negative"):
        PacketBatch.from_dicts([{"ipv4_src": -1}])


def test_frame_lengths_zero_without_column():
    batch = PacketBatch.from_dicts([{"ipv4_src": 1}])
    assert batch.frame_lengths().tolist() == [0]
    assert batch.byte_total == 0


def test_empty_batch():
    batch = PacketBatch.from_dicts([])
    assert len(batch) == 0
    assert batch.dicts() == []
    assert batch.byte_total == 0
    assert batch.key_hashes(("ipv4_src",)).shape == (0,)
