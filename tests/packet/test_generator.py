"""Tests for the deterministic packet generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.match import (
    ExactMatch,
    MaskedMatch,
    Match,
    PrefixMatch,
    RangeMatch,
)
from repro.packet.generator import PacketGenerator, TraceConfig


def test_deterministic_traces():
    a = [p.match_fields() for p in PacketGenerator(TraceConfig(seed=5)).trace(20)]
    b = [p.match_fields() for p in PacketGenerator(TraceConfig(seed=5)).trace(20)]
    assert a == b


def test_different_seeds_differ():
    a = [p.match_fields() for p in PacketGenerator(TraceConfig(seed=5)).trace(20)]
    b = [p.match_fields() for p in PacketGenerator(TraceConfig(seed=6)).trace(20)]
    assert a != b


def test_random_packets_are_valid():
    generator = PacketGenerator(TraceConfig(seed=1, vlan_probability=1.0))
    packet = generator.random_packet()
    fields = packet.match_fields()
    assert "vlan_vid" in fields
    assert fields["vlan_vid"] & 0x1000


def test_fields_matching_exact():
    generator = PacketGenerator()
    match = Match.exact(in_port=3, eth_type=0x0800)
    fields = generator.fields_matching(match)
    assert match.matches(fields)


@settings(max_examples=40)
@given(
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=1000),
)
def test_fields_matching_prefix_and_range(length, raw, seed):
    from repro.util.bits import canonical_prefix

    value, length = canonical_prefix(raw, length, 32)
    match = Match(
        {
            "ipv4_dst": PrefixMatch(value=value, length=length, bits=32),
            "tcp_dst": RangeMatch(low=100, high=200, bits=16),
        }
    )
    fields = PacketGenerator(TraceConfig(seed=seed)).fields_matching(match)
    assert match.matches(fields)


def test_fields_matching_masked():
    match = Match({"metadata": MaskedMatch(value=0x10, mask=0xF0, bits=64)})
    fields = PacketGenerator().fields_matching(match)
    assert match.matches(fields)


def test_field_trace_hit_rate():
    generator = PacketGenerator(TraceConfig(seed=9))
    match = Match({"ipv4_dst": ExactMatch(value=0x01020304, bits=32)})
    trace = generator.field_trace([match], 300, hit_rate=0.8)
    hits = sum(1 for fields in trace if match.matches(fields))
    assert 200 <= hits <= 280  # ~0.8 within generous bounds


def test_field_trace_zero_hit_rate():
    generator = PacketGenerator(TraceConfig(seed=9))
    match = Match({"ipv4_dst": ExactMatch(value=0x01020304, bits=32)})
    trace = generator.field_trace([match], 50, hit_rate=0.0)
    assert sum(1 for f in trace if match.matches(f)) <= 1  # random collisions only


def test_field_trace_invalid_hit_rate():
    import pytest

    with pytest.raises(ValueError):
        PacketGenerator().field_trace([], 10, hit_rate=1.5)


def test_wide_random_values():
    generator = PacketGenerator(TraceConfig(seed=2))
    value = generator._random_value(128)
    assert 0 <= value < (1 << 128)
