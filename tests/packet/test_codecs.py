"""Round-trip and robustness tests for the wire-format codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet.builder import build_packet, ipv4_checksum
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_MPLS,
    ETHERTYPE_VLAN,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Ethernet,
    Icmp,
    IPv4,
    IPv6,
    Mpls,
    Tcp,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet
from repro.packet.parser import ParseError, parse_packet

mac = st.integers(min_value=0, max_value=(1 << 48) - 1)
ip4 = st.integers(min_value=0, max_value=(1 << 32) - 1)
ip6 = st.integers(min_value=0, max_value=(1 << 128) - 1)
port = st.integers(min_value=0, max_value=65535)


def roundtrip(packet: Packet) -> Packet:
    """Build then parse; the parsed packet additionally knows its wire
    length, which is asserted here and blanked for the field-level
    comparisons (built packets carry frame_len=0 = unknown)."""
    from dataclasses import replace

    frame = build_packet(packet)
    parsed = parse_packet(frame, in_port=packet.in_port)
    assert parsed.frame_len == len(frame)
    return replace(parsed, frame_len=packet.frame_len)


class TestRoundTrip:
    @given(mac, mac, ip4, ip4, port, port)
    def test_eth_ipv4_tcp(self, dst, src, ip_src, ip_dst, sport, dport):
        packet = Packet(
            headers=(
                Ethernet(dst=dst, src=src, ethertype=ETHERTYPE_IPV4),
                IPv4(src=ip_src, dst=ip_dst, proto=IP_PROTO_TCP),
                Tcp(src_port=sport, dst_port=dport),
            ),
            payload=b"hello",
        )
        parsed = roundtrip(packet)
        assert parsed.match_fields() == packet.match_fields()
        assert parsed.payload == b"hello"

    @given(st.integers(min_value=0, max_value=4095), port, port)
    def test_eth_vlan_ipv4_udp(self, vid, sport, dport):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=vid, pcp=3, ethertype=ETHERTYPE_IPV4),
                IPv4(src=9, dst=10, proto=IP_PROTO_UDP),
                Udp(src_port=sport, dst_port=dport),
            )
        )
        parsed = roundtrip(packet)
        assert parsed.match_fields() == packet.match_fields()

    @given(ip6, ip6)
    def test_eth_ipv6_tcp(self, src, dst):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV6),
                IPv6(src=src, dst=dst, next_header=IP_PROTO_TCP, flow_label=7),
                Tcp(src_port=80, dst_port=443),
            )
        )
        parsed = roundtrip(packet)
        assert parsed.match_fields() == packet.match_fields()

    def test_mpls_stack(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_MPLS),
                Mpls(label=100, bos=0),
                Mpls(label=200, bos=1),
            ),
            payload=b"\x45" + b"\x00" * 19,
        )
        parsed = roundtrip(packet)
        labels = [h.label for h in parsed.headers if isinstance(h, Mpls)]
        assert labels == [100, 200]

    def test_icmp(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV4),
                IPv4(src=1, dst=2, proto=IP_PROTO_ICMP),
                Icmp(icmp_type=8, code=0),
            )
        )
        parsed = roundtrip(packet)
        assert parsed.match_fields()["icmpv4_type"] == 8

    def test_qinq(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=0x88A8),
                Vlan(vid=10, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=20, ethertype=ETHERTYPE_IPV4),
                IPv4(src=1, dst=2, proto=IP_PROTO_TCP),
                Tcp(src_port=1, dst_port=2),
            )
        )
        parsed = roundtrip(packet)
        vlans = [h for h in parsed.headers if isinstance(h, Vlan)]
        assert [v.vid for v in vlans] == [10, 20]


class TestBuilder:
    def test_ipv4_checksum_known_vector(self):
        # RFC 1071 style check: checksum of header with checksum field
        # zeroed, then verified by summing to 0xFFFF.
        header = bytes.fromhex("450000730000400040110000c0a80001c0a800c7")
        checksum = ipv4_checksum(header)
        patched = header[:10] + checksum.to_bytes(2, "big") + header[12:]
        assert ipv4_checksum(patched) == 0

    def test_inconsistent_stack_rejected(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_VLAN),  # says VLAN
                IPv4(src=1, dst=2, proto=6),  # but IPv4 follows
                Tcp(src_port=1, dst_port=2),
            )
        )
        with pytest.raises(ValueError):
            build_packet(packet)

    def test_ipv4_total_length_encodes_payload(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV4),
                IPv4(src=1, dst=2, proto=IP_PROTO_UDP),
                Udp(src_port=1, dst_port=2),
            ),
            payload=b"x" * 10,
        )
        raw = build_packet(packet)
        total_length = int.from_bytes(raw[16:18], "big")
        assert total_length == 20 + 8 + 10


class TestParser:
    def test_truncated_ethernet(self):
        with pytest.raises(ParseError):
            parse_packet(b"\x00" * 13)

    def test_truncated_ipv4(self):
        frame = b"\x00" * 12 + b"\x08\x00" + b"\x45\x00"
        with pytest.raises(ParseError):
            parse_packet(frame)

    def test_bad_ip_version(self):
        frame = b"\x00" * 12 + b"\x08\x00" + b"\x65" + b"\x00" * 19
        with pytest.raises(ParseError):
            parse_packet(frame)

    def test_unknown_ethertype_becomes_payload(self):
        frame = b"\x00" * 12 + b"\x88\xb5" + b"payload!"
        packet = parse_packet(frame)
        assert len(packet.headers) == 1
        assert packet.payload == b"payload!"

    def test_unknown_ip_proto_keeps_payload(self):
        packet = Packet(
            headers=(
                Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV4),
                IPv4(src=1, dst=2, proto=47),  # GRE: not parsed
            ),
            payload=b"tail",
        )
        parsed = roundtrip(packet)
        assert parsed.payload == b"tail"
        assert parsed.match_fields()["ip_proto"] == 47

    def test_in_port_attached(self):
        frame = build_packet(
            Packet(headers=(Ethernet(dst=1, src=2, ethertype=0x1234),))
        )
        assert parse_packet(frame, in_port=5).in_port == 5

    def test_ipv4_options_skipped(self):
        # ihl=6 -> 24-byte header; parser must skip the 4 option bytes.
        base = bytearray(
            build_packet(
                Packet(
                    headers=(
                        Ethernet(dst=1, src=2, ethertype=ETHERTYPE_IPV4),
                        IPv4(src=1, dst=2, proto=IP_PROTO_UDP),
                        Udp(src_port=7, dst_port=8),
                    )
                )
            )
        )
        base[14] = 0x46  # version 4, ihl 6
        frame = bytes(base[:34]) + b"\x00\x00\x00\x00" + bytes(base[34:])
        parsed = parse_packet(frame)
        assert parsed.match_fields()["udp_src"] == 7
