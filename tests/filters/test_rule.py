"""Tests for the rule/rule-set model."""

import pytest

from repro.filters.rule import (
    Application,
    Rule,
    RuleSet,
    exact_rule,
    merge_rule_sets,
)
from repro.openflow.instructions import GotoTable, WriteActions
from repro.openflow.match import (
    ExactMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)


class TestRule:
    def test_predicate_defaults_to_wildcard(self):
        rule = exact_rule(in_port=1)
        assert isinstance(rule.predicate("ipv4_dst"), WildcardMatch)
        assert rule.predicate("ipv4_dst").bits == 32

    def test_matches_requires_field_present(self):
        rule = exact_rule(ipv4_dst=5)
        assert not rule.matches({"in_port": 1})
        assert rule.matches({"ipv4_dst": 5})

    def test_to_match_drops_wildcards(self):
        rule = Rule(
            fields={
                "in_port": ExactMatch(value=1, bits=32),
                "ipv4_dst": PrefixMatch(value=0, length=0, bits=32),
                "tcp_dst": RangeMatch(low=0, high=65535, bits=16),
                "eth_type": WildcardMatch(bits=16),
            }
        )
        match = rule.to_match()
        assert set(match) == {"in_port"}

    def test_equality_and_hash(self):
        a = exact_rule(priority=2, action_port=1, in_port=9)
        b = exact_rule(priority=2, action_port=1, in_port=9)
        assert a == b and hash(a) == hash(b)
        assert a != exact_rule(priority=3, action_port=1, in_port=9)


class TestRuleSet:
    def test_schema_enforced_on_add(self):
        rules = RuleSet("s", Application.ACL, ("ipv4_src",))
        with pytest.raises(ValueError):
            rules.add(exact_rule(in_port=1))

    def test_schema_enforced_at_construction(self):
        with pytest.raises(ValueError):
            RuleSet("s", Application.ACL, ("ipv4_src",), rules=[exact_rule(in_port=1)])

    def test_linear_lookup_priority(self, tiny_routing_set):
        fields = {"in_port": 1, "ipv4_dst": 0x0A141E05}
        hit = tiny_routing_set.linear_lookup(fields)
        assert hit is not None and hit.action_port == 12  # the /24

    def test_linear_lookup_falls_back(self, tiny_routing_set):
        fields = {"in_port": 1, "ipv4_dst": 0x0A990000}
        hit = tiny_routing_set.linear_lookup(fields)
        assert hit is not None and hit.action_port == 10  # the /8

    def test_linear_lookup_default_route(self, tiny_routing_set):
        fields = {"in_port": 1, "ipv4_dst": 0xC0000000}
        hit = tiny_routing_set.linear_lookup(fields)
        assert hit is not None and hit.action_port == 99

    def test_linear_lookup_miss(self, tiny_routing_set):
        assert tiny_routing_set.linear_lookup({"in_port": 9, "ipv4_dst": 1}) is None

    def test_field_predicates_include_wildcards(self, tiny_acl_set):
        predicates = tiny_acl_set.field_predicates("ip_proto")
        assert len(predicates) == 3
        assert sum(isinstance(p, WildcardMatch) for p in predicates) == 2

    def test_to_flow_entries_instructions(self, tiny_routing_set):
        entries = tiny_routing_set.to_flow_entries(goto_table=1)
        assert len(entries) == len(tiny_routing_set)
        first = entries[0]
        assert first.instructions.get(WriteActions) is not None
        goto = first.instructions.get(GotoTable)
        assert goto is not None and goto.table_id == 1

    def test_to_flow_entries_without_goto(self, tiny_routing_set):
        entries = tiny_routing_set.to_flow_entries()
        assert all(e.instructions.goto_table is None for e in entries)

    def test_merge(self, tiny_routing_set):
        other = RuleSet("o", Application.ROUTING, ("in_port", "ipv4_dst"))
        other.add(exact_rule(in_port=7))
        merged = merge_rule_sets("m", [tiny_routing_set, other])
        assert len(merged) == len(tiny_routing_set) + 1

    def test_merge_rejects_mixed_schemas(self, tiny_routing_set, tiny_acl_set):
        with pytest.raises(ValueError):
            merge_rule_sets("m", [tiny_routing_set, tiny_acl_set])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_rule_sets("m", [])

    def test_summary_mentions_name(self, tiny_routing_set):
        assert "tiny-route" in tiny_routing_set.summary()
