"""Tests for 16-bit field partitioning (the Section III analysis core)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.filters.partitions import (
    entry_to_predicate,
    partition_entries,
    partition_scheme,
)
from repro.openflow.match import (
    ExactMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import canonical_prefix, mask_of, split_value


class TestScheme:
    def test_ethernet_three_partitions(self):
        names = [p.name for p in partition_scheme("eth_dst", 48)]
        assert names == ["eth_dst/hi", "eth_dst/mid", "eth_dst/lo"]

    def test_ipv4_two_partitions(self):
        names = [p.name for p in partition_scheme("ipv4_dst", 32)]
        assert names == ["ipv4_dst/hi", "ipv4_dst/lo"]

    def test_narrow_field_single_partition(self):
        scheme = partition_scheme("vlan_vid", 13)
        assert len(scheme) == 1 and scheme[0].name == "vlan_vid"
        assert scheme[0].bits == 13

    def test_ipv6_eight_partitions(self):
        scheme = partition_scheme("ipv6_dst", 128)
        assert len(scheme) == 8
        assert scheme[0].name == "ipv6_dst/p0"
        assert scheme[7].offset == 112

    def test_indivisible_width_rejected(self):
        with pytest.raises(ValueError):
            partition_scheme("x", 20, 16)


class TestEntries:
    def test_exact_value_full_entries(self):
        scheme = partition_scheme("eth_dst", 48)
        entries = partition_entries(ExactMatch(0x112233445566, 48), scheme)
        assert entries == ((0x1122, 16), (0x3344, 16), (0x5566, 16))

    def test_prefix_inside_first_partition(self):
        scheme = partition_scheme("ipv4_dst", 32)
        entries = partition_entries(PrefixMatch(0x0A000000, 8, 32), scheme)
        assert entries == ((0x0A00, 8), None)

    def test_prefix_at_partition_boundary(self):
        scheme = partition_scheme("ipv4_dst", 32)
        entries = partition_entries(PrefixMatch(0x0A140000, 16, 32), scheme)
        assert entries == ((0x0A14, 16), None)

    def test_prefix_spanning_partitions(self):
        scheme = partition_scheme("ipv4_dst", 32)
        entries = partition_entries(PrefixMatch(0x0A141E00, 24, 32), scheme)
        assert entries == ((0x0A14, 16), (0x1E00, 8))

    def test_default_route_all_wild(self):
        scheme = partition_scheme("ipv4_dst", 32)
        entries = partition_entries(PrefixMatch(0, 0, 32), scheme)
        assert entries == (None, None)

    def test_wildcard_all_none(self):
        scheme = partition_scheme("eth_dst", 48)
        assert partition_entries(WildcardMatch(48), scheme) == (None, None, None)

    def test_range_rejected(self):
        scheme = partition_scheme("tcp_dst", 16)
        with pytest.raises(TypeError):
            partition_entries(RangeMatch(1, 5, 16), scheme)

    @given(
        st.integers(min_value=0, max_value=mask_of(32)),
        st.integers(min_value=0, max_value=32),
    )
    def test_roundtrip_matches_original(self, raw, length):
        """A value matches the original prefix iff every partition's
        sliced value matches the partition entry."""
        value, length = canonical_prefix(raw, length, 32)
        predicate = PrefixMatch(value=value, length=length, bits=32)
        scheme = partition_scheme("ipv4_dst", 32)
        entries = partition_entries(predicate, scheme)

        probe = raw ^ 0x5A5A5A5A  # arbitrary probe value
        parts = split_value(probe, 32, 16)
        partwise = all(
            entry_to_predicate(entry, 16).matches(part)
            for entry, part in zip(entries, parts)
        )
        assert partwise == predicate.matches(probe)

    @given(st.integers(min_value=0, max_value=mask_of(48)))
    def test_exact_roundtrip_ethernet(self, value):
        scheme = partition_scheme("eth_dst", 48)
        entries = partition_entries(ExactMatch(value, 48), scheme)
        parts = split_value(value, 48, 16)
        assert all(e == (p, 16) for e, p in zip(entries, parts))


class TestEntryToPredicate:
    def test_none_is_wildcard(self):
        assert isinstance(entry_to_predicate(None, 16), WildcardMatch)

    def test_full_length_is_exact(self):
        assert entry_to_predicate((5, 16), 16) == ExactMatch(5, 16)

    def test_partial_is_prefix(self):
        assert entry_to_predicate((0xAB00, 8), 16) == PrefixMatch(0xAB00, 8, 16)
