"""Calibration tests: every synthetic set must match Tables III/IV exactly.

These are the load-bearing tests of the substitution argument (DESIGN.md
Section 2): the generated rule sets reproduce every published statistic
the paper's evaluation depends on.
"""

import pytest

from repro.analysis.unique_values import exact_values, partition_unique_entries
from repro.filters.paper_data import (
    FILTER_NAMES,
    TABLE3_MAC_STATS,
    TABLE4_ROUTING_STATS,
)
from repro.filters.rule import Application
from repro.filters.synthetic import (
    SyntheticAclConfig,
    VLAN_PRESENT,
    generate_acl_set,
    generate_mac_set,
    generate_routing_set,
    mac_set,
    routing_set,
)
from repro.openflow.match import ExactMatch, PrefixMatch

#: Small filters checked exhaustively in the parametrised calibration
#: tests; the giant ones (coza/cozb/soza/sozb, >180 k rules) are covered
#: once in the slow test below and continuously by the experiments.
FAST_FILTERS = tuple(
    name
    for name in FILTER_NAMES
    if TABLE4_ROUTING_STATS[name].rules < 100_000
)


@pytest.mark.parametrize("name", FILTER_NAMES)
def test_mac_calibration_exact(name):
    stats = TABLE3_MAC_STATS[name]
    rules = mac_set(name)
    eth = partition_unique_entries(rules, "eth_dst")
    assert len(rules) == stats.rules
    assert len(exact_values(rules, "vlan_vid")) == stats.unique_vlan
    assert len(eth["eth_dst/hi"]) == stats.unique_eth_high
    assert len(eth["eth_dst/mid"]) == stats.unique_eth_mid
    assert len(eth["eth_dst/lo"]) == stats.unique_eth_low


@pytest.mark.parametrize("name", FAST_FILTERS)
def test_routing_calibration_exact(name):
    stats = TABLE4_ROUTING_STATS[name]
    rules = routing_set(name)
    ip = partition_unique_entries(rules, "ipv4_dst")
    assert len(rules) == stats.rules
    assert len(exact_values(rules, "in_port")) == stats.unique_port
    assert len(ip["ipv4_dst/hi"]) == stats.unique_ip_high
    assert len(ip["ipv4_dst/lo"]) == stats.unique_ip_low


@pytest.mark.slow
def test_routing_calibration_largest_filter():
    stats = TABLE4_ROUTING_STATS["coza"]
    rules = routing_set("coza")
    ip = partition_unique_entries(rules, "ipv4_dst")
    assert len(rules) == stats.rules == 184_909
    assert len(ip["ipv4_dst/hi"]) == stats.unique_ip_high == 20_214
    assert len(ip["ipv4_dst/lo"]) == stats.unique_ip_low == 7_062


class TestMacSetProperties:
    def test_deterministic(self):
        a = generate_mac_set(TABLE3_MAC_STATS["bbrb"])
        b = generate_mac_set(TABLE3_MAC_STATS["bbrb"])
        assert list(a) == list(b)

    def test_seed_changes_values(self):
        a = generate_mac_set(TABLE3_MAC_STATS["bbrb"], seed=1)
        b = generate_mac_set(TABLE3_MAC_STATS["bbrb"], seed=2)
        assert list(a) != list(b)

    def test_macs_distinct(self, small_mac_set):
        macs = [r.fields["eth_dst"].value for r in small_mac_set]
        assert len(set(macs)) == len(macs)

    def test_vlan_present_bit_set(self, small_mac_set):
        for rule in small_mac_set:
            vlan = rule.fields["vlan_vid"]
            assert isinstance(vlan, ExactMatch)
            assert vlan.value & VLAN_PRESENT

    def test_application_and_schema(self, small_mac_set):
        assert small_mac_set.application is Application.MAC_LEARNING
        assert small_mac_set.field_names == ("vlan_vid", "eth_dst")


class TestRoutingSetProperties:
    def test_prefixes_distinct(self, small_routing_set):
        prefixes = [
            (r.fields["ipv4_dst"].value, r.fields["ipv4_dst"].length)
            for r in small_routing_set
        ]
        assert len(set(prefixes)) == len(prefixes)

    def test_contains_default_route(self, small_routing_set):
        assert any(
            isinstance(r.fields["ipv4_dst"], PrefixMatch)
            and r.fields["ipv4_dst"].length == 0
            for r in small_routing_set
        )

    def test_priority_is_prefix_length(self, small_routing_set):
        for rule in small_routing_set:
            assert rule.priority == rule.fields["ipv4_dst"].length

    def test_prefixes_canonical(self, small_routing_set):
        from repro.util.bits import prefix_mask

        for rule in small_routing_set:
            prefix = rule.fields["ipv4_dst"]
            assert prefix.value & ~prefix_mask(prefix.length, 32) == 0

    def test_no_slash16_routes(self, small_routing_set):
        """/16 routes are excluded by design (see the generator docstring)."""
        assert all(r.fields["ipv4_dst"].length != 16 for r in small_routing_set)

    def test_deterministic(self):
        from tests.conftest import SMALL_ROUTING_STATS

        a = generate_routing_set(SMALL_ROUTING_STATS, seed=3)
        b = generate_routing_set(SMALL_ROUTING_STATS, seed=3)
        assert list(a) == list(b)


class TestAclSet:
    def test_size_and_schema(self, small_acl_set):
        assert len(small_acl_set) == 120
        assert small_acl_set.application is Application.ACL

    def test_priorities_descending_unique(self, small_acl_set):
        priorities = [r.priority for r in small_acl_set]
        assert priorities == sorted(priorities, reverse=True)
        assert len(set(priorities)) == len(priorities)

    def test_contains_ranges_and_prefixes(self, small_acl_set):
        from repro.openflow.match import RangeMatch

        kinds = {type(p) for r in small_acl_set for p in r.fields.values()}
        assert RangeMatch in kinds and PrefixMatch in kinds

    def test_deterministic(self):
        a = generate_acl_set(SyntheticAclConfig(rules=30, seed=4))
        b = generate_acl_set(SyntheticAclConfig(rules=30, seed=4))
        assert list(a) == list(b)


class TestCaching:
    def test_mac_set_cached(self):
        assert mac_set("bbrb") is mac_set("bbrb")

    def test_routing_set_cached(self):
        assert routing_set("bbrb") is routing_set("bbrb")
