"""Sanity checks on the embedded published statistics."""

from repro.filters.paper_data import (
    FILTER_NAMES,
    OUTLIER_ROUTING_FILTERS,
    PAPER_HEADLINE_RESULTS,
    TABLE3_MAC_STATS,
    TABLE4_ROUTING_STATS,
)


def test_sixteen_filters_each():
    assert len(FILTER_NAMES) == 16
    assert set(TABLE3_MAC_STATS) == set(FILTER_NAMES)
    assert set(TABLE4_ROUTING_STATS) == set(FILTER_NAMES)


def test_spot_checks_against_paper():
    gozb = TABLE3_MAC_STATS["gozb"]
    assert (gozb.rules, gozb.unique_vlan) == (7370, 209)
    assert gozb.unique_eth_partitions == (159, 1946, 6177)
    coza = TABLE4_ROUTING_STATS["coza"]
    assert coza.rules == 184909
    assert coza.unique_ip_partitions == (20214, 7062)


def test_outliers_have_high_exceeding_low():
    for name in FILTER_NAMES:
        stats = TABLE4_ROUTING_STATS[name]
        assert stats.high_exceeds_low == (name in OUTLIER_ROUTING_FILTERS)


def test_max_unique_vlan_is_209_gozb():
    best = max(TABLE3_MAC_STATS.values(), key=lambda s: s.unique_vlan)
    assert best.name == "gozb" and best.unique_vlan == 209


def test_max_ingress_port_is_77_yoza():
    best = max(TABLE4_ROUTING_STATS.values(), key=lambda s: s.unique_port)
    assert best.name == "yoza" and best.unique_port == 77


def test_unique_counts_do_not_exceed_rules():
    for stats in TABLE3_MAC_STATS.values():
        assert max(
            stats.unique_vlan,
            stats.unique_eth_high,
            stats.unique_eth_mid,
            stats.unique_eth_low,
        ) <= stats.rules
    for stats in TABLE4_ROUTING_STATS.values():
        assert max(stats.unique_port, stats.unique_ip_high, stats.unique_ip_low) <= (
            stats.rules
        )


def test_total_unique_entries_helper():
    bbra = TABLE3_MAC_STATS["bbra"]
    assert bbra.total_unique_entries == 48 + 46 + 133 + 261


def test_headline_results_present():
    assert PAPER_HEADLINE_RESULTS["prototype_total_mbits"] == 5.0
    assert PAPER_HEADLINE_RESULTS["label_update_saving_percent"] == 56.92
    assert PAPER_HEADLINE_RESULTS["max_stored_nodes"] == 54010
    assert PAPER_HEADLINE_RESULTS["l1_max_bits"] == 832
