"""Round-trip tests for the ClassBench and Stanford file codecs."""

import pytest

from repro.filters.classbench import (
    load_classbench,
    parse_classbench_line,
    write_classbench,
)
from repro.filters.rule import Application
from repro.filters.stanford import load_stanford, write_stanford
from repro.openflow.match import ExactMatch, PrefixMatch, RangeMatch


class TestClassBench:
    LINE = "@192.168.0.0/16\t10.0.0.0/8\t0 : 65535\t1024 : 65535\t0x06/0xFF"

    def test_parse_line(self):
        rule = parse_classbench_line(self.LINE, priority=5)
        assert rule.fields["ipv4_src"] == PrefixMatch(0xC0A80000, 16, 32)
        assert rule.fields["ipv4_dst"] == PrefixMatch(0x0A000000, 8, 32)
        assert "tcp_src" not in rule.fields  # full range dropped
        assert rule.fields["tcp_dst"] == RangeMatch(1024, 65535, 16)
        assert rule.fields["ip_proto"] == ExactMatch(6, 8)
        assert rule.priority == 5

    def test_parse_wildcard_proto(self):
        line = "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00"
        rule = parse_classbench_line(line)
        assert rule.fields == {}

    def test_parse_noncanonical_prefix_normalised(self):
        line = "@10.0.0.5/8\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00"
        rule = parse_classbench_line(line)
        assert rule.fields["ipv4_src"] == PrefixMatch(0x0A000000, 8, 32)

    def test_parse_bad_line_rejected(self):
        with pytest.raises(ValueError):
            parse_classbench_line("not a rule")

    def test_partial_proto_mask_rejected(self):
        line = "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x06/0x0F"
        with pytest.raises(ValueError):
            parse_classbench_line(line)

    def test_file_roundtrip(self, tiny_acl_set, tmp_path):
        path = write_classbench(tiny_acl_set, tmp_path / "acl.rules")
        loaded = load_classbench(path, name="tiny-acl")
        assert len(loaded) == len(tiny_acl_set)
        # First-match order is preserved: priorities descend in file order.
        original = sorted(tiny_acl_set, key=lambda r: -r.priority)
        for a, b in zip(original, loaded):
            assert dict(a.fields) == dict(b.fields)

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "rules.txt"
        path.write_text(f"# header\n{self.LINE}\n\n{self.LINE}\n")
        loaded = load_classbench(path)
        assert len(loaded) == 2
        assert loaded.rules[0].priority > loaded.rules[1].priority

    def test_application_is_acl(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text(self.LINE + "\n")
        assert load_classbench(path).application is Application.ACL


class TestStanford:
    def test_mac_roundtrip(self, small_mac_set, tmp_path):
        path = write_stanford(small_mac_set, tmp_path / "mac.tbl")
        loaded = load_stanford(path, Application.MAC_LEARNING)
        assert len(loaded) == len(small_mac_set)
        assert list(loaded) == list(small_mac_set)

    def test_routing_roundtrip(self, small_routing_set, tmp_path):
        path = write_stanford(small_routing_set, tmp_path / "route.tbl")
        loaded = load_stanford(path, Application.ROUTING)
        assert len(loaded) == len(small_routing_set)
        assert list(loaded) == list(small_routing_set)

    def test_mac_line_format(self, small_mac_set, tmp_path):
        path = write_stanford(small_mac_set, tmp_path / "mac.tbl")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("#")
        vlan, mac, port = lines[1].split()
        assert mac.count(":") == 5
        assert vlan.isdigit() and port.isdigit()

    def test_unsupported_application_rejected(self, tiny_acl_set, tmp_path):
        with pytest.raises(ValueError):
            write_stanford(tiny_acl_set, tmp_path / "x.tbl")
        with pytest.raises(ValueError):
            load_stanford(tmp_path / "nope.tbl", Application.ACL)

    def test_bad_mac_rejected(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_text("1 00:11:22:33:44 7\n")  # five octets only
        with pytest.raises(ValueError):
            load_stanford(path, Application.MAC_LEARNING)
