"""End-to-end integration: wire bytes -> parser -> architecture -> actions.

These tests exercise the full packet path a real switch would: a frame is
serialised, parsed back, its fields extracted, classified by the
prototype architecture, and the resulting OpenFlow actions checked —
plus three-way differential checks against the behavioural pipeline and
the TCAM baseline.
"""

import pytest

from repro.algorithms.tcam import Tcam
from repro.baselines.single_table import SingleTableSwitch
from repro.core.builder import build_architecture, build_prototype
from repro.filters.synthetic import VLAN_PRESENT
from repro.openflow.match import ExactMatch
from repro.packet.builder import build_packet
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    IP_PROTO_TCP,
    Ethernet,
    IPv4,
    Tcp,
    Vlan,
)
from repro.packet.packet import Packet
from repro.packet.parser import parse_packet


def frame_for_mac_rule(rule, routing_rule):
    """Build a wire-format frame matching a MAC rule + a routing rule."""
    vlan_predicate = rule.fields["vlan_vid"]
    mac_predicate = rule.fields["eth_dst"]
    assert isinstance(vlan_predicate, ExactMatch)
    port_predicate = routing_rule.fields["in_port"]
    prefix = routing_rule.fields["ipv4_dst"]
    dst_ip = prefix.value | (0x01 if prefix.length <= 24 else 0)
    packet = Packet(
        headers=(
            Ethernet(
                dst=mac_predicate.value, src=0x020000000001, ethertype=ETHERTYPE_VLAN
            ),
            Vlan(vid=vlan_predicate.value & ~VLAN_PRESENT, ethertype=ETHERTYPE_IPV4),
            IPv4(src=0x0A0A0A0A, dst=dst_ip, proto=IP_PROTO_TCP),
            Tcp(src_port=12345, dst_port=80),
        ),
        in_port=port_predicate.value,
    )
    return build_packet(packet), port_predicate.value


class TestWireToAction:
    def test_frame_through_prototype(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        mac_rule = small_mac_set.rules[7]
        routing_rule = next(
            r for r in small_routing_set if r.fields["ipv4_dst"].length >= 16
        )
        frame, in_port = frame_for_mac_rule(mac_rule, routing_rule)

        parsed = parse_packet(frame, in_port=in_port)
        result = prototype.process(parsed.match_fields())
        assert result.matched
        assert result.tables_visited == [0, 1, 2, 3]
        assert result.output_ports  # routing action executed

    def test_unknown_mac_goes_to_controller(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        packet = Packet(
            headers=(
                Ethernet(dst=0xFFFFFFFFFFFF, src=1, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=4000, ethertype=ETHERTYPE_IPV4),
                IPv4(src=1, dst=2, proto=IP_PROTO_TCP),
                Tcp(src_port=1, dst_port=2),
            ),
            in_port=0,
        )
        parsed = parse_packet(build_packet(packet))
        result = prototype.process(parsed.match_fields())
        assert result.sent_to_controller


class TestThreeWayDifferential:
    @pytest.mark.parametrize("hit_rate", [0.0, 0.5, 1.0])
    def test_architecture_vs_single_table_vs_tcam(
        self, small_routing_set, generator, hit_rate
    ):
        architecture = build_architecture([small_routing_set])
        single = SingleTableSwitch([small_routing_set])
        tcam = Tcam.from_rule_set(small_routing_set)

        matches = [r.to_match() for r in small_routing_set.rules[:50]]
        trace = generator.field_trace(
            matches,
            120,
            hit_rate=hit_rate,
            fill_fields=small_routing_set.field_names,
        )
        for fields in trace:
            architecture_hit = architecture.process(fields)
            single_hit = single.lookup(fields)
            tcam_hit = tcam.lookup(fields)
            if single_hit is None:
                assert not architecture_hit.matched
                assert tcam_hit is None
            else:
                assert architecture_hit.matched
                assert tcam_hit is not None
                # All three return the same forwarding decision.
                assert architecture_hit.output_ports == [tcam_hit.action_port]

    def test_mac_learning_differential(self, small_mac_set, generator):
        architecture = build_architecture([small_mac_set])
        tcam = Tcam.from_rule_set(small_mac_set)
        matches = [r.to_match() for r in small_mac_set]
        trace = generator.field_trace(
            matches, 150, hit_rate=0.8, fill_fields=small_mac_set.field_names
        )
        for fields in trace:
            architecture_hit = architecture.process(fields)
            tcam_hit = tcam.lookup(fields)
            if tcam_hit is None:
                assert not architecture_hit.matched
            else:
                assert architecture_hit.output_ports == [tcam_hit.action_port]


class TestIncrementalUpdateFlow:
    def test_learn_then_forward(self, small_mac_set, small_routing_set, generator):
        """Simulate a controller reacting to a packet-in by installing a
        flow, after which the same packet forwards in the data plane."""
        from repro.core.builder import build_lookup_table
        from repro.openflow.actions import OutputAction
        from repro.openflow.flow import FlowEntry
        from repro.openflow.instructions import WriteActions
        from repro.openflow.match import Match

        table = build_lookup_table(small_mac_set)
        unknown = {"vlan_vid": 0x1000 | 999, "eth_dst": 0xDEADBEEF0001}
        assert table.lookup(unknown) is None  # packet-in

        table.add(
            FlowEntry.build(
                match=Match(
                    {
                        "vlan_vid": ExactMatch(0x1000 | 999, 13),
                        "eth_dst": ExactMatch(0xDEADBEEF0001, 48),
                    }
                ),
                priority=1,
                instructions=[WriteActions([OutputAction(17)])],
            )
        )
        hit = table.lookup(unknown)
        assert hit is not None

        # Ageing out: the entry is removed and the packet misses again.
        assert table.remove(hit.match, hit.priority)
        assert table.lookup(unknown) is None
