"""Trie tests: the unibit oracle, and the multi-bit trie against it.

The multi-bit trie with controlled prefix expansion is the paper's
central structure; its lookup/lookup_all are differential-tested against
the obviously-correct binary trie under hypothesis-generated workloads,
including interleaved removals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import NO_LABEL
from repro.algorithms.binary_trie import BinaryTrie
from repro.algorithms.multibit_trie import DEFAULT_STRIDES, MultibitTrie
from repro.util.bits import canonical_prefix, mask_of

prefixes = st.tuples(
    st.integers(min_value=0, max_value=mask_of(16)),
    st.integers(min_value=0, max_value=16),
).map(lambda t: canonical_prefix(t[0], t[1], 16))

prefix_lists = st.lists(prefixes, min_size=0, max_size=60, unique=True)
keys = st.integers(min_value=0, max_value=mask_of(16))


def build_both(entries):
    binary = BinaryTrie(key_bits=16)
    multibit = MultibitTrie(key_bits=16)
    for label, (value, length) in enumerate(entries, start=1):
        binary.insert(value, length, label)
        multibit.insert(value, length, label)
    return binary, multibit


class TestBinaryTrie:
    def test_lpm_basic(self):
        trie = BinaryTrie(key_bits=16)
        trie.insert(0x0A00, 8, 1)
        trie.insert(0x0A80, 9, 2)
        assert trie.lookup(0x0A90) == 2
        assert trie.lookup(0x0A10) == 1
        assert trie.lookup(0x0B00) == NO_LABEL

    def test_lookup_all_longest_first(self):
        trie = BinaryTrie(key_bits=16)
        trie.insert(0x0A00, 8, 1)
        trie.insert(0x0A80, 9, 2)
        trie.insert(0, 0, 3)
        assert trie.lookup_all(0x0A90) == (2, 1, 3)

    def test_duplicate_same_label_noop(self):
        trie = BinaryTrie(key_bits=16)
        trie.insert(0x0A00, 8, 1)
        trie.insert(0x0A00, 8, 1)
        assert len(trie) == 1

    def test_duplicate_other_label_rejected(self):
        trie = BinaryTrie(key_bits=16)
        trie.insert(0x0A00, 8, 1)
        with pytest.raises(ValueError):
            trie.insert(0x0A00, 8, 2)

    def test_node_counts(self):
        trie = BinaryTrie(key_bits=16)
        trie.insert(0x8000, 1, 1)
        assert trie.node_count() == 2  # root + one child
        assert trie.nodes_per_depth() == [1, 1]


class TestMultibitTrieBasics:
    def test_strides_must_sum(self):
        with pytest.raises(ValueError):
            MultibitTrie(key_bits=16, strides=(5, 5))

    def test_default_strides(self):
        trie = MultibitTrie()
        assert trie.strides == DEFAULT_STRIDES
        assert trie.boundaries == (5, 10, 16)

    def test_non_canonical_rejected(self):
        with pytest.raises(ValueError):
            MultibitTrie().insert(0x0001, 8, 1)

    def test_no_label_rejected(self):
        with pytest.raises(ValueError):
            MultibitTrie().insert(0, 0, NO_LABEL)

    def test_default_entry(self):
        trie = MultibitTrie()
        trie.insert(0, 0, 7)
        assert trie.lookup(0x1234) == 7
        assert trie.lookup_all(0xFFFF) == (7,)

    def test_conflicting_default_rejected(self):
        trie = MultibitTrie()
        trie.insert(0, 0, 7)
        with pytest.raises(ValueError):
            trie.insert(0, 0, 8)

    def test_expansion_count(self):
        """A /8 prefix expands to 2^(10-8)=4 records at level 2."""
        trie = MultibitTrie()
        trie.insert(0x0A00, 8, 1)
        stats = trie.level_stats()
        assert stats[0].records == 1  # path record at L1
        assert stats[1].records == 4  # expanded records
        assert stats[2].records == 0

    def test_boundary_prefix_no_expansion(self):
        trie = MultibitTrie()
        trie.insert(0x5000, 5, 1)  # exactly at L1 boundary
        stats = trie.level_stats()
        assert stats[0].records == 1
        assert stats[1].records == 0

    def test_longest_wins_shared_record(self):
        trie = MultibitTrie()
        trie.insert(0x0A00, 7, 1)  # /7 expands over 8 L2 records
        trie.insert(0x0A00, 8, 2)  # /8 expands over 4 of the same records
        assert trie.lookup(0x0A01) == 2  # inside /8: longest wins
        assert trie.lookup(0x0B01) == 1  # outside /8 but inside /7

    def test_level_stats_fields(self):
        trie = MultibitTrie()
        trie.insert(0x0A14, 16, 1)
        stats = trie.level_stats()
        assert [s.level for s in stats] == [1, 2, 3]
        assert [s.boundary for s in stats] == [5, 10, 16]
        assert stats[0].with_child == 1
        assert stats[2].with_label == 1

    def test_full_array_records(self):
        trie = MultibitTrie()
        trie.insert(0x0A14, 16, 1)
        full = trie.full_array_records()
        assert full[0] == 32  # complete root array
        assert full[1] == 32  # one L2 node of 2^5
        assert full[2] == 64  # one L3 node of 2^6

    def test_entries_iterator(self):
        trie = MultibitTrie()
        trie.insert(0x0A00, 8, 1)
        assert list(trie.entries()) == [(0x0A00, 8, 1)]
        assert (0x0A00, 8) in trie

    def test_max_label(self):
        trie = MultibitTrie()
        assert trie.max_label() == 0
        trie.insert(0x0A00, 8, 41)
        assert trie.max_label() == 41

    def test_wide_key_rejected_on_lookup(self):
        with pytest.raises(ValueError):
            MultibitTrie().lookup(1 << 16)


class TestMultibitVsBinary:
    @settings(max_examples=150)
    @given(prefix_lists, keys)
    def test_lookup_matches_oracle(self, entries, key):
        binary, multibit = build_both(entries)
        assert multibit.lookup(key) == binary.lookup(key)

    @settings(max_examples=150)
    @given(prefix_lists, keys)
    def test_lookup_all_matches_oracle(self, entries, key):
        binary, multibit = build_both(entries)
        assert multibit.lookup_all(key) == binary.lookup_all(key)

    @settings(max_examples=100)
    @given(prefix_lists, st.data())
    def test_removal_equivalent_to_never_inserted(self, entries, data):
        if not entries:
            return
        doomed = data.draw(st.sampled_from(entries))
        survivors = [e for e in entries if e != doomed]

        multibit = MultibitTrie(key_bits=16)
        for label, (value, length) in enumerate(entries, start=1):
            multibit.insert(value, length, label)
        assert multibit.remove(*doomed)

        reference = MultibitTrie(key_bits=16)
        for value, length in survivors:
            reference.insert(value, length, multibit._entries[(value, length)])

        key = data.draw(keys)
        assert multibit.lookup(key) == reference.lookup(key)
        assert multibit.lookup_all(key) == reference.lookup_all(key)
        # Garbage collection restores the exact record population.
        assert [s.records for s in multibit.level_stats()] == [
            s.records for s in reference.level_stats()
        ]

    def test_remove_missing_returns_false(self):
        assert not MultibitTrie().remove(0x0A00, 8)

    def test_remove_all_empties_structure(self):
        trie = MultibitTrie()
        entries = [(0x0A00, 8), (0x0A14, 16), (0x8000, 2), (0, 0)]
        for label, (value, length) in enumerate(entries, start=1):
            trie.insert(value, length, label)
        for value, length in entries:
            assert trie.remove(value, length)
        assert trie.stored_nodes() == 0
        assert len(trie) == 0
        assert trie.lookup(0x0A01) == NO_LABEL


class TestAlternativeStrides:
    @settings(max_examples=60)
    @given(
        prefix_lists,
        keys,
        st.sampled_from([(16,), (8, 8), (4, 4, 4, 4), (6, 5, 5), (1,) * 16]),
    )
    def test_any_stride_distribution_correct(self, entries, key, strides):
        binary = BinaryTrie(key_bits=16)
        multibit = MultibitTrie(key_bits=16, strides=strides)
        for label, (value, length) in enumerate(entries, start=1):
            binary.insert(value, length, label)
            multibit.insert(value, length, label)
        assert multibit.lookup(key) == binary.lookup(key)
