"""Tests for the label allocator and the exact-match LUT."""

import pytest

from repro.algorithms.base import NO_LABEL
from repro.algorithms.exact_lut import ExactMatchLut
from repro.algorithms.labels import LabelAllocator


class TestLabelAllocator:
    def test_consecutive_from_one(self):
        alloc = LabelAllocator()
        assert alloc.label_for("a") == 1
        assert alloc.label_for("b") == 2
        assert alloc.label_for("a") == 1

    def test_get_without_allocating(self):
        alloc = LabelAllocator()
        assert alloc.get("missing") == NO_LABEL
        alloc.label_for("x")
        assert alloc.get("x") == 1

    def test_key_of_inverse(self):
        alloc = LabelAllocator()
        alloc.label_for(("p", 8))
        assert alloc.key_of(1) == ("p", 8)

    def test_key_of_invalid(self):
        with pytest.raises(KeyError):
            LabelAllocator().key_of(1)

    def test_len_contains_iter(self):
        alloc = LabelAllocator()
        alloc.label_for("a")
        alloc.label_for("b")
        assert len(alloc) == 2
        assert "a" in alloc and "c" not in alloc
        assert list(alloc) == ["a", "b"]

    def test_label_bits(self):
        alloc = LabelAllocator()
        assert alloc.label_bits == 0
        alloc.label_for("a")  # labels {0, 1} -> 1 bit
        assert alloc.label_bits == 1
        for i in range(6):
            alloc.label_for(f"k{i}")  # 7 labels + NO_LABEL -> 3 bits
        assert alloc.label_bits == 3

    def test_mapping_snapshot(self):
        alloc = LabelAllocator()
        alloc.label_for("a")
        snapshot = alloc.mapping
        alloc.label_for("b")
        assert snapshot == {"a": 1}


class TestExactMatchLut:
    def test_insert_lookup(self):
        lut = ExactMatchLut(key_bits=13)
        lut.insert(0x123, 1)
        assert lut.lookup(0x123) == 1
        assert lut.lookup(0x124) == NO_LABEL

    def test_lookup_all(self):
        lut = ExactMatchLut(key_bits=13)
        lut.insert(5, 2)
        assert lut.lookup_all(5) == (2,)
        assert lut.lookup_all(6) == ()

    def test_idempotent_insert(self):
        lut = ExactMatchLut(key_bits=8)
        lut.insert(1, 1)
        lut.insert(1, 1)
        assert len(lut) == 1

    def test_conflicting_label_rejected(self):
        lut = ExactMatchLut(key_bits=8)
        lut.insert(1, 1)
        with pytest.raises(ValueError):
            lut.insert(1, 2)

    def test_no_label_rejected(self):
        with pytest.raises(ValueError):
            ExactMatchLut(key_bits=8).insert(1, NO_LABEL)

    def test_width_enforced(self):
        with pytest.raises(ValueError):
            ExactMatchLut(key_bits=8).insert(256, 1)

    def test_remove(self):
        lut = ExactMatchLut(key_bits=8)
        lut.insert(1, 1)
        assert lut.remove(1)
        assert not lut.remove(1)
        assert lut.lookup(1) == NO_LABEL

    def test_size_provisioning(self):
        lut = ExactMatchLut(key_bits=13, occupancy=0.5)
        for i in range(10):
            lut.insert(i, i + 1)
        size = lut.size()
        assert size.entries == 10
        # 20 provisioned slots x (13 key bits + 4 label bits).
        assert size.bits == 20 * (13 + lut.label_bits)

    def test_size_empty(self):
        assert ExactMatchLut(key_bits=13).size().bits == 0

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            ExactMatchLut(key_bits=8, occupancy=0.0)

    def test_explicit_label_bits(self):
        lut = ExactMatchLut(key_bits=8, occupancy=1.0)
        lut.insert(1, 1)
        assert lut.size(label_bits=16).bits == 1 * (8 + 16)
