"""Tests for the elementary-interval range structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import NO_LABEL
from repro.algorithms.range_lookup import RangeLookup

ranges = st.tuples(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
).map(lambda t: (min(t), max(t)))

range_lists = st.lists(ranges, min_size=0, max_size=25, unique=True)


class TestBasics:
    def test_insert_lookup(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(10, 20, 1)
        assert lookup.lookup(15) == 1
        assert lookup.lookup(9) == NO_LABEL
        assert lookup.lookup(21) == NO_LABEL

    def test_inclusive_bounds(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(10, 20, 1)
        assert lookup.lookup(10) == 1 and lookup.lookup(20) == 1

    def test_narrowest_wins(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(0, 1023, 1)
        lookup.insert(80, 80, 2)
        assert lookup.lookup(80) == 2
        assert lookup.lookup(81) == 1

    def test_lookup_all_order(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(0, 65535, 1)
        lookup.insert(0, 1023, 2)
        lookup.insert(80, 80, 3)
        assert lookup.lookup_all(80) == (3, 2, 1)

    def test_remove(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(10, 20, 1)
        assert lookup.remove(10, 20)
        assert not lookup.remove(10, 20)
        assert lookup.lookup(15) == NO_LABEL

    def test_idempotent_insert(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(1, 2, 1)
        lookup.insert(1, 2, 1)
        assert len(lookup) == 1

    def test_conflicting_label_rejected(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(1, 2, 1)
        with pytest.raises(ValueError):
            lookup.insert(1, 2, 2)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            RangeLookup(key_bits=16).insert(5, 70000, 1)

    def test_full_width_boundary(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(65000, 65535, 1)
        assert lookup.lookup(65535) == 1

    def test_size_accounts_intervals(self):
        lookup = RangeLookup(key_bits=16)
        lookup.insert(0, 9, 1)
        lookup.insert(5, 20, 2)
        size = lookup.size()
        assert size.entries == 2
        assert size.bits > 0


class TestAgainstBruteForce:
    @settings(max_examples=120)
    @given(range_lists, st.integers(min_value=0, max_value=65535))
    def test_lookup_all_matches_brute_force(self, stored, probe):
        lookup = RangeLookup(key_bits=16)
        for label, (low, high) in enumerate(stored, start=1):
            lookup.insert(low, high, label)
        expected = {
            label
            for label, (low, high) in enumerate(stored, start=1)
            if low <= probe <= high
        }
        got = lookup.lookup_all(probe)
        assert set(got) == expected
        # Narrowest-first ordering.
        widths = [
            stored[label - 1][1] - stored[label - 1][0] for label in got
        ]
        assert widths == sorted(widths)

    @settings(max_examples=60)
    @given(range_lists, st.data())
    def test_remove_matches_rebuild(self, stored, data):
        if not stored:
            return
        lookup = RangeLookup(key_bits=16)
        for label, (low, high) in enumerate(stored, start=1):
            lookup.insert(low, high, label)
        doomed = data.draw(st.sampled_from(stored))
        lookup.remove(*doomed)
        probe = data.draw(st.integers(min_value=0, max_value=65535))
        expected = {
            label
            for label, (low, high) in enumerate(stored, start=1)
            if low <= probe <= high and (low, high) != doomed
        }
        assert set(lookup.lookup_all(probe)) == expected
