"""Tests for the TCAM and Tuple Space Search baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.tcam import TCAM_CELL_FACTOR, Tcam, range_to_prefixes
from repro.algorithms.tss import TupleSpaceSearch
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.util.bits import mask_of, prefix_range


class TestRangeToPrefixes:
    def test_known_vector(self):
        assert range_to_prefixes(1, 6, 4) == [(1, 4), (2, 3), (4, 3), (6, 4)]

    def test_full_range_single_prefix(self):
        assert range_to_prefixes(0, 65535, 16) == [(0, 0)]

    def test_single_value(self):
        assert range_to_prefixes(80, 80, 16) == [(80, 16)]

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 4, 16)

    @settings(max_examples=200)
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=mask_of(16)),
            st.integers(min_value=0, max_value=mask_of(16)),
        ).map(lambda t: (min(t), max(t)))
    )
    def test_cover_is_exact_and_disjoint(self, bounds):
        low, high = bounds
        prefixes = range_to_prefixes(low, high, 16)
        covered = []
        for value, length in prefixes:
            lo, hi = prefix_range(value, length, 16)
            covered.append((lo, hi))
        covered.sort()
        # Exact, gap-free, non-overlapping cover of [low, high].
        assert covered[0][0] == low and covered[-1][1] == high
        for (_, hi_a), (lo_b, _) in zip(covered, covered[1:]):
            assert lo_b == hi_a + 1
        # Worst case bound: 2w - 2 prefixes.
        assert len(prefixes) <= 2 * 16 - 2


class TestTcam:
    def test_lookup_matches_linear(self, tiny_routing_set):
        tcam = Tcam.from_rule_set(tiny_routing_set)
        for fields in (
            {"in_port": 1, "ipv4_dst": 0x0A141E05},
            {"in_port": 1, "ipv4_dst": 0x0A990000},
            {"in_port": 2, "ipv4_dst": 0x0A000001},
            {"in_port": 9, "ipv4_dst": 0},
        ):
            expected = tiny_routing_set.linear_lookup(fields)
            got = tcam.lookup(fields)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.action_port == expected.action_port

    def test_acl_with_ranges(self, tiny_acl_set, generator):
        tcam = Tcam.from_rule_set(tiny_acl_set)
        matches = [r.to_match() for r in tiny_acl_set]
        trace = generator.field_trace(
            matches, 100, hit_rate=0.7, fill_fields=tiny_acl_set.field_names
        )
        for fields in trace:
            expected = tiny_acl_set.linear_lookup(fields)
            got = tcam.lookup(fields)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.priority == expected.priority

    def test_range_expansion_counted(self):
        from repro.filters.rule import Application, Rule, RuleSet
        from repro.openflow.match import RangeMatch

        rules = RuleSet("r", Application.ACL, ("tcp_dst",))
        rules.add(
            Rule(fields={"tcp_dst": RangeMatch(low=1, high=6, bits=16)})
        )
        tcam = Tcam.from_rule_set(rules)
        # [1, 6] needs 4 prefixes: 1/16, 2/15, 4/15, 6/16.
        assert len(tcam) == 4
        assert tcam.rule_count == 1
        assert tcam.expansion_factor == 4.0

    def test_size_model(self, tiny_routing_set):
        tcam = Tcam.from_rule_set(tiny_routing_set)
        size = tcam.size()
        assert size.entries == len(tcam)
        assert size.bits == len(tcam) * tcam.word_bits * TCAM_CELL_FACTOR

    def test_missing_field_is_miss(self, tiny_routing_set):
        tcam = Tcam.from_rule_set(tiny_routing_set)
        assert tcam.lookup({"in_port": 1}) is None

    def test_empty(self):
        tcam = Tcam(("in_port",))
        assert tcam.expansion_factor == 0.0
        assert tcam.lookup({"in_port": 1}) is None


class TestTss:
    def test_lookup_matches_linear_routing(self, small_routing_set):
        tss = TupleSpaceSearch.from_rule_set(small_routing_set)
        generator = PacketGenerator(TraceConfig(seed=77))
        matches = [r.to_match() for r in small_routing_set.rules[:40]]
        trace = generator.field_trace(
            matches, 150, hit_rate=0.7, fill_fields=small_routing_set.field_names
        )
        for fields in trace:
            expected = small_routing_set.linear_lookup(fields)
            got = tss.lookup(fields)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.priority == expected.priority

    def test_lookup_matches_linear_acl(self, tiny_acl_set, generator):
        tss = TupleSpaceSearch.from_rule_set(tiny_acl_set)
        matches = [r.to_match() for r in tiny_acl_set]
        trace = generator.field_trace(
            matches, 100, hit_rate=0.6, fill_fields=tiny_acl_set.field_names
        )
        for fields in trace:
            expected = tiny_acl_set.linear_lookup(fields)
            got = tss.lookup(fields)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.priority == expected.priority

    def test_tuple_count_reflects_length_diversity(self, small_mac_set):
        tss = TupleSpaceSearch.from_rule_set(small_mac_set)
        # MAC rules all share one tuple: (13-bit exact, 48-bit exact).
        assert tss.tuple_count == 1

    def test_routing_tuples_by_prefix_length(self, small_routing_set):
        tss = TupleSpaceSearch.from_rule_set(small_routing_set)
        lengths = {
            r.fields["ipv4_dst"].length for r in small_routing_set
        }
        assert tss.tuple_count == len(lengths)

    def test_size_positive(self, small_mac_set):
        tss = TupleSpaceSearch.from_rule_set(small_mac_set)
        assert tss.size().bits > 0
        assert tss.entry_count == len(small_mac_set)

    def test_shadowed_duplicate_collapses(self, tiny_routing_set):
        tss = TupleSpaceSearch.from_rule_set(tiny_routing_set)
        before = tss.entry_count
        # Re-adding an identical rule creates no new hash entry.
        tss.add_rule(tiny_routing_set.rules[0])
        assert tss.entry_count == before
