"""Documentation gate: the markdown docs must not rot.

Checks, over ``README.md``, ``CONTRIBUTING.md``, ``ROADMAP.md`` and
everything under ``docs/``:

- every relative link resolves to a file in the repo, and a ``#anchor``
  on a markdown target resolves to a real heading (GitHub slug rules);
- every repo path named in a fenced code block exists (the quickstart
  commands reference ``examples/``/``benchmarks/`` scripts by path);
- the documentation triad is wired together: the README links both
  docs pages, and CONTRIBUTING links the architecture page.

The CI ``docs`` job runs this file and then executes the README
quickstart example commands on smoke-sized inputs.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [
        REPO / "README.md",
        REPO / "CONTRIBUTING.md",
        REPO / "ROADMAP.md",
        *(REPO / "docs").glob("*.md"),
    ]
)

# Inline markdown links: [text](target).  Bare URLs and reference-style
# links are not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
_CODE_PATH = re.compile(r"(?:src|tests|benchmarks|examples|docs)/[\w./-]+\.\w+")


def _slug(heading: str) -> str:
    """GitHub's heading → anchor slug transform (close enough for us)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def _anchors(path: Path) -> set[str]:
    return {_slug(match) for match in _HEADING.findall(path.read_text())}


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks so shell snippets aren't parsed as links."""
    return _FENCE.sub("", text)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc: Path) -> None:
    for target in _LINK.findall(_strip_fences(doc.read_text())):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (doc.parent / path_part).resolve() if path_part else doc
        assert resolved.exists(), f"{doc.name}: broken link {target!r}"
        if anchor and resolved.suffix == ".md":
            assert _slug(anchor) in _anchors(resolved), (
                f"{doc.name}: link {target!r} names a heading "
                f"{anchor!r} that {resolved.name} does not have"
            )


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_code_block_paths_exist(doc: Path) -> None:
    for block in _FENCE.findall(doc.read_text()):
        for path in _CODE_PATH.findall(block):
            assert (REPO / path).exists(), (
                f"{doc.name}: code block references missing file {path!r}"
            )


def test_doc_triad_cross_linked() -> None:
    readme = (REPO / "README.md").read_text()
    assert "docs/architecture.md" in readme
    assert "docs/memory-model.md" in readme
    contributing = (REPO / "CONTRIBUTING.md").read_text()
    assert "docs/architecture.md" in contributing
