"""Differential property harness over every runner path.

Random rule sets, mutation sequences and traffic traces (hypothesis
strategies, deterministic per example) are replayed through all ten
classification paths —

1. behavioural scan (``FlowTable`` pipeline, scalar),
2. decomposition (``OpenFlowLookupTable`` pipeline, scalar),
3. batched (``BatchPipeline``, caches off),
4. microflow-cached batch,
5. two-tier megaflow batch,
6. sharded shared-memory, pipelined (``ShardedBatchPipeline``,
   transport="shm", depth=3 — bursts stream through the
   double-buffered dispatch/collect loop),
7. sharded with shared sealed rule state (``shared_rules=True`` —
   workers attach read-only :mod:`repro.runtime.rulestate` snapshots
   instead of rebuilding replicas, mutations replay from the log),
8. columnar microflow-cached batch (``PacketBatch`` input, vectorized
   key hashing),
9. columnar two-tier megaflow batch (vectorized masked-key probes),
10. columnar sharded shared-memory pipelined (decode-free workers
    classifying straight off the request block's columns) —

and every path must produce identical :class:`PipelineResult`\\ s per
packet **and** identical post-run per-entry flow-stats counters —
packets and bytes: every trace packet carries a deterministic frame
length, so byte accounting is exercised on every example.  Rules also
draw idle/hard timeouts and event scripts interleave ``("advance",
dt)`` virtual-clock ticks, so entries expire mid-replay on every path:
the scalar paths sweep through their own
:class:`~repro.runtime.lifecycle.LifecycleSweeper`, the runners
through ``advance_clock``, and the resulting flow-removed ledgers
(reason, final counters, install/removal ticks) must agree as
multisets — the scan table iterates in priority order while the
decomposed tables iterate in insertion order, so expiries landing on
the same tick may be *emitted* in a different order, but never differ
in content.  The scan path anchors correctness (it is the spec);
everything else is an optimisation that must be observationally
invisible.

CI runs this file explicitly and fails if it was skipped (e.g. a
missing ``hypothesis``), so the property coverage cannot silently rot
out of the pipeline.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.core.lookup_table import OpenFlowLookupTable
from repro.filters.paper_data import RoutingFilterStats
from repro.filters.synthetic import generate_routing_set
from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import (
    ApplyActions,
    GotoTable,
    WriteActions,
)
from repro.openflow.match import ExactMatch, Match, PrefixMatch, RangeMatch
from repro.openflow.pipeline import OpenFlowPipeline
from repro.openflow.table import FlowTable
from repro.packet.batch import PacketBatch
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime import (
    ARRIVALS,
    BatchPipeline,
    FaultPlan,
    LifecycleSweeper,
    ShardedBatchPipeline,
    StreamConfig,
    run_stream,
)
from repro.runtime.streaming import SHED_REASONS

#: Match schema: one exact, two prefix, one range, one exact field — all
#: three engine kinds of the decomposition participate in every example.
SCHEMA = ("in_port", "ipv4_dst", "ipv4_src", "tcp_dst", "eth_type")

BATCH_SIZE = 7  # deliberately odd: chunk boundaries land mid-burst


# ----------------------------------------------------------------------
# strategies (specs are plain tuples: hashable, picklable, shrinkable)
# ----------------------------------------------------------------------

_ports = st.integers(min_value=0, max_value=7)
_prefix_len = st.sampled_from((0, 8, 16, 24, 32))
_port_edges = st.sampled_from((0, 80, 443, 1023, 1024, 65535))


def _prefix_spec():
    return st.tuples(
        st.just("prefix"), st.integers(0, 3), _prefix_len
    )


_field_spec = {
    "in_port": st.tuples(st.just("exact"), _ports),
    "ipv4_dst": _prefix_spec(),
    "ipv4_src": _prefix_spec(),
    "tcp_dst": st.tuples(st.just("range"), _port_edges, _port_edges),
    "eth_type": st.tuples(
        st.just("exact"), st.sampled_from((0x0800, 0x0806, 0x86DD))
    ),
}

_rule_spec = st.tuples(
    st.integers(0, 1),  # table id
    st.lists(
        st.sampled_from(SCHEMA), unique=True, min_size=0, max_size=3
    ).flatmap(
        lambda names: st.tuples(
            *[st.tuples(st.just(name), _field_spec[name]) for name in names]
        )
    ),
    st.integers(0, 3),  # priority (small: forces tiebreak coverage)
    st.integers(1, 200),  # output port
    st.booleans(),  # goto table 1 (only meaningful from table 0)
    st.booleans(),  # rewrite eth_type before the goto
    st.integers(0, 3),  # idle timeout (0 = permanent)
    st.integers(0, 3),  # hard timeout (0 = permanent)
)

_example = st.fixed_dictionaries(
    {
        "rules": st.lists(_rule_spec, min_size=1, max_size=8),
        "initial": st.lists(st.integers(0, 7), min_size=1, max_size=8),
        "events": st.lists(
            st.one_of(
                st.tuples(st.just("burst"), st.integers(1, 3)),
                st.tuples(st.just("add"), st.integers(0, 7)),
                st.tuples(st.just("remove"), st.integers(0, 7)),
                st.tuples(st.just("advance"), st.integers(1, 3)),
            ),
            min_size=1,
            max_size=6,
        ),
        "packets": st.lists(
            st.tuples(
                st.sampled_from(("rule", "random")),
                st.integers(0, 7),  # rule index (mod len) or drop-field pick
                st.booleans(),  # drop one field from the packet
            ),
            min_size=1,
            max_size=12,
        ),
        "dup_picks": st.lists(st.integers(0, 11), min_size=4, max_size=30),
        "seed": st.integers(0, 2**16),
    }
)


def _build_predicate(spec):
    kind = spec[0]
    if kind == "exact":
        return ExactMatch(value=spec[1], bits=32 if spec[1] <= 7 else 16)
    if kind == "prefix":
        base, length = spec[1], spec[2]
        value = (base << (32 - length)) if length else 0
        return PrefixMatch(value=value, length=length, bits=32)
    low, high = sorted(spec[1:])
    return RangeMatch(low=low, high=high, bits=16)


def _build_match(field_specs) -> Match:
    return Match(
        {name: _build_predicate(spec) for name, spec in field_specs}
    )


def _build_entry(rule_spec) -> tuple[int, FlowEntry]:
    table_id, field_specs, priority, port, goto, rewrite, idle, hard = (
        rule_spec
    )
    instructions = []
    if rewrite and goto and table_id == 0:
        instructions.append(ApplyActions([SetFieldAction("eth_type", 0x0800)]))
    instructions.append(WriteActions([OutputAction(port)]))
    if goto and table_id == 0:
        instructions.append(GotoTable(1))
    return table_id, FlowEntry.build(
        match=_build_match(field_specs),
        priority=priority,
        instructions=instructions,
        idle_timeout=idle,
        hard_timeout=hard,
    )


def _build_trace(example) -> list[dict[str, int]]:
    """One shared packet pool; duplicate picks alias the same dicts
    (exactly how the scenario generators build traces).  Every pool
    entry carries a deterministic per-flow frame length, so byte
    counters accrue distinct (conservation-checkable) values on every
    example."""
    generator = PacketGenerator(TraceConfig(seed=example["seed"]))
    pool: list[dict[str, int]] = []
    rules = example["rules"]
    for index, (kind, pick, drop) in enumerate(example["packets"]):
        if kind == "rule":
            match = _build_match(rules[pick % len(rules)][1])
            fields = generator.fields_matching(match, fill_fields=SCHEMA)
        else:
            fields = generator.random_fields(SCHEMA)
        if drop:
            fields.pop(SCHEMA[pick % len(SCHEMA)], None)
        fields[FRAME_LEN_FIELD] = 64 + 97 * index  # distinct per flow
        pool.append(fields)
    return [pool[pick % len(pool)] for pick in example["dup_picks"]]


class Replayer:
    """Drives one runner through the example's event script.

    Each replayer owns *fresh* entry objects built from the shared rule
    specs, so per-entry flow-stats counters are per-runner and directly
    comparable afterwards.
    """

    def __init__(self, example, make_tables, runner_factory=None, columnar=False):
        self.columnar = columnar
        self.entries = [_build_entry(spec) for spec in example["rules"]]
        tables = make_tables()
        self.tables = {t.table_id: t for t in tables}
        for pick in example["initial"]:
            table_id, entry = self.entries[pick % len(self.entries)]
            self.tables[table_id].add(entry)
        self.pipeline = (
            MultiTableLookupArchitecture(tables)
            if isinstance(tables[0], OpenFlowLookupTable)
            else OpenFlowPipeline(tables)
        )
        self.runner = runner_factory(self.pipeline) if runner_factory else None
        # Scalar paths (no runner) sweep through their own sweeper; the
        # runners carry one already and expose it via advance_clock.
        self.sweeper = LifecycleSweeper() if self.runner is None else None
        self.flow_removed = []
        self.results = []

    def advance(self, dt):
        """One virtual-clock tick: sweep, collect the expiry events."""
        if self.runner is not None:
            self.flow_removed.extend(self.runner.advance_clock(dt))
        else:
            self.flow_removed.extend(self.sweeper.advance(self.pipeline, dt))

    def mutate(self, kind, pick):
        table_id, entry = self.entries[pick % len(self.entries)]
        surface = (
            self.runner.pipeline if self.runner is not None else self.pipeline
        )
        if kind == "add":
            surface.table(table_id).add(entry)
        else:
            surface.table(table_id).remove(entry.match, entry.priority)

    def classify(self, burst):
        if self.runner is None:
            self.results.extend(self.pipeline.process(p) for p in burst)
            return
        if self.columnar:
            # One columnar batch per burst, sliced into views — the
            # shape scenario builders emit through columnar_workload.
            batch = PacketBatch.from_dicts(burst)
            chunks = [
                batch[start : start + BATCH_SIZE]
                for start in range(0, len(burst), BATCH_SIZE)
            ]
        else:
            chunks = [
                burst[start : start + BATCH_SIZE]
                for start in range(0, len(burst), BATCH_SIZE)
            ]
        process_batches = getattr(self.runner, "process_batches", None)
        if process_batches is not None:
            # The pipelined dispatch/collect loop: multi-chunk bursts
            # genuinely overlap in flight.
            for chunk_results in process_batches(chunks):
                self.results.extend(chunk_results)
        else:
            for chunk in chunks:
                self.results.extend(self.runner.process_batch(chunk))

    def replay(self, example, trace):
        cursor = 0
        for event in example["events"]:
            if event[0] == "burst":
                take = min(event[1] * BATCH_SIZE, len(trace) - cursor)
                self.classify(trace[cursor : cursor + take])
                cursor += take
            elif event[0] == "advance":
                self.advance(event[1])
            else:
                self.mutate(event[0], event[1])
        if cursor < len(trace):
            self.classify(trace[cursor:])

    def flow_counts(self) -> list[tuple[int, int]]:
        """(packets, bytes) per rule spec, dead or alive — churned-out
        entries keep their history, so conservation survives removal."""
        return [
            (entry.stats.packet_count, entry.stats.byte_count)
            for _, entry in self.entries
        ]

    def removed_events(self):
        """The flow-removed ledger as a sorted multiset: expiries
        landing on the same tick are emitted in snapshot order, which
        differs between the priority-sorted scan tables and the
        insertion-ordered decomposed tables; the *events* themselves
        (identity, reason, final counters, ticks) must still agree
        exactly.  FlowRemoved is frozen with a value repr, so repr is a
        total order over equal-content ledgers."""
        return sorted(self.flow_removed, key=repr)

    def close(self):
        if isinstance(self.runner, ShardedBatchPipeline):
            self.runner.close()


def _flow_tables():
    return [FlowTable(table_id=0), FlowTable(table_id=1)]


def _lookup_tables():
    return [
        OpenFlowLookupTable(SCHEMA, table_id=0),
        OpenFlowLookupTable(SCHEMA, table_id=1),
    ]


def assert_same_result(a, b, context):
    assert a.output_ports == b.output_ports, context
    assert a.sent_to_controller == b.sent_to_controller, context
    assert a.dropped == b.dropped, context
    assert a.metadata == b.metadata, context
    assert a.tables_visited == b.tables_visited, context
    assert a.final_fields == b.final_fields, context
    assert [(e.match, e.priority) for e in a.matched_entries] == [
        (e.match, e.priority) for e in b.matched_entries
    ], context
    assert a.applied_actions == b.applied_actions, context


RUNNERS = {
    "scan": (_flow_tables, None),
    "decomposed": (_lookup_tables, None),
    "batched": (
        _lookup_tables,
        lambda pipeline: BatchPipeline(pipeline, cache_capacity=None),
    ),
    "cached": (
        _lookup_tables,
        lambda pipeline: BatchPipeline(pipeline, cache_capacity=16),
    ),
    "megaflow": (
        _lookup_tables,
        lambda pipeline: BatchPipeline(
            pipeline, cache_capacity=16, megaflow_capacity=32
        ),
    ),
    "sharded-shm-pipelined": (
        _lookup_tables,
        lambda pipeline: ShardedBatchPipeline(
            pipeline,
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="shm",
            depth=3,
        ),
    ),
    "sharded-shared-rules": (
        _lookup_tables,
        lambda pipeline: ShardedBatchPipeline(
            pipeline,
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="shm",
            depth=3,
            shared_rules=True,
        ),
    ),
    "columnar-cached": (
        _lookup_tables,
        lambda pipeline: BatchPipeline(pipeline, cache_capacity=16),
        True,
    ),
    "columnar-megaflow": (
        _lookup_tables,
        lambda pipeline: BatchPipeline(
            pipeline, cache_capacity=16, megaflow_capacity=32
        ),
        True,
    ),
    "columnar-sharded": (
        _lookup_tables,
        lambda pipeline: ShardedBatchPipeline(
            pipeline,
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="shm",
            depth=3,
        ),
        True,
    ),
}


def _batch_count(example, trace_len):
    """How many batches the replayer will submit — sizes the seeded
    fault schedule so chaos faults land on seqs that actually run."""
    cursor = 0
    count = 0
    for event in example["events"]:
        if event[0] == "burst":
            take = min(event[1] * BATCH_SIZE, trace_len - cursor)
            count += (take + BATCH_SIZE - 1) // BATCH_SIZE
            cursor += take
    if cursor < trace_len:
        count += (trace_len - cursor + BATCH_SIZE - 1) // BATCH_SIZE
    return count


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(example=_example)
def test_sharded_equivalent_under_chaos(example):
    """Chaos mode: the pipelined sharded path with a seeded fault plan
    SIGKILLing workers at random serve steps must stay observationally
    identical to the scan path — results and per-entry flow counters —
    across random rule sets, churn scripts and traces."""
    trace = _build_trace(example)
    reference = Replayer(example, _flow_tables)
    reference.replay(example, trace)
    seqs = range(max(1, _batch_count(example, len(trace))))
    plan = FaultPlan.seeded(example["seed"], workers=2, seqs=seqs, faults=2)
    chaotic = Replayer(
        example,
        _lookup_tables,
        lambda pipeline: ShardedBatchPipeline(
            pipeline,
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="shm",
            depth=3,
            fault_plan=plan,
        ),
    )
    try:
        chaotic.replay(example, trace)
        snapshot = chaotic.runner.supervision_snapshot()
        assert len(chaotic.results) == len(reference.results)
        for i, (got, expected) in enumerate(
            zip(chaotic.results, reference.results)
        ):
            assert_same_result(got, expected, f"chaos packet {i}")
        assert chaotic.flow_counts() == reference.flow_counts(), (
            "chaos: per-entry flow stats diverge from the scan path"
        )
        assert chaotic.removed_events() == reference.removed_events(), (
            "chaos: flow-removed ledger diverges from the scan path"
        )
        # Crashes (if the schedule hit a live (worker, seq) pair) must
        # all have been absorbed by respawn + replay, never a wedge.
        assert snapshot["restarts"] == snapshot["crashes"]
        assert snapshot["wedges"] == 0
    finally:
        chaotic.close()


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(example=_example)
def test_all_paths_equivalent(example):
    trace = _build_trace(example)
    replayers: dict[str, Replayer] = {}
    try:
        for name, (make_tables, factory, *flags) in RUNNERS.items():
            replayer = Replayer(
                example, make_tables, factory, columnar=bool(flags and flags[0])
            )
            replayers[name] = replayer
            replayer.replay(example, trace)
        reference = replayers["scan"]
        assert len(reference.results) == len(trace)
        for name, replayer in replayers.items():
            if name == "scan":
                continue
            assert len(replayer.results) == len(reference.results)
            for i, (got, expected) in enumerate(
                zip(replayer.results, reference.results)
            ):
                assert_same_result(got, expected, f"{name} packet {i}")
            assert replayer.flow_counts() == reference.flow_counts(), (
                f"{name}: per-entry flow stats diverge from the scan path"
            )
            assert replayer.removed_events() == reference.removed_events(), (
                f"{name}: flow-removed ledger diverges from the scan path"
            )
    finally:
        for replayer in replayers.values():
            replayer.close()


# ----------------------------------------------------------------------
# Open-loop streaming: conservation and determinism as properties
# ----------------------------------------------------------------------

#: One modest rule set shared by every streaming example (the law under
#: test quantifies over arrival processes and configs, not rules — the
#: rule-set dimension is covered by the path-equivalence suite above).
_STREAM_RULES = generate_routing_set(
    RoutingFilterStats("streamprop", 200, 10, 30, 70), seed=5
)

_stream_example = st.fixed_dictionaries(
    {
        "process": st.sampled_from(sorted(ARRIVALS)),
        "seed": st.integers(min_value=0, max_value=2**16),
        "packet_count": st.integers(min_value=20, max_value=120),
        "capacity": st.integers(min_value=4, max_value=96),
        "batch_size": st.integers(min_value=1, max_value=24),
        "window": st.integers(min_value=1, max_value=4),
        "form_deadline": st.integers(min_value=1, max_value=12),
        "service_rate": st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=4.0)
        ),
        "deadline": st.one_of(
            st.none(), st.integers(min_value=1, max_value=48)
        ),
        "columnar": st.booleans(),
        "degrade_after": st.integers(min_value=1, max_value=4),
    }
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(example=_stream_example)
def test_stream_conservation_and_determinism(example):
    """For every arrival process, queue capacity and service rate the
    strategies draw: admitted == completed + shed (packets AND bytes),
    occupancy never exceeds the hard capacity, every shed record names
    a known reason, and an identically-configured rerun reproduces the
    shed ledger, latency stamps and ladder transitions exactly."""
    schedule = ARRIVALS[example["process"]](
        _STREAM_RULES,
        packet_count=example["packet_count"],
        seed=example["seed"],
    )
    config = StreamConfig(
        capacity=example["capacity"],
        batch_size=example["batch_size"],
        form_deadline=example["form_deadline"],
        window=example["window"],
        policy="tail" if example["deadline"] is None else "deadline",
        deadline=example["deadline"],
        columnar=example["columnar"],
        service_rate=example["service_rate"],
        degrade_after=example["degrade_after"],
    )

    def one_run():
        runner = BatchPipeline(
            _make_stream_arch(), cache_capacity=16, megaflow_capacity=32
        )
        return run_stream(runner, schedule, config)

    report = one_run()
    report.assert_conserved()
    assert report.admitted_packets == schedule.packet_count
    assert report.admitted_bytes == schedule.byte_count
    assert report.peak_occupancy <= config.capacity
    assert all(record.reason in SHED_REASONS for record in report.shed)
    # Completed + shed indices partition the arrival index space.
    completed = {i for i, _ in report.latencies}
    dropped = {record.index for record in report.shed}
    assert not completed & dropped
    assert completed | dropped == set(range(schedule.packet_count))
    again = one_run()
    assert again.shed == report.shed
    assert again.latencies == report.latencies
    assert again.transitions == report.transitions
    assert again.batches == report.batches
    assert again.stalls == report.stalls


def _make_stream_arch():
    return MultiTableLookupArchitecture(
        [build_lookup_table(_STREAM_RULES)]
    )
