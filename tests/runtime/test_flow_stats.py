"""Flow-stats conservation across every runner path.

The conservation laws: every processed packet either misses table 0 or
bumps exactly one table-0 entry's packet counter, and every matched
packet credits its full frame length to that entry, so

    sum(per-entry packet counters) == matched == packets - misses
    sum(per-entry byte counters) == trace bytes - miss bytes

must hold under churn (entries removed and reinstalled mid-trace keep
their counters — the workload reinstalls the *same* objects) and on
every runner: single-process batch runners record on their own entries,
and the sharded runners — lockstep and pipelined — must merge worker
deltas back into the parent's entries (the PR-2 gap: worker hits never
reached the parent, so parent-side stats read zero; the PR-3 gap: byte
counts were wired end-to-end but always zero, because packets carried
no frame lengths).
"""

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.lookup_table import OpenFlowLookupTable
from repro.packet.headers import frame_length
from repro.runtime import (
    BatchPipeline,
    ShardedBatchPipeline,
    churn_workload,
    run_workload,
)

PACKETS = 300
FRAME_DIST = "imix"  # per-packet lengths: the harder byte-accounting case


def build_runner(rule_set, entries, kind):
    table = OpenFlowLookupTable(tuple(rule_set.field_names), table_id=0)
    for entry in entries:
        table.add(entry)
    arch = MultiTableLookupArchitecture([table])
    if kind == "batch":
        return BatchPipeline(arch, cache_capacity=None)
    if kind == "cached":
        return BatchPipeline(arch, cache_capacity=256)
    if kind == "megaflow":
        return BatchPipeline(arch, cache_capacity=256, megaflow_capacity=512)
    kind, _, suffix = kind.removeprefix("sharded-").partition("-")
    return ShardedBatchPipeline(
        arch,
        workers=3,
        cache_capacity=256,
        megaflow_capacity=512,
        transport=kind,
        depth=4 if suffix == "pipelined" else 1,
    )


def replay(rule_set, kind):
    """Fresh entries + a churn workload that mutates those same objects."""
    entries = list(rule_set.to_flow_entries())
    workload = churn_workload(
        rule_set,
        packet_count=PACKETS,
        flow_count=24,
        churn_rules=6,
        rounds=4,
        entries=entries,
        frame_len=FRAME_DIST,
    )
    runner = build_runner(rule_set, entries, kind)
    try:
        stats = run_workload(runner, workload, batch_size=64, keep_results=True)
    finally:
        if isinstance(runner, ShardedBatchPipeline):
            runner.close()
    return entries, stats, workload


ALL_KINDS = (
    "batch",
    "cached",
    "megaflow",
    "sharded-shm",
    "sharded-shm-pipelined",
    "sharded-pickle",
)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_packet_conservation_under_churn(small_routing_set, kind):
    entries, stats, _ = replay(small_routing_set, kind)
    assert stats.packets == PACKETS
    assert stats.installs == stats.uninstalls > 0
    total = sum(entry.stats.packet_count for entry in entries)
    misses = stats.packets - stats.matched
    assert total == stats.matched, (
        f"{kind}: {total} per-entry packets vs {stats.matched} matched"
    )
    assert total + misses == stats.packets
    # The aggregate counter mirrors the per-entry sum (single table:
    # one matched entry per matched packet).
    assert stats.flow_packets == total


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_byte_conservation_under_churn(small_routing_set, kind):
    """Byte conservation: trace bytes = per-entry byte sum + miss bytes,
    on every runner path, with per-packet (IMIX) frame lengths."""
    entries, stats, workload = replay(small_routing_set, kind)
    per_entry_bytes = sum(entry.stats.byte_count for entry in entries)
    miss_bytes = sum(
        frame_length(result.final_fields)
        for result in stats.results
        if not result.matched_entries
    )
    trace_bytes = workload.byte_count
    assert trace_bytes > 0, "the IMIX trace must carry frame lengths"
    assert per_entry_bytes > 0, f"{kind}: byte counters stayed zero"
    assert per_entry_bytes + miss_bytes == trace_bytes, (
        f"{kind}: {per_entry_bytes} entry bytes + {miss_bytes} miss bytes "
        f"!= {trace_bytes} trace bytes"
    )
    # The aggregate counter mirrors the per-entry sum (single table:
    # one matched entry per matched packet).
    assert stats.flow_bytes == per_entry_bytes


@pytest.mark.parametrize(
    "kind", ("sharded-shm", "sharded-shm-pipelined", "sharded-pickle")
)
def test_sharded_flow_stats_match_single_process_exactly(
    small_routing_set, kind
):
    """Acceptance: parent-side per-entry counters after a sharded churn
    replay equal the single-process runner's, entry for entry — packet
    *and* byte counts, lockstep and pipelined."""
    single_entries, single_stats, _ = replay(small_routing_set, "megaflow")
    sharded_entries, sharded_stats, _ = replay(small_routing_set, kind)
    single = {
        (e.match, e.priority): (e.stats.packet_count, e.stats.byte_count)
        for e in single_entries
    }
    sharded = {
        (e.match, e.priority): (e.stats.packet_count, e.stats.byte_count)
        for e in sharded_entries
    }
    assert sharded == single
    assert sharded_stats.flow_packets == single_stats.flow_packets > 0
    assert sharded_stats.flow_bytes == single_stats.flow_bytes > 0


def test_scalar_paths_conserve(small_routing_set):
    """The law holds on the scalar scan/decomposition references too."""
    entries = list(small_routing_set.to_flow_entries())
    table = OpenFlowLookupTable(
        tuple(small_routing_set.field_names), table_id=0
    )
    for entry in entries:
        table.add(entry)
    arch = MultiTableLookupArchitecture([table])
    workload = churn_workload(
        small_routing_set, packet_count=100, flow_count=12, entries=entries
    )
    matched = 0
    packets = 0
    for event in workload.events:
        if event[0] == "packets":
            for fields in event[1]:
                packets += 1
                matched += bool(arch.process(fields).matched_entries)
        elif event[0] == "install":
            arch.table(event[1]).add(event[2])
        else:
            arch.table(event[1]).remove(event[2], event[3])
    assert packets == 100
    total = sum(entry.stats.packet_count for entry in entries)
    assert total == matched
    # Fixed-length frames (the scenario default): every match credits
    # exactly one MTU frame, so bytes are packets * frame length.
    from repro.packet.generator import DEFAULT_FRAME_LEN

    total_bytes = sum(entry.stats.byte_count for entry in entries)
    assert total_bytes == matched * DEFAULT_FRAME_LEN > 0
