"""Flow-stats conservation across every runner path.

The conservation law: every processed packet either misses table 0 or
bumps exactly one table-0 entry's packet counter, so

    sum(per-entry packet counters) == matched == packets - misses

must hold under churn (entries removed and reinstalled mid-trace keep
their counters — the workload reinstalls the *same* objects) and on
every runner: single-process batch runners record on their own entries,
and the sharded runners must merge worker deltas back into the parent's
entries (the PR-2 gap: worker hits never reached the parent, so
parent-side stats read zero).
"""

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.lookup_table import OpenFlowLookupTable
from repro.runtime import (
    BatchPipeline,
    ShardedBatchPipeline,
    churn_workload,
    run_workload,
)

PACKETS = 300


def build_runner(rule_set, entries, kind):
    table = OpenFlowLookupTable(tuple(rule_set.field_names), table_id=0)
    for entry in entries:
        table.add(entry)
    arch = MultiTableLookupArchitecture([table])
    if kind == "batch":
        return BatchPipeline(arch, cache_capacity=None)
    if kind == "cached":
        return BatchPipeline(arch, cache_capacity=256)
    if kind == "megaflow":
        return BatchPipeline(arch, cache_capacity=256, megaflow_capacity=512)
    return ShardedBatchPipeline(
        arch,
        workers=3,
        cache_capacity=256,
        megaflow_capacity=512,
        transport=kind.removeprefix("sharded-"),
    )


def replay(rule_set, kind):
    """Fresh entries + a churn workload that mutates those same objects."""
    entries = list(rule_set.to_flow_entries())
    workload = churn_workload(
        rule_set,
        packet_count=PACKETS,
        flow_count=24,
        churn_rules=6,
        rounds=4,
        entries=entries,
    )
    runner = build_runner(rule_set, entries, kind)
    try:
        stats = run_workload(runner, workload, batch_size=64)
    finally:
        if isinstance(runner, ShardedBatchPipeline):
            runner.close()
    return entries, stats


ALL_KINDS = ("batch", "cached", "megaflow", "sharded-shm", "sharded-pickle")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_packet_conservation_under_churn(small_routing_set, kind):
    entries, stats = replay(small_routing_set, kind)
    assert stats.packets == PACKETS
    assert stats.installs == stats.uninstalls > 0
    total = sum(entry.stats.packet_count for entry in entries)
    misses = stats.packets - stats.matched
    assert total == stats.matched, (
        f"{kind}: {total} per-entry packets vs {stats.matched} matched"
    )
    assert total + misses == stats.packets
    # The aggregate counter mirrors the per-entry sum (single table:
    # one matched entry per matched packet).
    assert stats.flow_packets == total


@pytest.mark.parametrize("kind", ("sharded-shm", "sharded-pickle"))
def test_sharded_flow_stats_match_single_process_exactly(
    small_routing_set, kind
):
    """Acceptance: parent-side per-entry counters after a sharded churn
    replay equal the single-process runner's, entry for entry."""
    single_entries, single_stats = replay(small_routing_set, "megaflow")
    sharded_entries, sharded_stats = replay(small_routing_set, kind)
    single = {
        (e.match, e.priority): (e.stats.packet_count, e.stats.byte_count)
        for e in single_entries
    }
    sharded = {
        (e.match, e.priority): (e.stats.packet_count, e.stats.byte_count)
        for e in sharded_entries
    }
    assert sharded == single
    assert sharded_stats.flow_packets == single_stats.flow_packets > 0


def test_scalar_paths_conserve(small_routing_set):
    """The law holds on the scalar scan/decomposition references too."""
    entries = list(small_routing_set.to_flow_entries())
    table = OpenFlowLookupTable(
        tuple(small_routing_set.field_names), table_id=0
    )
    for entry in entries:
        table.add(entry)
    arch = MultiTableLookupArchitecture([table])
    workload = churn_workload(
        small_routing_set, packet_count=100, flow_count=12, entries=entries
    )
    matched = 0
    packets = 0
    for event in workload.events:
        if event[0] == "packets":
            for fields in event[1]:
                packets += 1
                matched += bool(arch.process(fields).matched_entries)
        elif event[0] == "install":
            arch.table(event[1]).add(event[2])
        else:
            arch.table(event[1]).remove(event[2], event[3])
    assert packets == 100
    total = sum(entry.stats.packet_count for entry in entries)
    assert total == matched
