"""Megaflow wildcard-cache behaviour: mask capture, aggregate replay,
incremental invalidation, and stacked-cache differential fuzzing."""

import numpy as np
import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import ApplyActions, GotoTable, WriteActions
from repro.openflow.match import ExactMatch, Match, PrefixMatch
from repro.openflow.pipeline import OpenFlowPipeline
from repro.openflow.table import FlowTable
from repro.runtime import (
    BatchPipeline,
    MegaflowCache,
    MegaflowRecorder,
    MicroflowCache,
    uniform_wide_workload,
    widen_rule_set,
)


def assert_same_result(a, b):
    assert a.output_ports == b.output_ports
    assert a.sent_to_controller == b.sent_to_controller
    assert a.dropped == b.dropped
    assert a.metadata == b.metadata
    assert a.tables_visited == b.tables_visited
    assert a.final_fields == b.final_fields
    assert [(e.match, e.priority) for e in a.matched_entries] == [
        (e.match, e.priority) for e in b.matched_entries
    ]


def output_entry(match: Match, priority: int, port: int, goto=None) -> FlowEntry:
    instructions = [WriteActions([OutputAction(port)])]
    if goto is not None:
        instructions = [GotoTable(goto)]
    return FlowEntry.build(match=match, priority=priority, instructions=instructions)


class TestMaskCapture:
    def test_unconstrained_schema_field_stays_wild(self):
        """An empty engine (no rule constrains the field) consults
        nothing, so the noise field never enters the mask."""
        table = OpenFlowLookupTable(("in_port", "tcp_src"))
        table.add(output_entry(Match.exact(in_port=7), 1, 10))
        recorder = MegaflowRecorder()
        table.lookup({"in_port": 7, "tcp_src": 1234}, mask=recorder)
        assert "tcp_src" not in recorder.fields
        assert recorder.fields["in_port"] == (1 << 32) - 1

    def test_trie_mask_stops_at_walk_depth(self):
        """A /8-only trie never allocates below level 2, so consulted
        bits stop at the 10-bit boundary — host bits stay wild."""
        table = OpenFlowLookupTable(("ipv4_dst",))
        table.add(
            output_entry(
                Match({"ipv4_dst": PrefixMatch(0x0A000000, 8, 32)}), 1, 10
            )
        )
        recorder = MegaflowRecorder()
        assert table.lookup({"ipv4_dst": 0x0A012345}, mask=recorder) is not None
        mask = recorder.fields["ipv4_dst"]
        # The high 16-bit partition consulted at most its level-2
        # boundary (10 bits); the low partition's trie is empty.
        assert mask & 0xFFFF == 0, "low partition must stay wild"
        assert mask >> (32 - 8) == 0xFF, "prefix bits must be consulted"

    def test_rewritten_field_not_consulted(self):
        """A field rewritten by table 0 is traversal-derived; consulting
        it in table 1 must not widen the mask over the original packet."""
        t0 = FlowTable(table_id=0)
        t0.add(
            FlowEntry.build(
                match=Match.exact(in_port=1),
                priority=1,
                instructions=[
                    ApplyActions([SetFieldAction("vlan_vid", 42)]),
                    GotoTable(1),
                ],
            )
        )
        t1 = FlowTable(table_id=1)
        t1.add(output_entry(Match.exact(vlan_vid=42), 1, 10))
        pipeline = OpenFlowPipeline([t0, t1])
        recorder = MegaflowRecorder()
        result = pipeline.process({"in_port": 1, "vlan_vid": 7}, mask=recorder)
        assert result.output_ports == [10]
        assert "vlan_vid" not in recorder.fields
        assert "vlan_vid" in recorder.rewritten

    def test_microflow_hit_replays_mask(self):
        """Masks survive the microflow tier: a cache hit feeds the same
        consulted bits into the recorder as the original table walk."""
        table = OpenFlowLookupTable(("in_port", "tcp_src"))
        table.add(output_entry(Match.exact(in_port=3), 1, 10))
        cache = MicroflowCache(table)
        first = MegaflowRecorder()
        cache.lookup({"in_port": 3, "tcp_src": 5}, mask=first)
        second = MegaflowRecorder()
        cache.lookup({"in_port": 3, "tcp_src": 5}, mask=second)
        assert cache.hits == 1
        assert first.fields == second.fields


class TestReplay:
    def test_aggregate_replay_matches_scalar(self, small_routing_set):
        wide = widen_rule_set(small_routing_set)
        workload = uniform_wide_workload(wide, packet_count=600, flow_count=32)
        trace = workload.events[0][1]
        runner = BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(wide)]),
            cache_capacity=256,
            megaflow_capacity=512,
        )
        reference = MultiTableLookupArchitecture([build_lookup_table(wide)])
        for start in range(0, len(trace), 128):
            chunk = trace[start : start + 128]
            for got, fields in zip(runner.process_batch(chunk), chunk):
                assert_same_result(got, reference.process(fields))
        megaflow = runner.megaflow
        assert megaflow.hits > 0, "wide traffic must hit the megaflow tier"
        # Exact-match would need ~one entry per packet; aggregates need
        # roughly one per flow.
        assert len(megaflow) < len(trace) / 4

    def test_setfield_override_applied_to_new_packet(self):
        """A replayed rewrite must overwrite the new packet's own value,
        even when the capture packet already carried the target value."""
        t0 = FlowTable(table_id=0)
        t0.add(
            FlowEntry.build(
                match=Match.exact(in_port=1),
                priority=1,
                instructions=[
                    ApplyActions(
                        [SetFieldAction("vlan_vid", 42), OutputAction(10)]
                    ),
                ],
            )
        )
        pipeline = OpenFlowPipeline([t0])
        runner = BatchPipeline(pipeline, cache_capacity=None, megaflow_capacity=64)
        # Capture packet already has vlan_vid=42: a naive before/after
        # diff would record no rewrite.
        runner.process({"in_port": 1, "vlan_vid": 42})
        replayed = runner.process({"in_port": 1, "vlan_vid": 7})
        assert runner.megaflow.hits == 1
        assert replayed.final_fields["vlan_vid"] == 42

    def test_replay_records_flow_stats(self):
        table = FlowTable(table_id=0)
        entry = output_entry(Match.exact(in_port=1), 1, 10)
        table.add(entry)
        runner = BatchPipeline(
            OpenFlowPipeline([table]), cache_capacity=None, megaflow_capacity=16
        )
        runner.process({"in_port": 1})
        runner.process({"in_port": 1})
        assert entry.stats.packet_count == 2


class TestIncrementalInvalidation:
    def build_runner(self):
        t0 = FlowTable(table_id=0)
        t0.add(output_entry(Match.exact(in_port=1), 1, 10))
        t0.add(
            FlowEntry.build(
                match=Match.exact(in_port=2),
                priority=1,
                instructions=[GotoTable(1)],
            )
        )
        t1 = FlowTable(table_id=1)
        t1.add(output_entry(Match.exact(eth_type=0x0800), 1, 20))
        pipeline = OpenFlowPipeline([t0, t1])
        return BatchPipeline(pipeline, cache_capacity=None, megaflow_capacity=64)

    def test_mutation_invalidates_only_consulting_entries(self):
        """Acceptance regression: a flow-mod on table 1 must kill only
        the aggregates whose traversal consulted table 1."""
        runner = self.build_runner()
        short = {"in_port": 1, "eth_type": 0x0800}  # visits table 0 only
        deep = {"in_port": 2, "eth_type": 0x0800}  # visits tables 0 and 1
        runner.process(short)
        runner.process(deep)
        megaflow = runner.megaflow
        assert len(megaflow) == 2 and megaflow.invalidated == 0

        # Mutate table 1: the short aggregate must survive untouched.
        runner.pipeline.table(1).add(output_entry(Match.exact(eth_type=0x86DD), 2, 30))
        assert runner.process(short).output_ports == [10]
        assert megaflow.hits == 1 and megaflow.invalidated == 0

        # The deep aggregate was invalidated and re-captured.
        runner.process(deep)
        assert megaflow.invalidated == 1
        assert megaflow.hits == 1

    def test_mutating_first_table_invalidates_all(self):
        runner = self.build_runner()
        short = {"in_port": 1, "eth_type": 0x0800}
        deep = {"in_port": 2, "eth_type": 0x0800}
        runner.process(short)
        runner.process(deep)
        runner.pipeline.table(0).add(output_entry(Match.exact(in_port=9), 1, 40))
        runner.process(short)
        runner.process(deep)
        assert runner.megaflow.invalidated == 2
        assert runner.megaflow.hits == 0

    def test_lru_capacity_bounds_entries(self):
        table = FlowTable(table_id=0)
        for port in range(8):
            table.add(output_entry(Match.exact(in_port=port), 1, port))
        cache = MegaflowCache(OpenFlowPipeline([table]), capacity=4)
        runner = BatchPipeline(OpenFlowPipeline([table]), cache_capacity=None)
        runner.megaflow = cache  # drive the bounded cache directly
        for port in range(8):
            runner.process({"in_port": port})
        assert len(cache) == 4
        assert cache.evicted == 4

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            MegaflowCache(OpenFlowPipeline([FlowTable()]), capacity=0)


def _fuzz_rule_pool():
    """A small overlapping rule pool over (in_port, ipv4_dst)."""
    pool = []
    prefixes = [
        (0x0A000000, 8),
        (0x0A010000, 16),
        (0x0A010100, 24),
        (0x0B000000, 8),
        (0x00000000, 0),
    ]
    port = 1
    for value, length in prefixes:
        for in_port in (None, 1, 2):
            fields = {"ipv4_dst": PrefixMatch(value, length, 32)}
            if in_port is not None:
                fields["in_port"] = ExactMatch(in_port, 32)
            pool.append(
                FlowEntry.build(
                    match=Match(fields),
                    priority=length + (2 if in_port is not None else 0),
                    instructions=[WriteActions([OutputAction(port)])],
                )
            )
            port += 1
    return pool


def _fuzz_packets(rng, count):
    bases = [0x0A000000, 0x0A010000, 0x0A010100, 0x0B000000, 0x0C000000]
    packets = []
    for _ in range(count):
        base = bases[int(rng.integers(0, len(bases)))]
        noise = int(rng.integers(0, 1 << 16))
        packets.append(
            {
                "in_port": int(rng.integers(1, 4)),
                "ipv4_dst": base | noise,
                "tcp_src": int(rng.integers(0, 1 << 16)),
            }
        )
    return packets


def test_stacked_cache_churn_differential_fuzz():
    """Differential churn fuzz (ISSUE satellite): megaflow+microflow
    stacked over the decomposition table must agree with the reference
    scan table under interleaved add/remove/lookup, packet for packet."""
    rng = np.random.default_rng(0xF00D)
    pool = _fuzz_rule_pool()
    schema = ("in_port", "ipv4_dst", "tcp_src")

    lookup_table = OpenFlowLookupTable(schema, table_id=0)
    scan_table = FlowTable(table_id=0)
    cached = BatchPipeline(
        MultiTableLookupArchitecture([lookup_table]),
        cache_capacity=64,
        megaflow_capacity=128,
    )
    reference = OpenFlowPipeline([scan_table])

    installed: list[FlowEntry] = []
    for entry in pool[: len(pool) // 2]:
        lookup_table.add(entry)
        scan_table.add(entry)
        installed.append(entry)

    for _ in range(60):
        op = rng.random()
        if op < 0.25 and len(installed) < len(pool):
            candidates = [e for e in pool if e not in installed]
            entry = candidates[int(rng.integers(0, len(candidates)))]
            lookup_table.add(entry)
            scan_table.add(entry)
            installed.append(entry)
        elif op < 0.45 and installed:
            entry = installed.pop(int(rng.integers(0, len(installed))))
            assert lookup_table.remove(entry.match, entry.priority)
            assert scan_table.remove(entry.match, entry.priority)
        batch = _fuzz_packets(rng, 24)
        got = cached.process_batch(batch)
        expected = [reference.process(fields) for fields in batch]
        for a, b in zip(got, expected):
            assert_same_result(a, b)
    stats = cached.stats_snapshot()
    assert stats.megaflow_hits > 0, "fuzz must exercise the megaflow tier"
    assert cached.megaflow.invalidated > 0, "fuzz must exercise invalidation"
