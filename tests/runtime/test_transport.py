"""Shared-memory transport: codec roundtrips, block growth, entry refs
and the flow-stats delta protocol — all in-process (no workers), so
failures localise to the transport rather than the sharded runner."""

import numpy as np
import pytest

from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import Match
from repro.openflow.pipeline import OpenFlowPipeline, PipelineResult
from repro.openflow.table import FlowTable
from repro.packet.headers import transport_schema
from repro.runtime.transport import (
    BlockReader,
    BlockWriter,
    EntryIndex,
    FlowStatsDelta,
    MIN_BLOCK_BYTES,
    PacketBlockCodec,
    SharedBlock,
    decode_results,
    encode_results,
)


def roundtrip(batch, positions=None):
    codec = PacketBlockCodec()
    writer = BlockWriter()
    layout = codec.encode(writer, batch, "pkt")
    block = SharedBlock()
    try:
        block.ensure(writer.nbytes)
        segments = writer.write_to(block.buf)
        reader = BlockReader(block.buf, segments)
        decoded = codec.decode(reader, layout, positions)
        del reader  # release numpy views before unmapping
        return decoded
    finally:
        block.close()


class TestPacketBlockCodec:
    def test_roundtrip_identity(self):
        batch = [
            {"in_port": 3, "ipv4_dst": 0x0A000001, "tcp_dst": 80},
            {"in_port": 4, "ipv4_dst": 0xFFFFFFFF, "tcp_dst": 65535},
        ]
        assert roundtrip(batch) == batch

    def test_missing_fields_roundtrip(self):
        batch = [
            {"in_port": 1, "ipv4_dst": 2},
            {"in_port": 2},  # no ipv4_dst: non-IP packet
            {"eth_type": 0x0806},
        ]
        assert roundtrip(batch) == batch

    def test_wide_fields_use_multiple_lanes(self):
        """IPv6 addresses (128 bits) exceed one uint64 lane."""
        batch = [
            {"ipv6_src": (1 << 127) | 5, "ipv6_dst": (1 << 128) - 1},
            {"ipv6_src": 7, "ipv6_dst": 0},
        ]
        assert roundtrip(batch) == batch

    def test_unknown_field_wider_than_advertised(self):
        """A field outside the schema defaults to one lane but must
        still roundtrip when its values need more."""
        batch = [{"x_custom": (1 << 100) + 3}, {"x_custom": 1}]
        assert roundtrip(batch) == batch

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            roundtrip([{"x_custom": 1 << 70}, {"x_custom": -1}])

    def test_duplicate_dicts_encoded_once_and_realiased(self):
        flow = {"in_port": 9, "ipv4_dst": 1}
        other = {"in_port": 9, "ipv4_dst": 1}  # equal but distinct object
        batch = [flow, flow, other, flow]
        codec = PacketBlockCodec()
        writer = BlockWriter()
        layout = codec.encode(writer, batch, "pkt")
        assert layout.rows == 2  # identity-deduped, not value-deduped
        block = SharedBlock()
        try:
            block.ensure(writer.nbytes)
            reader = BlockReader(block.buf, writer.write_to(block.buf))
            decoded = codec.decode(reader, layout)
            del reader
        finally:
            block.close()
        assert decoded == batch
        # Aliasing is rebuilt: duplicates share one dict object, so
        # downstream per-batch memoization sees the same shape.
        assert decoded[0] is decoded[1] is decoded[3]
        assert decoded[2] is not decoded[0]

    def test_position_subset_decodes_members_only(self):
        batch = [{"in_port": i} for i in range(10)]
        members = [7, 2, 2, 9]
        assert roundtrip(batch, np.asarray(members)) == [
            batch[i] for i in members
        ]

    def test_empty_batch(self):
        assert roundtrip([]) == []

    def test_schema_orders_canonical_fields_first(self):
        schema = list(transport_schema())
        assert schema.index("eth_dst") < schema.index("in_port")
        codec = PacketBlockCodec()
        writer = BlockWriter()
        layout = codec.encode(
            writer, [{"zzz_extra": 1, "eth_dst": 2, "in_port": 3}], "pkt"
        )
        names = [column.name for column in layout.fields]
        assert names == ["eth_dst", "in_port", "zzz_extra"]


class TestSharedBlock:
    def test_grows_by_recreation(self):
        block = SharedBlock()
        try:
            block.ensure(10)
            first = block.name
            assert len(block.buf) >= MIN_BLOCK_BYTES
            block.ensure(MIN_BLOCK_BYTES * 3)
            assert block.name != first
            assert len(block.buf) >= MIN_BLOCK_BYTES * 3
        finally:
            block.close()

    def test_close_idempotent(self):
        block = SharedBlock()
        block.ensure(10)
        block.close()
        block.close()

    def test_close_unlinks_the_segment(self):
        import multiprocessing.shared_memory as shared_memory

        block = SharedBlock()
        block.ensure(10)
        name = block.name
        block.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_abandoned_block_is_unlinked_by_the_finalizer(self):
        """The interrupted-run guard: dropping a block without close()
        must still unlink the segment at GC, not strand it in /dev/shm
        until reboot."""
        import gc
        import multiprocessing.shared_memory as shared_memory

        block = SharedBlock()
        block.ensure(10)
        name = block.name
        del block
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_growth_unlinks_the_outgrown_segment(self):
        import multiprocessing.shared_memory as shared_memory

        block = SharedBlock()
        try:
            block.ensure(10)
            first = block.name
            block.ensure(MIN_BLOCK_BYTES * 3)
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first)
        finally:
            block.close()


def _result(entry_tables, entries, ports, fields, actions=()):
    result = PipelineResult(final_fields=dict(fields))
    result.tables_visited = list(entry_tables)
    result.matched_entries = list(entries)
    result.output_ports = list(ports)
    result.applied_actions = list(actions)
    return result


class TestResultBlocks:
    def make_table(self):
        table = FlowTable(table_id=0)
        entries = [
            FlowEntry.build(
                match=Match.exact(in_port=port),
                priority=port,
                instructions=[WriteActions([OutputAction(100 + port)])],
            )
            for port in (1, 2, 3)
        ]
        for entry in entries:
            table.add(entry)
        return table, entries

    def test_results_roundtrip_via_entry_refs(self):
        table, entries = self.make_table()
        pipeline = OpenFlowPipeline([table])
        index = EntryIndex(pipeline)
        out = OutputAction(101)
        rewrite = SetFieldAction("vlan_vid", 42)
        results = [
            _result([0], [entries[0]], [101], {"in_port": 1}, [rewrite, out]),
            _result([0], [], [0xFFFFFFFD], {"in_port": 9}),
            _result([0], [entries[2]], [103], {"in_port": 3}, [out]),
        ]
        results[1].sent_to_controller = True
        results[2].metadata = (1 << 64) - 1
        results[2].final_fields["metadata"] = results[2].metadata

        codec = PacketBlockCodec()
        writer = BlockWriter()
        layout, vocabulary, delta = encode_results(
            writer, results, index, codec
        )
        assert delta.counts == {(0, 0): (1, 0), (0, 2): (1, 0)}
        block = SharedBlock()
        try:
            block.ensure(writer.nbytes)
            reader = BlockReader(block.buf, writer.write_to(block.buf))
            pinned = index.pin()
            decoded = decode_results(
                reader,
                layout,
                vocabulary,
                lambda table_id, position: pinned[table_id][position],
            )
            del reader
        finally:
            block.close()
        for original, rebuilt in zip(results, decoded):
            assert rebuilt.output_ports == original.output_ports
            assert rebuilt.sent_to_controller == original.sent_to_controller
            assert rebuilt.dropped == original.dropped
            assert rebuilt.metadata == original.metadata
            assert rebuilt.tables_visited == original.tables_visited
            assert rebuilt.final_fields == original.final_fields
            assert rebuilt.applied_actions == original.applied_actions
        # Matched entries resolved to the *pinned* (parent) objects.
        assert decoded[0].matched_entries == [entries[0]]
        assert decoded[0].matched_entries[0] is entries[0]

    def test_results_against_inputs_ship_only_overrides(self):
        """With the input packets in hand, final fields travel as
        rewrite overrides (mostly None) and the decoder rebuilds them
        from its own copies of the packets."""
        table, entries = self.make_table()
        pipeline = OpenFlowPipeline([table])
        index = EntryIndex(pipeline)
        packets = [
            {"in_port": 1, "vlan_vid": 7},
            {"in_port": 2, "vlan_vid": 7},
        ]
        untouched = _result([0], [entries[0]], [101], packets[0])
        rewritten = _result(
            [0],
            [entries[1]],
            [102],
            dict(packets[1], vlan_vid=42, metadata=9),
        )
        codec = PacketBlockCodec()
        writer = BlockWriter()
        layout, vocabulary, _ = encode_results(
            writer,
            [untouched, rewritten],
            index,
            codec,
            inputs=packets,
        )
        assert layout.fields is None
        assert layout.overrides == (None, {"vlan_vid": 42, "metadata": 9})
        block = SharedBlock()
        try:
            block.ensure(writer.nbytes)
            reader = BlockReader(block.buf, writer.write_to(block.buf))
            pinned = index.pin()
            decoded = decode_results(
                reader,
                layout,
                vocabulary,
                lambda table_id, position: pinned[table_id][position],
                inputs=packets,
            )
            del reader
        finally:
            block.close()
        assert decoded[0].final_fields == untouched.final_fields
        assert decoded[0].final_fields is not packets[0]  # fresh dict
        assert decoded[1].final_fields == rewritten.final_fields


class TestEntryIndex:
    def test_refs_track_mutations(self):
        table = OpenFlowLookupTable(("in_port",), table_id=0)
        pipeline = OpenFlowPipeline([table])
        index = EntryIndex(pipeline)
        first = FlowEntry.build(match=Match.exact(in_port=1), priority=1)
        second = FlowEntry.build(match=Match.exact(in_port=2), priority=2)
        table.add(first)
        table.add(second)
        assert index.ref(0, second) == (0, 1)
        table.remove(first.match, first.priority)
        assert index.ref(0, second) == (0, 0)  # cache refreshed on version

    def test_pin_freezes_order_across_mutation(self):
        table = FlowTable(table_id=0)
        pipeline = OpenFlowPipeline([table])
        index = EntryIndex(pipeline)
        entry = FlowEntry.build(match=Match.exact(in_port=1), priority=1)
        table.add(entry)
        pinned = index.pin()
        # A high-priority entry added *after* the pin re-sorts the
        # table, but ref resolution against the pin is unaffected.
        table.add(FlowEntry.build(match=Match.exact(in_port=2), priority=99))
        assert pinned[0][0] is entry

    def test_delta_apply_updates_pinned_entries(self):
        table = FlowTable(table_id=0)
        pipeline = OpenFlowPipeline([table])
        index = EntryIndex(pipeline)
        entry = FlowEntry.build(match=Match.exact(in_port=1), priority=1)
        table.add(entry)
        pinned = index.pin()
        delta = FlowStatsDelta(counts={(0, 0): (5, 700)})
        assert delta.apply(pinned) == (5, 700)
        assert entry.stats.packet_count == 5
        assert entry.stats.byte_count == 700
