"""ShardedBatchPipeline: replica snapshots, bitwise-identical results
across the scenario catalog, and the mutation-log catch-up protocol."""

import pickle
from pathlib import Path

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table, build_per_field_pipeline
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import Match
from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    PipelineSpec,
    ShardedBatchPipeline,
    run_workload,
)

from tests.runtime.test_megaflow import assert_same_result


def make_arch(rule_set):
    return MultiTableLookupArchitecture([build_lookup_table(rule_set)])


class TestPipelineSpec:
    def test_snapshot_pickles_and_rebuilds(self, small_routing_set):
        arch = make_arch(small_routing_set)
        spec = pickle.loads(pickle.dumps(PipelineSpec.snapshot(arch)))
        replica = spec.build()
        assert isinstance(replica, MultiTableLookupArchitecture)
        assert [len(t) for t in replica.tables] == [
            len(t) for t in arch.tables
        ]
        probe = {"in_port": 1, "ipv4_dst": 0x0A000001}
        assert_same_result(replica.process(probe), arch.process(probe))

    def test_split_pipeline_snapshot(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        replica = PipelineSpec.snapshot(arch).build()
        probe = {"in_port": 2, "ipv4_dst": 0x0B000001}
        assert_same_result(replica.process(probe), arch.process(probe))


class TestDifferential:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_sharded_matches_single_process(
        self, small_routing_set, name, transport
    ):
        """Acceptance: 4 workers, bitwise-identical results on every
        scenario in the catalog (churn included: the mutation log must
        keep replicas sequentially consistent), on both transports."""
        workload = SCENARIOS[name](
            small_routing_set, packet_count=200, flow_count=12
        )
        single = BatchPipeline(
            make_arch(small_routing_set),
            cache_capacity=128,
            megaflow_capacity=256,
        )
        expected = run_workload(
            single, workload, batch_size=50, keep_results=True
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=4,
            cache_capacity=128,
            megaflow_capacity=256,
            transport=transport,
        ) as sharded:
            got = run_workload(
                sharded, workload, batch_size=50, keep_results=True
            )
            stats = sharded.stats_snapshot()
        assert got.packets == expected.packets == 200
        for a, b in zip(got.results, expected.results):
            assert_same_result(a, b)
        assert stats.packets == 200
        assert stats.cache_hits + stats.cache_misses > 0
        # run_workload must surface the workers' cache counters, not the
        # parent's (empty) cache dict.
        assert got.cache_hits + got.cache_misses > 0
        assert got.megaflow_hits + got.megaflow_misses > 0
        # The stats-return protocol: worker flow hits are merged into
        # the parent's counters, matching the single-process totals.
        assert got.flow_packets == expected.flow_packets > 0

    def test_megaflow_key_sharding_learns_fields(self, small_routing_set):
        """Workers report their megaflow mask fields; the parent's shard
        key converges onto the consulted union."""
        workload = SCENARIOS["uniform"](
            small_routing_set, packet_count=120, flow_count=8
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            megaflow_capacity=256,
        ) as sharded:
            run_workload(sharded, workload, batch_size=40)
            assert sharded._learned_fields <= set(
                small_routing_set.field_names
            )
            assert sharded._learned_fields, "mask fields must be learned"


class TestMutationCatchUp:
    def entry(self, port: int, priority: int) -> FlowEntry:
        return FlowEntry.build(
            match=Match.exact(in_port=port),
            priority=priority,
            instructions=[WriteActions([OutputAction(100 + port)])],
        )

    def test_install_reaches_all_workers(self, small_routing_set):
        arch = make_arch(small_routing_set)
        with ShardedBatchPipeline(arch, workers=3) as sharded:
            probe = [{"in_port": 5, "ipv4_dst": i} for i in range(12)]
            before = sharded.process_batch(probe)
            # High-priority shadow rule installed through the facade.
            sharded.pipeline.table(0).add(self.entry(5, priority=999))
            after = sharded.process_batch(probe)
        assert any(r.output_ports != [105] for r in before)
        assert all(r.output_ports == [105] for r in after)

    def test_remove_where_through_facade(self, small_routing_set):
        arch = make_arch(small_routing_set)
        with ShardedBatchPipeline(arch, workers=2) as sharded:
            sharded.pipeline.table(0).add(self.entry(6, priority=999))
            removed = sharded.pipeline.table(0).remove_where(
                lambda e: e.priority == 999
            )
            assert removed == 1
            results = sharded.process_batch(
                [{"in_port": 6, "ipv4_dst": 1}]
            )
        assert results[0].output_ports != [106]

    def test_empty_batch_and_close_idempotent(self, small_routing_set):
        sharded = ShardedBatchPipeline(make_arch(small_routing_set), workers=2)
        assert sharded.process_batch([]) == []
        sharded.close()
        sharded.close()

    def test_reuse_after_close_replays_full_log(self, small_routing_set):
        """Respawned replicas rebuild from the construction-time
        snapshot, so the cursors must rewind and the whole mutation log
        must replay — otherwise pre-close flow-mods vanish."""
        sharded = ShardedBatchPipeline(make_arch(small_routing_set), workers=2)
        try:
            probe = [{"in_port": 5, "ipv4_dst": 3}]
            sharded.process_batch(probe)
            sharded.pipeline.table(0).add(self.entry(5, priority=999))
            assert sharded.process_batch(probe)[0].output_ports == [105]
            sharded.close()
            assert sharded.process_batch(probe)[0].output_ports == [105]
        finally:
            sharded.close()

    def test_worker_count_validated(self, small_routing_set):
        with pytest.raises(ValueError):
            ShardedBatchPipeline(make_arch(small_routing_set), workers=0)

    def test_transport_validated(self, small_routing_set):
        with pytest.raises(ValueError):
            ShardedBatchPipeline(
                make_arch(small_routing_set), workers=1, transport="carrier-pigeon"
            )

    def test_mutation_log_pruned_after_catch_up(self, small_routing_set):
        """Long churn must not grow the log without bound: once every
        worker has replayed it, the snapshot absorbs it."""
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2
        ) as sharded:
            probe = [
                {"in_port": p, "ipv4_dst": d}
                for p in range(4)
                for d in (1, 2, 3)
            ]
            entry = self.entry(7, priority=999)
            for _ in range(550):
                sharded.pipeline.table(0).add(entry)
                sharded.pipeline.table(0).remove(entry.match, entry.priority)
            assert len(sharded._log) == 1100
            sharded.process_batch(probe)  # both workers catch up
            sharded.process_batch(probe)  # prune runs after catch-up
            assert len(sharded._log) == 0
            # Respawn-from-snapshot still classifies correctly.
            sharded.close()
            results = sharded.process_batch(probe)
            assert len(results) == len(probe)


class _MutatingConn:
    """Pipe proxy firing a callback before its first send — the
    deterministic stand-in for a controller thread whose flow-mod lands
    while the parent is dispatching sub-batches."""

    def __init__(self, conn, fire):
        self._conn = conn
        self._fire = fire

    def send(self, message):
        self._fire()
        self._conn.send(message)

    def __getattr__(self, name):
        return getattr(self._conn, name)


class TestMidBatchMutation:
    """A mutation landing mid-batch must never serve a stale (or mixed)
    PipelineResult: the batch in flight classifies entirely at the
    pre-mutation state, the next batch entirely at the post-mutation
    state — with every worker cache revalidated.

    Guards two mechanisms in ``process_batch``: the single
    mutation-log-length snapshot (without it, workers dispatched after
    the flow-mod would replay it for the *same* batch and the batch
    would mix two table states) and the pinned entry order (without it,
    worker entry refs would resolve against the re-sorted post-mutation
    tables, corrupting matched-entry identity and stats attribution).
    """

    def shadow(self, port: int) -> FlowEntry:
        return FlowEntry.build(
            match=Match.exact(in_port=port),
            priority=999,
            instructions=[WriteActions([OutputAction(100 + port)])],
        )

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_mid_batch_mutation_defers_uniformly(
        self, small_routing_set, transport
    ):
        probe = [
            {"in_port": 5, "ipv4_dst": destination}
            for destination in range(24)
        ]
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            cache_capacity=64,
            megaflow_capacity=128,
            transport=transport,
        ) as sharded:
            # The probe must actually straddle both workers for the
            # mixed-state hazard to exist.
            assert len({sharded.shard_of(fields) for fields in probe}) == 2
            before = sharded.process_batch(probe)
            sharded.process_batch(probe)  # warm worker caches

            shadow = self.shadow(5)
            fired = []

            def fire():
                if not fired:
                    fired.append(True)
                    sharded.pipeline.table(0).add(shadow)

            sharded._conns = [
                _MutatingConn(conn, fire) for conn in sharded._conns
            ]
            in_flight = sharded.process_batch(probe)
            assert fired, "mutation must land during dispatch"
            # Entirely pre-mutation: no packet of the in-flight batch
            # may observe the shadow rule, on either worker.
            for got, expected in zip(in_flight, before):
                assert_same_result(got, expected)
            assert shadow.stats.packet_count == 0

            after = sharded.process_batch(probe)
            # Entirely post-mutation: megaflow aggregates and microflow
            # records for every probe key were captured pre-mutation on
            # the workers, so any stale replay shows up here.
            assert all(result.output_ports == [105] for result in after)
            assert all(
                (entry.match, entry.priority)
                == (shadow.match, shadow.priority)
                for result in after
                for entry in result.matched_entries[:1]
            )
            # Stats attribution survived the in-flight mutation: the
            # parent's shadow entry counts exactly the post-mutation
            # batch, via refs pinned to the pre-mutation order.
            assert shadow.stats.packet_count == len(probe)

    def test_concurrent_mutator_thread_stress(self, small_routing_set):
        """A real controller thread churning through the facade while
        batches flow: every mutation must be atomic against the batch
        prologue's (log length, entry order) snapshot — misalignment
        shows up as ref resolution errors or mis-attributed flow stats
        (total per-entry counts must still equal total matches)."""
        import threading

        probe = [
            {"in_port": port, "ipv4_dst": destination}
            for port in range(4)
            for destination in (1, 2, 3)
        ]
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            cache_capacity=64,
            megaflow_capacity=128,
        ) as sharded:
            shadow = self.shadow(7)
            stop = threading.Event()

            def churn():
                while not stop.is_set():
                    sharded.pipeline.table(0).add(shadow)
                    sharded.pipeline.table(0).remove(
                        shadow.match, shadow.priority
                    )

            mutator = threading.Thread(target=churn, daemon=True)
            mutator.start()
            try:
                total_matched = 0
                for _ in range(20):
                    results = sharded.process_batch(probe)
                    total_matched += sum(
                        len(r.matched_entries) for r in results
                    )
            finally:
                stop.set()
                mutator.join(timeout=10)
            assert not mutator.is_alive()
            # Conservation: every match was credited to some parent
            # entry, exactly once.
            counted = shadow.stats.packet_count + sum(
                entry.stats.packet_count
                for table in sharded._authoritative.tables
                for entry in table
            )
            assert counted == total_matched == sharded.flow_packets


class TestPipelined:
    """The double-buffered dispatch/collect loop: up to ``depth`` batches
    in flight, each classified at its own submission-time log snapshot —
    results must stay bitwise-identical to lockstep, in FIFO order, with
    mutations between submissions landing between batches."""

    def batches(self, rule_set, count=12, size=16):
        workload = SCENARIOS["zipf"](
            rule_set, packet_count=count * size, flow_count=10
        )
        (event,) = workload.events
        trace = event[1]
        return [trace[i : i + size] for i in range(0, len(trace), size)]

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    @pytest.mark.parametrize("depth", [2, 4])
    def test_stream_matches_lockstep(
        self, small_routing_set, transport, depth
    ):
        batches = self.batches(small_routing_set)
        single = BatchPipeline(
            make_arch(small_routing_set), cache_capacity=64
        )
        expected = [single.process_batch(batch) for batch in batches]
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            cache_capacity=64,
            transport=transport,
            depth=depth,
        ) as sharded:
            # Pipelining is shm-only: whole-payload pickling can fill
            # both pipe directions at once (deadlock), so pickle clamps
            # to lockstep — process_batches still streams correctly.
            assert sharded.depth == (depth if transport == "shm" else 1)
            got = list(sharded.process_batches(batches))
            assert sharded.in_flight == 0
            flow_packets = sharded.flow_packets
            flow_bytes = sharded.flow_bytes
        assert len(got) == len(expected)
        for got_chunk, expected_chunk in zip(got, expected):
            assert len(got_chunk) == len(expected_chunk)
            for a, b in zip(got_chunk, expected_chunk):
                assert_same_result(a, b)
        # Byte-exact stats merge across the pipelined stream.
        assert flow_packets == single.flow_packets > 0
        assert flow_bytes == single.flow_bytes > 0

    def test_submit_collect_fifo(self, small_routing_set):
        batches = self.batches(small_routing_set, count=4)
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in batches]
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2, cache_capacity=64
        ) as sharded:
            sharded.submit_batch(batches[0])
            sharded.submit_batch(batches[1])
            assert sharded.in_flight == 2
            with pytest.raises(RuntimeError):
                sharded.submit_batch(batches[2])
            for expected_chunk in expected[:2]:
                for a, b in zip(sharded.collect_batch(), expected_chunk):
                    assert_same_result(a, b)
            with pytest.raises(RuntimeError):
                sharded.collect_batch()
            # process_batch drains nothing outstanding and stays usable.
            for a, b in zip(sharded.process_batch(batches[2]), expected[2]):
                assert_same_result(a, b)

    def test_empty_submit_rejected(self, small_routing_set):
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded, pytest.raises(ValueError, match="empty batch"):
            sharded.submit_batch([])

    def test_process_batch_refuses_to_drop_in_flight_results(
        self, small_routing_set
    ):
        """Mixing the APIs must never silently lose classified packets:
        process_batch with submit_batch results outstanding raises
        instead of draining them into the void."""
        batches = self.batches(small_routing_set, count=2)
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            sharded.submit_batch(batches[0])
            with pytest.raises(RuntimeError, match="in flight"):
                sharded.process_batch(batches[1])
            with pytest.raises(RuntimeError, match="in flight"):
                sharded.process_batches([batches[1]])
            sharded.collect_batch()
            assert len(sharded.process_batch(batches[1])) == len(batches[1])

    def test_concurrent_streams_rejected(self, small_routing_set):
        """Two live process_batches() generators would interleave on the
        shared FIFO and swap results between streams; the second must
        raise, and a finished stream frees the slot."""
        batches = self.batches(small_routing_set, count=4)
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            stream = sharded.process_batches(batches[:2])
            with pytest.raises(RuntimeError, match="stream is live"):
                sharded.process_batches(batches[2:])
            with pytest.raises(RuntimeError, match="stream is live"):
                sharded.process_batch(batches[2])
            with pytest.raises(RuntimeError, match="stream is live"):
                sharded.submit_batch(batches[2])
            assert len(list(stream)) == 2  # exhausting frees the slot
            assert len(list(sharded.process_batches(batches[2:]))) == 2

    def test_large_mutation_backlog_is_not_pipelined(self, small_routing_set):
        """An unbounded mutation suffix inside the 'small' control
        message could fill the pipe while a worker's reply blocks the
        other direction; past the backlog bound the stream must drain
        before submitting and submit_batch must refuse."""
        limit = ShardedBatchPipeline.MAX_PIPELINED_MUTATION_BACKLOG
        batches = self.batches(small_routing_set, count=3)
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            sharded.submit_batch(batches[0])
            entry = FlowEntry.build(
                match=Match.exact(in_port=6),
                priority=999,
                instructions=[WriteActions([OutputAction(106)])],
            )
            for _ in range(limit + 1):
                sharded.pipeline.table(0).add(entry)
                sharded.pipeline.table(0).remove(entry.match, entry.priority)
            with pytest.raises(RuntimeError, match="backlog"):
                sharded.submit_batch(batches[1])
            sharded.collect_batch()
            sharded.submit_batch(batches[1])  # empty in-flight: fine
            sharded.collect_batch()
            # The stream path handles the same burst by draining, and
            # stays bitwise-identical.
            for _ in range(limit + 1):
                sharded.pipeline.table(0).add(entry)
                sharded.pipeline.table(0).remove(entry.match, entry.priority)
            got = list(sharded.process_batches(batches))
        expected = [single.process_batch(batch) for batch in batches]
        for got_chunk, expected_chunk in zip(got, expected):
            for a, b in zip(got_chunk, expected_chunk):
                assert_same_result(a, b)

    def test_pickle_transport_clamps_depth(self, small_routing_set):
        sharded = ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=1,
            transport="pickle",
            depth=4,
        )
        assert sharded.depth == 1

    def test_mutation_between_submissions_lands_between_batches(
        self, small_routing_set
    ):
        """A flow-mod applied after submit(N) but before submit(N+1) must
        be invisible to batch N and authoritative for batch N+1 — the
        per-in-flight log-length snapshot, not a per-drain one."""
        probe = [{"in_port": 5, "ipv4_dst": d} for d in range(16)]
        shadow = FlowEntry.build(
            match=Match.exact(in_port=5),
            priority=999,
            instructions=[WriteActions([OutputAction(105)])],
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            before = sharded.process_batch(probe)
            sharded.submit_batch(probe)
            sharded.pipeline.table(0).add(shadow)
            sharded.submit_batch(probe)
            old_state = sharded.collect_batch()
            new_state = sharded.collect_batch()
        for a, b in zip(old_state, before):
            assert_same_result(a, b)
        assert shadow.stats.packet_count == len(probe)
        assert all(r.output_ports == [105] for r in new_state)

    def test_empty_batches_in_stream(self, small_routing_set):
        batches = self.batches(small_routing_set, count=3)
        stream = [batches[0], [], batches[1], [], [], batches[2]]
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in stream]
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=3
        ) as sharded:
            got = list(sharded.process_batches(stream))
        assert [len(chunk) for chunk in got] == [
            len(chunk) for chunk in expected
        ]
        for got_chunk, expected_chunk in zip(got, expected):
            for a, b in zip(got_chunk, expected_chunk):
                assert_same_result(a, b)

    def test_depth_validated(self, small_routing_set):
        with pytest.raises(ValueError):
            ShardedBatchPipeline(
                make_arch(small_routing_set), workers=1, depth=0
            )

    def test_close_drains_in_flight(self, small_routing_set):
        batches = self.batches(small_routing_set, count=2)
        sharded = ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        )
        sharded.submit_batch(batches[0])
        sharded.submit_batch(batches[1])
        sharded.close()  # must not deadlock or leave replies queued
        assert sharded.in_flight == 0


def _shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.iterdir()}


@pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)
class TestSharedMemoryLifecycle:
    """Sharded runs must not strand segments in /dev/shm — neither on a
    clean close nor when the runner is abandoned mid-flight (the
    ``SharedBlock`` finalizer guard)."""

    def run_batches(self, runner, rule_set):
        workload = SCENARIOS["zipf"](rule_set, packet_count=96, flow_count=8)
        run_workload(runner, workload, batch_size=16)

    def test_close_leaves_no_segments(self, small_routing_set):
        before = _shm_segments()
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=3
        ) as sharded:
            self.run_batches(sharded, small_routing_set)
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_abandoned_runner_leaves_no_segments(self, small_routing_set):
        """Interrupted-run stand-in: drop the runner without close();
        the finalizers must unlink every parent-owned segment and the
        worker teardown (EOF on the pipe) the worker-owned ones."""
        import gc
        import time

        before = _shm_segments()
        sharded = ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        )
        self.run_batches(sharded, small_routing_set)
        procs = list(sharded._procs)
        del sharded
        gc.collect()
        for proc in procs:
            proc.join(timeout=10)
        # Workers unlink their response rings on EOF; give the kernel a
        # beat to reap before asserting.
        deadline = time.monotonic() + 5
        while _shm_segments() - before and time.monotonic() < deadline:
            time.sleep(0.05)
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"


class _RoutedSharded(ShardedBatchPipeline):
    """Deterministic routing for the out-of-order tests: packets go to
    the worker named by their ``in_port`` (mod workers)."""

    def shard_of(self, packet_fields):
        return packet_fields.get("in_port", 0) % self.workers


class TestOutOfOrderCollect:
    """collect_batch(seq=...) / collect_any(): a slow shard must only
    stall the batches actually assigned to it."""

    def routed_batches(self, rule_set, sizes=(6, 4)):
        """One batch per worker: batch i's packets all carry in_port=i,
        so _RoutedSharded pins batch 0 to worker 0 and batch 1 to
        worker 1."""
        workload = SCENARIOS["zipf"](
            rule_set, packet_count=max(sizes) * 4, flow_count=8
        )
        trace = workload.events[0][1]
        batches = []
        cursor = 0
        for worker, size in enumerate(sizes):
            chunk = [
                dict(fields, in_port=worker)
                for fields in trace[cursor : cursor + size]
            ]
            batches.append(chunk)
            cursor += size
        return batches

    def test_collect_by_seq_out_of_order(self, small_routing_set):
        batches = self.routed_batches(small_routing_set)
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in batches]
        with _RoutedSharded(
            make_arch(small_routing_set), workers=2, depth=2, cache_capacity=64
        ) as sharded:
            seq0 = sharded.submit_batch(batches[0])
            seq1 = sharded.submit_batch(batches[1])
            assert (seq0, seq1) == (0, 1)
            # Batch 1 lives entirely on worker 1: collecting it touches
            # only worker 1's pipe, so batch 0's worker being busy (or
            # stalled forever) cannot block it.
            got1 = sharded.collect_batch(seq=seq1)
            assert sharded.in_flight == 1
            for a, b in zip(got1, expected[1]):
                assert_same_result(a, b)
            got0 = sharded.collect_batch(seq=seq0)
            assert sharded.in_flight == 0
            for a, b in zip(got0, expected[0]):
                assert_same_result(a, b)

    def test_collect_unknown_seq_rejected(self, small_routing_set):
        batches = self.routed_batches(small_routing_set)
        with _RoutedSharded(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            with pytest.raises(RuntimeError, match="no batch in flight"):
                sharded.collect_batch()
            sharded.submit_batch(batches[0])
            with pytest.raises(RuntimeError, match="not in flight"):
                sharded.collect_batch(seq=7)
            sharded.collect_batch()

    def test_collect_any_completes_fast_shard_first(self, small_routing_set):
        """The acceptance scenario: batch N+1 (tiny, fast worker)
        completes while batch N's worker is still grinding a batch three
        orders of magnitude larger."""
        workload = SCENARIOS["zipf"](
            rule_set=small_routing_set, packet_count=30_000, flow_count=8
        )
        heavy = [
            dict(fields, in_port=0) for fields in workload.events[0][1]
        ]
        light = [dict(fields, in_port=1) for fields in workload.events[0][1][:4]]
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=None)
        expected_light = single.process_batch(light)
        expected_heavy = single.process_batch(heavy)
        with _RoutedSharded(
            make_arch(small_routing_set),
            workers=2,
            depth=2,
            cache_capacity=None,
        ) as sharded:
            # Warm both workers up so fork/attach cost is out of the race.
            sharded.process_batch(
                [dict(heavy[0], in_port=0), dict(heavy[0], in_port=1)]
            )
            heavy_seq = sharded.submit_batch(heavy)
            light_seq = sharded.submit_batch(light)
            seq, results = sharded.collect_any()
            assert seq == light_seq, (
                "collect_any returned the heavy batch first — the fast "
                "shard was blocked behind the slow one"
            )
            for a, b in zip(results, expected_light):
                assert_same_result(a, b)
            seq, results = sharded.collect_any()
            assert seq == heavy_seq
            for a, b in zip(results, expected_heavy):
                assert_same_result(a, b)
            with pytest.raises(RuntimeError, match="no batch in flight"):
                sharded.collect_any()

    def test_ring_slot_guard_after_out_of_order_collect(
        self, small_routing_set
    ):
        """Slot seq % depth is reused only after its previous occupant
        was collected: an out-of-order collect can leave the oldest
        batch holding the next submission's slot."""
        batches = self.routed_batches(small_routing_set, sizes=(4, 4, 4))
        with _RoutedSharded(
            make_arch(small_routing_set), workers=3, depth=2
        ) as sharded:
            seq0 = sharded.submit_batch(batches[0])
            seq1 = sharded.submit_batch(batches[1])
            sharded.collect_batch(seq=seq1)
            # seq 2 would reuse slot 0, still held by uncollected seq 0.
            with pytest.raises(RuntimeError, match="ring slot"):
                sharded.submit_batch(batches[2])
            sharded.collect_batch(seq=seq0)
            seq2 = sharded.submit_batch(batches[2])
            assert seq2 == 2
            sharded.collect_batch()

    def test_fifo_default_unchanged(self, small_routing_set):
        """collect_batch() with no seq keeps the strict FIFO contract."""
        batches = self.routed_batches(small_routing_set)
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in batches]
        with _RoutedSharded(
            make_arch(small_routing_set), workers=2, depth=2, cache_capacity=64
        ) as sharded:
            sharded.submit_batch(batches[0])
            sharded.submit_batch(batches[1])
            for expected_chunk in expected:
                for a, b in zip(sharded.collect_batch(), expected_chunk):
                    assert_same_result(a, b)


class TestColumnarSharded:
    """Decode-free workers: columnar submissions classify off the block
    columns and stay bitwise-identical to the dict transport."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_columnar_matches_single_process(self, small_routing_set, name):
        from repro.runtime.scenarios import columnar_workload

        workload = SCENARIOS[name](
            small_routing_set, packet_count=300, flow_count=12
        )
        single = BatchPipeline(
            make_arch(small_routing_set),
            cache_capacity=64,
            megaflow_capacity=128,
        )
        expected = run_workload(
            single, workload, batch_size=48, keep_results=True
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=4,
            depth=2,
            cache_capacity=64,
            megaflow_capacity=128,
        ) as sharded:
            got = run_workload(
                sharded,
                columnar_workload(workload),
                batch_size=48,
                keep_results=True,
            )
        assert len(got.results) == len(expected.results)
        for a, b in zip(got.results, expected.results):
            assert_same_result(a, b)
        assert got.flow_packets == expected.flow_packets
        assert got.flow_bytes == expected.flow_bytes

    def test_columnar_worker_message_flag(self, small_routing_set):
        """Columnar submissions are marked for the worker; dict ones are
        not (the worker chooses the decode path per message)."""
        from repro.packet.batch import PacketBatch

        sent = []
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=1, depth=1
        ) as sharded:
            trace = SCENARIOS["zipf"](
                small_routing_set, packet_count=8, flow_count=4
            ).events[0][1]
            sharded.process_batch(trace)  # spawn + dict round
            original = sharded._conns[0].send

            def spy(message):
                sent.append(message)
                original(message)

            sharded._conns[0].send = spy
            sharded.process_batch(trace)
            sharded.process_batch(PacketBatch.from_dicts(trace))
        shm_messages = [m for m in sent if m[0] == "shm"]
        assert [m.columnar for m in shm_messages] == [False, True]
