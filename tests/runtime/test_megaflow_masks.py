"""Mask-precision regression pins for the megaflow capture path.

Range engines currently claim the **whole field** on any hit: a
populated elementary-interval structure reports ``consulted_mask`` over
every partition bit, so two packets in the same interval still land in
different megaflow aggregates (ROADMAP open item "Megaflow mask
precision").  These tests pin today's sound-but-wide behaviour — a
silent change in either direction should fail loudly — and document the
target behaviour as ``xfail(strict=True)`` markers: the day someone
narrows the masks to elementary-interval boundaries, the xfails flip to
errors and these pins get rewritten as the new contract.
"""

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import Match, RangeMatch
from repro.runtime import BatchPipeline, MegaflowRecorder

NARROW_REASON = (
    "range engines claim the whole field; elementary-interval boundaries "
    "could narrow this (ROADMAP open item) — rewrite these pins when they do"
)


def range_table(low=0, high=1023):
    table = OpenFlowLookupTable(("in_port", "tcp_dst"), table_id=0)
    table.add(
        FlowEntry.build(
            match=Match(
                {"tcp_dst": RangeMatch(low=low, high=high, bits=16)}
            ),
            priority=1,
            instructions=[WriteActions([OutputAction(10)])],
        )
    )
    return table


class TestCurrentFullFieldMasks:
    def test_range_hit_consults_whole_field(self):
        recorder = MegaflowRecorder()
        table = range_table()
        assert (
            table.lookup({"in_port": 1, "tcp_dst": 80}, mask=recorder)
            is not None
        )
        assert recorder.fields["tcp_dst"] == 0xFFFF

    def test_range_miss_consults_whole_field(self):
        """Misses are pinned too: a populated range structure reports
        full width whichever side of the boundary the key falls on."""
        recorder = MegaflowRecorder()
        table = range_table()
        assert table.lookup({"in_port": 1, "tcp_dst": 5000}, mask=recorder) is None
        assert recorder.fields["tcp_dst"] == 0xFFFF

    def test_same_interval_packets_split_into_two_aggregates(self):
        """Consequence at the cache: tcp_dst=80 and tcp_dst=81 classify
        identically (same elementary interval) but occupy two megaflow
        entries under the full-field mask."""
        runner = BatchPipeline(
            MultiTableLookupArchitecture([range_table()]),
            cache_capacity=None,
            megaflow_capacity=64,
        )
        runner.process_batch(
            [
                {"in_port": 1, "tcp_dst": 80},
                {"in_port": 1, "tcp_dst": 81},
            ]
        )
        assert runner.megaflow is not None
        assert len(runner.megaflow) == 2
        stats = runner.stats_snapshot()
        assert stats.megaflow_hits == 0

    def test_empty_range_engine_stays_wild(self):
        """The flip side (already precise today): an *empty* engine
        consults nothing, so unconstrained fields never widen masks."""
        table = OpenFlowLookupTable(("in_port", "tcp_dst"), table_id=0)
        table.add(
            FlowEntry.build(
                match=Match.exact(in_port=3),
                priority=1,
                instructions=[WriteActions([OutputAction(10)])],
            )
        )
        recorder = MegaflowRecorder()
        table.lookup({"in_port": 3, "tcp_dst": 1234}, mask=recorder)
        assert "tcp_dst" not in recorder.fields


class TestElementaryIntervalTargets:
    """What precise masks would look like — strict xfails until built."""

    @pytest.mark.xfail(strict=True, reason=NARROW_REASON)
    def test_narrow_mask_for_power_of_two_boundary(self):
        """[0, 1023] vs [1024, 65535] is decided by the top 6 bits, so
        0xFC00 is the narrowest sound mask for an in-range key."""
        recorder = MegaflowRecorder()
        table = range_table()
        table.lookup({"in_port": 1, "tcp_dst": 80}, mask=recorder)
        assert recorder.fields["tcp_dst"] == 0xFC00

    @pytest.mark.xfail(strict=True, reason=NARROW_REASON)
    def test_same_interval_packets_share_one_aggregate(self):
        runner = BatchPipeline(
            MultiTableLookupArchitecture([range_table()]),
            cache_capacity=None,
            megaflow_capacity=64,
        )
        runner.process_batch([{"in_port": 1, "tcp_dst": 80}])
        runner.process_batch([{"in_port": 1, "tcp_dst": 81}])
        assert runner.megaflow is not None
        assert runner.stats_snapshot().megaflow_hits == 1
