"""BatchPipeline differential tests: the batched (and cached) runtime
must reproduce the scalar pipeline's results packet for packet."""

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table, build_per_field_pipeline
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline
from repro.openflow.table import FlowTable
from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    Workload,
    churn_workload,
    run_workload,
)


def assert_results_equal(batched, scalar):
    assert len(batched) == len(scalar)
    for a, b in zip(batched, scalar):
        assert a.output_ports == b.output_ports
        assert a.sent_to_controller == b.sent_to_controller
        assert a.dropped == b.dropped
        assert a.metadata == b.metadata
        assert a.tables_visited == b.tables_visited
        assert len(a.matched_entries) == len(b.matched_entries)


@pytest.fixture()
def split_trace(small_routing_set, generator):
    matches = [r.to_match() for r in small_routing_set.rules[:64]]
    flows = generator.flow_pool(
        matches, fill_fields=small_routing_set.field_names
    )
    return generator.sample_trace(flows, 400)


class TestDifferential:
    @pytest.mark.parametrize("cache_capacity", [None, 128])
    def test_split_pipeline_agrees_with_scalar(
        self, small_routing_set, split_trace, cache_capacity
    ):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        runner = BatchPipeline(arch, cache_capacity=cache_capacity)
        batched = []
        for start in range(0, len(split_trace), 100):
            batched.extend(
                runner.process_batch(split_trace[start : start + 100])
            )

        reference = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        scalar = [reference.process(f) for f in split_trace]
        assert_results_equal(batched, scalar)

    def test_flow_table_pipeline_supported(self, small_routing_set, split_trace):
        # Behavioural FlowTables have no batch path or schema; the runner
        # must fall back to per-packet lookup and still agree.
        def build():
            table = FlowTable()
            for entry in small_routing_set.to_flow_entries():
                table.add(entry)
            return OpenFlowPipeline([table], miss_policy=MissPolicy.DROP)

        runner = BatchPipeline(build(), cache_capacity=None)
        assert runner.caches == {}
        batched = runner.process_batch(split_trace)
        scalar = [build().process(f) for f in split_trace]
        assert_results_equal(batched, scalar)

    def test_single_packet_process(self, small_routing_set, split_trace):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        runner = BatchPipeline(arch)
        result = runner.process(split_trace[0])
        assert result.tables_visited[0] == 0

    def test_stats_snapshot_counts_outcomes(self, small_routing_set, split_trace):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        runner = BatchPipeline(arch)
        results = runner.process_batch(split_trace)
        stats = runner.stats_snapshot()
        assert stats.packets == len(split_trace)
        assert stats.matched == sum(bool(r.matched) for r in results) > 0
        assert stats.sent_to_controller == sum(
            r.sent_to_controller for r in results
        )
        assert stats.dropped == sum(r.dropped for r in results)

    def test_empty_batch(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        assert BatchPipeline(arch).process_batch([]) == []


class TestCacheWiring:
    def test_caches_attach_to_schema_tables(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            build_per_field_pipeline(small_routing_set)
        )
        runner = BatchPipeline(arch, cache_capacity=64)
        assert set(runner.caches) == {t.table_id for t in arch.tables}

    def test_mid_trace_mutation_not_stale(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            [build_lookup_table(small_routing_set)]
        )
        runner = BatchPipeline(arch, cache_capacity=64)
        fields = {"in_port": 1, "ipv4_dst": 0x0A000001}
        table = arch.lookup_tables[0]
        # Prime the cache, then install a wildcard rule shadowing every
        # entry (priority 99, no instructions -> the packet is dropped).
        runner.process(fields)
        table.add(FlowEntry.build(match=Match({}), priority=99))
        after = runner.process(fields)
        assert after.matched_entries[-1].priority == 99
        assert after.dropped and not after.output_ports


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenarios_replay(self, small_routing_set, name):
        workload = SCENARIOS[name](
            small_routing_set, packet_count=300, flow_count=24
        )
        assert workload.packet_count == 300
        arch = MultiTableLookupArchitecture(
            [build_lookup_table(small_routing_set)]
        )
        stats = run_workload(
            BatchPipeline(arch), workload, batch_size=64
        )
        assert stats.packets == 300
        assert stats.matched + stats.sent_to_controller + stats.dropped >= 300

    def test_churn_workload_differential(self, small_routing_set):
        workload = churn_workload(
            small_routing_set, packet_count=300, flow_count=24, rounds=4
        )
        assert workload.packet_count == 300

        def run(cache_capacity):
            arch = MultiTableLookupArchitecture(
                [build_lookup_table(small_routing_set)]
            )
            stats = run_workload(
                BatchPipeline(arch, cache_capacity=cache_capacity),
                workload,
                batch_size=64,
                keep_results=True,
            )
            return arch, stats

        arch_cached, cached = run(128)
        _, plain = run(None)
        assert_results_equal(cached.results, plain.results)
        assert cached.installs == cached.uninstalls > 0
        # churn must not strand action-table slots
        table = arch_cached.lookup_tables[0]
        assert (
            table.actions.allocated_slots - table.actions.free_slots
            == len(table)
        )

    def test_reused_runner_stats_are_per_replay(self, small_routing_set):
        workload = SCENARIOS["zipf"](
            small_routing_set, packet_count=200, flow_count=16
        )
        arch = MultiTableLookupArchitecture(
            [build_lookup_table(small_routing_set)]
        )
        runner = BatchPipeline(arch, cache_capacity=128)
        first = run_workload(runner, workload, batch_size=50)
        second = run_workload(runner, workload, batch_size=50)
        # Counters are per replay, not the runner's lifetime totals.
        assert first.cache_hits + first.cache_misses == 200
        assert second.cache_hits + second.cache_misses == 200
        # The cache is warm on the second replay.
        assert second.cache_hits >= first.cache_hits

    def test_bad_event_rejected(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            [build_lookup_table(small_routing_set)]
        )
        workload = Workload(name="bad", description="", events=(("boom",),))
        with pytest.raises(ValueError):
            run_workload(BatchPipeline(arch), workload)

    def test_bad_batch_size_rejected(self, small_routing_set):
        arch = MultiTableLookupArchitecture(
            [build_lookup_table(small_routing_set)]
        )
        workload = Workload(name="w", description="", events=())
        with pytest.raises(ValueError):
            run_workload(BatchPipeline(arch), workload, batch_size=0)
