"""The columnar fast path: batch key hashing, vectorized cache tiers.

Covers the satellite guarantees of the columnar PR: hash collisions
degrade to cache misses (never wrong results), presence bytes are part
of every key (value 0 != field absent), ``frame_len`` can never enter a
key or mask, and both vectorized tiers stay bitwise-identical to their
dict paths — plus a small microbenchmark pinning the vectorized hash
against the per-packet tuple build.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.builder import build_lookup_table
from repro.core.architecture import MultiTableLookupArchitecture
from repro.packet.batch import PacketBatch
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime import (
    BatchPipeline,
    MicroflowCache,
    run_workload,
    uniform_wide_workload,
    widen_rule_set,
    zipf_workload,
)
from repro.runtime.scenarios import columnar_workload


@pytest.fixture(scope="module")
def rule_set():
    from repro.filters.paper_data import RoutingFilterStats
    from repro.filters.synthetic import generate_routing_set

    return generate_routing_set(
        RoutingFilterStats("columnar", 200, 12, 40, 90), seed=23
    )


# ----------------------------------------------------------------------
# batch key hashing
# ----------------------------------------------------------------------


class TestKeyHashes:
    FIELDS = ("ipv4_src", "ipv4_dst", "tcp_dst")

    def test_equal_keys_equal_hashes_distinct_keys_distinct(self):
        """Collision sanity: equal field tuples hash equal; across a few
        thousand distinct keys the 64-bit hash shows no collision."""
        packets = [
            {"ipv4_src": i, "ipv4_dst": i * 7, "tcp_dst": i % 1024}
            for i in range(4096)
        ]
        batch = PacketBatch.from_dicts(packets + packets[:100])
        hashes = batch.key_hashes(self.FIELDS)
        assert len(hashes) == 4096  # rows, not positions
        assert len(set(hashes.tolist())) == 4096

    def test_presence_byte_sensitivity(self):
        """A field carrying 0 and a missing field are different keys."""
        batch = PacketBatch.from_dicts(
            [
                {"ipv4_src": 0, "ipv4_dst": 1},
                {"ipv4_dst": 1},
            ]
        )
        hashes = batch.key_hashes(("ipv4_src", "ipv4_dst"))
        assert hashes[0] != hashes[1]
        _, packed = batch.packed_keys(("ipv4_src", "ipv4_dst"))
        assert packed[0] != packed[1]

    def test_frame_len_excluded_from_keys(self):
        """Two packets differing only in frame_len share key and hash —
        the schema never names the metadata field."""
        batch = PacketBatch.from_dicts(
            [
                {"ipv4_src": 9, FRAME_LEN_FIELD: 64},
                {"ipv4_src": 9, FRAME_LEN_FIELD: 1500},
            ]
        )
        hashes = batch.key_hashes(self.FIELDS)
        assert hashes[0] == hashes[1]
        _, packed = batch.packed_keys(self.FIELDS)
        assert packed[0] == packed[1]
        # ... but the lengths still flow into byte accounting.
        assert batch.frame_lengths().tolist() == [64, 1500]

    def test_frame_len_excluded_from_masks(self):
        """Megaflow masks are recorder-built from match fields only; even
        a hand-built mask naming frame_len cannot arise from capture —
        assert the recorder's signature never contains it."""
        from repro.runtime.megaflow import MegaflowRecorder

        recorder = MegaflowRecorder()
        recorder.consult("ipv4_src", 0xFF)
        recorder.consult("tcp_dst", 0x3)
        assert FRAME_LEN_FIELD not in dict(recorder.mask_signature())

    def test_wide_values_hash_all_lanes(self):
        low = {"ipv6_src": 5}
        high = {"ipv6_src": 5 | (1 << 100)}
        batch = PacketBatch.from_dicts([low, high])
        hashes = batch.key_hashes(("ipv6_src",))
        assert hashes[0] != hashes[1]


class TestCollisionSafety:
    def test_forced_hash_collision_still_correct(self, rule_set):
        """With every hash forced equal, the packed-key verification must
        turn collisions into misses — outcomes stay correct."""
        trace = zipf_workload(
            rule_set, packet_count=512, flow_count=32
        ).events[0][1]
        batch = PacketBatch.from_dicts(trace)
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table)
        schema = cache.field_names
        sig, hashes, packed = batch.probe_keys(schema)
        batch._store.key_memo[tuple(schema)] = (
            np.zeros(batch.rows, dtype=np.uint64),
            [0] * batch.rows,
            sig,
            packed,
        )
        got = []
        for start in range(0, len(batch), 64):
            got.extend(cache.lookup_batch_columnar(batch[start : start + 64]))
        reference_table = build_lookup_table(rule_set)
        expected = [reference_table.lookup(fields) for fields in trace]
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.match == b.match and a.priority == b.priority

    def test_sig_mismatch_reads_as_miss(self, rule_set):
        """A record stored under a different lane layout (signature) is
        never returned for a colliding hash."""
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table)
        trace = zipf_workload(
            rule_set, packet_count=64, flow_count=8
        ).events[0][1]
        batch = PacketBatch.from_dicts(trace)
        cache.lookup_batch_columnar(batch)
        # Corrupt every cached record's signature; next columnar pass
        # must treat all rows as misses and still classify correctly.
        for record in cache._entries.values():
            record.sig = (("bogus", 1),)
        got = cache.lookup_batch_columnar(batch)
        expected = [build_lookup_table(rule_set).lookup(f) for f in trace]
        for a, b in zip(got, expected):
            assert (a is None) == (b is None)


# ----------------------------------------------------------------------
# vectorized tiers == dict tiers
# ----------------------------------------------------------------------


class TestColumnarMicroflow:
    def test_matches_dict_path_and_stats(self, rule_set):
        trace = zipf_workload(
            rule_set, packet_count=3000, flow_count=64, frame_len="imix"
        ).events[0][1]
        table_dict = build_lookup_table(rule_set)
        table_col = build_lookup_table(rule_set)
        cache_dict = MicroflowCache(table_dict, capacity=128)
        cache_col = MicroflowCache(table_col, capacity=128)
        batch = PacketBatch.from_dicts(trace)
        got_dict: list = []
        got_col: list = []
        for start in range(0, len(trace), 256):
            got_dict.extend(cache_dict.lookup_batch(trace[start : start + 256]))
            got_col.extend(
                cache_col.lookup_batch_columnar(batch[start : start + 256])
            )
        assert len(got_dict) == len(got_col)
        for a, b in zip(got_dict, got_col):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.match == b.match and a.priority == b.priority
        stats_dict = sorted(
            (str(e.match), e.priority, e.stats.packet_count, e.stats.byte_count)
            for e in table_dict
        )
        stats_col = sorted(
            (str(e.match), e.priority, e.stats.packet_count, e.stats.byte_count)
            for e in table_col
        )
        assert stats_dict == stats_col
        assert cache_dict.hits == cache_col.hits
        assert cache_dict.misses == cache_col.misses

    def test_revalidates_after_mutation(self, rule_set):
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table)
        trace = zipf_workload(
            rule_set, packet_count=128, flow_count=16
        ).events[0][1]
        batch = PacketBatch.from_dicts(trace)
        first = cache.lookup_batch_columnar(batch)
        entry = next(e for e in first if e is not None)
        # Remove + reinstall bumps the version; stale records must
        # re-resolve instead of serving the old outcome.
        assert table.remove(entry.match, entry.priority)
        table.add(entry)
        again = cache.lookup_batch_columnar(batch)
        for a, b in zip(first, again):
            assert (a is None) == (b is None)

    def test_rescue_restamp_drops_stale_sidecar_slot(self):
        """A layout change re-hashes a cached key; promoting the record
        under its new hash must drop the old sidecar slot, or eviction
        could never unindex it (dangling mapping pinning dead records)."""

        class _StubTable:
            field_names = ("a", "b")
            version = 0

            def lookup_batch(self, batch):
                return [None] * len(batch)

        cache = MicroflowCache(_StubTable())
        narrow = {"a": 1, "b": 2}
        cache.lookup_batch_columnar(PacketBatch.from_dicts([narrow]))
        assert len(cache._columnar) == 1
        # Same logical key in a batch whose "a" column widened to two
        # lanes: different signature, different hash, rescue path.
        wide_batch = PacketBatch.from_dicts([narrow, {"a": 2**70, "b": 0}])
        cache.lookup_batch_columnar(wide_batch)
        for chash, record in cache._columnar.items():
            assert record.chash == chash
            assert cache._entries[record.key] is record
        assert len(cache._columnar) <= len(cache._entries)

    def test_columnar_counts_revalidations(self, rule_set):
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table)
        trace = zipf_workload(
            rule_set, packet_count=64, flow_count=8
        ).events[0][1]
        batch = PacketBatch.from_dicts(trace)
        cache.lookup_batch_columnar(batch)
        assert cache.revalidations == 0
        entry = next(e for e in table)
        assert table.remove(entry.match, entry.priority)
        table.add(entry)  # version bump; cached stamps now stale
        cache.lookup_batch_columnar(batch)
        assert cache.revalidations > 0

    def test_duplicate_miss_rows_insert_once(self):
        inserts = []

        class _CountingTable:
            field_names = ("a",)
            version = 0

            def lookup_batch(self, batch):
                return [None] * len(batch)

        cache = MicroflowCache(_CountingTable())
        original = cache._insert

        def counting_insert(key, *args, **kwargs):
            inserts.append(key)
            return original(key, *args, **kwargs)

        cache._insert = counting_insert
        flow = {"a": 7}
        batch = PacketBatch.from_dicts([flow] * 32 + [{"a": 9}])
        cache.lookup_batch_columnar(batch)
        assert cache.misses == 33  # per-position, dict-path parity
        assert sorted(inserts) == [(7,), (9,)]  # per distinct row

    def test_eviction_keeps_sidecar_consistent(self, rule_set):
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table, capacity=4)
        trace = [
            dict(fields)
            for fields in zipf_workload(
                rule_set, packet_count=64, flow_count=32
            ).events[0][1]
        ]
        batch = PacketBatch.from_dicts(trace)
        cache.lookup_batch_columnar(batch)
        assert len(cache) <= 4
        assert len(cache._columnar) <= len(cache._entries)
        for record in cache._columnar.values():
            assert cache._entries[record.key] is record


class TestMixedPaths:
    def test_dict_warmed_cache_serves_columnar_without_table(self, rule_set):
        """A cache warmed by dict batches must serve columnar traffic
        from its records (promoted into the sidecar on first columnar
        touch), not re-resolve the working set through the table."""
        table = build_lookup_table(rule_set)
        cache = MicroflowCache(table)
        trace = zipf_workload(
            rule_set, packet_count=256, flow_count=16
        ).events[0][1]
        cache.lookup_batch(trace)  # dict-path warm-up
        lookups_before = table.lookup_count
        batch = PacketBatch.from_dicts(trace)
        outcomes = cache.lookup_batch_columnar(batch)
        assert table.lookup_count == lookups_before, (
            "columnar probe re-resolved dict-warmed keys through the table"
        )
        expected = [build_lookup_table(rule_set).lookup(f) for f in trace]
        for a, b in zip(outcomes, expected):
            assert (a is None) == (b is None)
        # Second columnar pass hits the promoted sidecar entries.
        misses_before = cache.misses
        cache.lookup_batch_columnar(batch)
        assert cache.misses == misses_before


class TestColumnarMegaflow:
    def test_probe_batch_standalone(self, rule_set):
        """The public probe surface: entries per position, bookkeeping
        done, no replay materialisation."""
        wide = widen_rule_set(rule_set)
        runner = BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(wide)]),
            cache_capacity=64,
            megaflow_capacity=128,
        )
        trace = uniform_wide_workload(
            wide, packet_count=200, flow_count=8
        ).events[0][1]
        batch = PacketBatch.from_dicts(trace)
        runner.process_batch(batch)  # populate aggregates
        megaflow = runner.megaflow
        hits_before = megaflow.hits
        entries = megaflow.probe_batch(batch)
        assert len(entries) == len(batch)
        hit_count = sum(entry is not None for entry in entries)
        assert hit_count > 0
        assert megaflow.hits == hits_before + hit_count
        for entry in entries:
            if entry is not None:
                assert entry.template.matched_entries
    def test_uniform_wide_equivalence(self, rule_set):
        wide = widen_rule_set(rule_set)
        workload = uniform_wide_workload(wide, packet_count=1500, flow_count=40)

        def runner():
            return BatchPipeline(
                MultiTableLookupArchitecture([build_lookup_table(wide)]),
                cache_capacity=256,
                megaflow_capacity=512,
            )

        dict_runner, col_runner = runner(), runner()
        dict_stats = run_workload(
            dict_runner, workload, batch_size=128, keep_results=True
        )
        col_stats = run_workload(
            col_runner, columnar_workload(workload), batch_size=128,
            keep_results=True,
        )
        assert len(dict_stats.results) == len(col_stats.results)
        for a, b in zip(dict_stats.results, col_stats.results):
            assert a.final_fields == b.final_fields
            assert a.output_ports == b.output_ports
            assert a.tables_visited == b.tables_visited
            assert a.applied_actions == b.applied_actions
            assert a.dropped == b.dropped
            assert a.sent_to_controller == b.sent_to_controller
            assert a.metadata == b.metadata
        assert dict_stats.megaflow_hits == col_stats.megaflow_hits
        assert dict_stats.megaflow_misses == col_stats.megaflow_misses
        assert dict_stats.flow_packets == col_stats.flow_packets
        assert dict_stats.flow_bytes == col_stats.flow_bytes
        assert (dict_stats.matched, dict_stats.dropped) == (
            col_stats.matched,
            col_stats.dropped,
        )

    def test_skip_materialisation_counters_identical(self, rule_set):
        """keep_results=False rides the no-materialisation path; every
        counter and flow stat still matches the materialising replay."""
        wide = widen_rule_set(rule_set)
        workload = columnar_workload(
            uniform_wide_workload(wide, packet_count=800, flow_count=32)
        )

        def replay(keep):
            runner = BatchPipeline(
                MultiTableLookupArchitecture([build_lookup_table(wide)]),
                cache_capacity=256,
                megaflow_capacity=512,
            )
            stats = run_workload(
                runner, workload, batch_size=96, keep_results=keep
            )
            entry_stats = sorted(
                (e.stats.packet_count, e.stats.byte_count)
                for table in runner.pipeline.tables
                for e in table
            )
            return stats, entry_stats

        kept, kept_entries = replay(True)
        skipped, skipped_entries = replay(False)
        assert kept_entries == skipped_entries
        for field in (
            "packets",
            "matched",
            "dropped",
            "sent_to_controller",
            "megaflow_hits",
            "megaflow_misses",
            "flow_packets",
            "flow_bytes",
        ):
            assert getattr(kept, field) == getattr(skipped, field), field

    def test_stale_aggregate_dropped_on_columnar_probe(self, rule_set):
        wide = widen_rule_set(rule_set)
        runner = BatchPipeline(
            MultiTableLookupArchitecture([build_lookup_table(wide)]),
            cache_capacity=64,
            megaflow_capacity=128,
        )
        workload = uniform_wide_workload(wide, packet_count=400, flow_count=16)
        trace = workload.events[0][1]
        runner.process_batch(PacketBatch.from_dicts(trace[:200]))
        assert runner.megaflow is not None and len(runner.megaflow)
        invalidated_before = runner.megaflow.invalidated
        # Any mutation bumps the visited table's version.
        table = runner.pipeline.tables[0]
        entry = next(iter(table))
        table.remove(entry.match, entry.priority)
        table.add(entry)
        runner.process_batch(PacketBatch.from_dicts(trace[200:]))
        assert runner.megaflow.invalidated > invalidated_before


# ----------------------------------------------------------------------
# microbenchmark
# ----------------------------------------------------------------------


def test_key_hash_microbench(rule_set):
    """Vectorized per-row hashing must beat per-packet tuple keying by a
    wide margin (loose 1.0x floor so CI scheduler noise cannot flake; the
    typical ratio is >10x)."""
    trace = zipf_workload(
        rule_set, packet_count=20_000, flow_count=256
    ).events[0][1]
    table = build_lookup_table(rule_set)
    cache = MicroflowCache(table)
    batch = PacketBatch.from_dicts(trace)
    names = cache.field_names

    start = time.perf_counter()
    tuple_keys = [cache.key(fields) for fields in trace]
    tuple_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    _, hashes, packed = batch.probe_keys(names)
    vector_elapsed = time.perf_counter() - start

    assert len(tuple_keys) == len(trace)
    assert len(hashes) == batch.rows and len(packed) == batch.rows
    ratio = tuple_elapsed / max(vector_elapsed, 1e-9)
    print(
        f"\nkey build: tuples {len(trace) / tuple_elapsed:,.0f}/s, "
        f"vectorized rows {batch.rows / vector_elapsed:,.0f}/s "
        f"({ratio:.1f}x per-packet cost)"
    )
    assert ratio > 1.0, f"vectorized hashing slower than tuples ({ratio:.2f}x)"
