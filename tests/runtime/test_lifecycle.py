"""Flow-entry lifecycle suite: virtual clock, expiry semantics, ledger
conservation.

Complements the differential property harness (which asserts the
*paths agree*) with pinned, human-readable claims about what the
lifecycle actually does: POX ``flow_table.py`` expiry parity (strict
``>`` deadlines, hard from install, idle from last touch, zero =
permanent, hard-before-idle reason precedence), ``touch_packet``
refreshing the idle timer, the conservation law tying every credited
packet to either a live entry or a flow-removed event, and the
revalidation pin — after an entry expires, traffic that used to hit it
must reach the controller, never a stale microflow/megaflow cache
line.

CI parses the junit output and fails if this file was skipped, so the
lifecycle coverage cannot silently rot out of the pipeline.
"""

from __future__ import annotations

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.actions import OutputAction
from repro.openflow.flow import UNSTAMPED, FlowEntry
from repro.openflow.instructions import ApplyActions
from repro.openflow.match import Match
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime import (
    BatchPipeline,
    LifecycleSweeper,
    ShardedBatchPipeline,
    VirtualClock,
    Workload,
    columnar_workload,
    run_workload,
)

SCHEMA = ("in_port",)
FRAME = 100


def _entry(port: int, priority: int = 1, idle: int = 0, hard: int = 0):
    return FlowEntry.build(
        match=Match.exact(in_port=port),
        priority=priority,
        instructions=[ApplyActions([OutputAction(1)])],
        idle_timeout=idle,
        hard_timeout=hard,
    )


def _pkt(port: int) -> dict[str, int]:
    return {"in_port": port, FRAME_LEN_FIELD: FRAME}


def _pipeline() -> MultiTableLookupArchitecture:
    return MultiTableLookupArchitecture(
        [OpenFlowLookupTable(SCHEMA, table_id=0)]
    )


class TestVirtualClock:
    def test_advance_returns_prev_and_now(self):
        clock = VirtualClock()
        assert clock.advance(3) == (0, 3)
        assert clock.advance(2) == (3, 5)
        assert clock.now == 5

    def test_zero_advance_allowed(self):
        clock = VirtualClock(now=7)
        assert clock.advance(0) == (7, 7)

    def test_rewind_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestPoxExpirySemantics:
    """Scalar parity with POX ``TableEntry.is_expired``."""

    def test_deadlines_are_strict(self):
        entry = _entry(0, idle=2, hard=5)
        entry.stats.installed_at = 0
        entry.stats.last_touched = 0
        assert not entry.is_expired(2)  # idle deadline itself: alive
        assert entry.is_expired(3)

    def test_hard_measured_from_install_despite_touches(self):
        entry = _entry(0, hard=3)
        entry.stats.installed_at = 0
        entry.touch_packet(byte_count=FRAME, now=3)  # touch can't help
        assert not entry.is_expired(3)
        assert entry.is_expired(4)

    def test_touch_packet_resets_idle_timer(self):
        entry = _entry(0, idle=2)
        entry.stats.installed_at = 0
        entry.stats.last_touched = 0
        assert entry.is_expired(3)
        entry.touch_packet(byte_count=FRAME, now=3)
        assert entry.stats.packet_count == 1
        assert entry.stats.byte_count == FRAME
        assert entry.last_touched == 3
        assert not entry.is_expired(5)  # deadline moved to 3 + 2
        assert entry.is_expired(6)

    def test_zero_timeout_is_permanent(self):
        entry = _entry(0)
        entry.stats.installed_at = 0
        entry.stats.last_touched = 0
        assert not entry.is_expired(10**9)

    def test_new_entries_start_unstamped(self):
        entry = _entry(0, idle=1)
        assert entry.installed_at == UNSTAMPED
        assert entry.last_touched == UNSTAMPED


class TestSweeper:
    def test_hard_wins_when_both_deadlines_passed(self):
        pipeline = _pipeline()
        entry = _entry(0, idle=1, hard=1)
        pipeline.table(0).add(entry)
        sweeper = LifecycleSweeper()
        assert sweeper.advance(pipeline, 1) == []  # stamps at prev=0
        removed = sweeper.advance(pipeline, 1)  # now=2 > both deadlines
        assert [event.reason for event in removed] == ["hard"]
        assert sweeper.stats.expired_hard == 1
        assert sweeper.stats.expired_idle == 0
        assert len(pipeline.table(0)) == 0

    def test_lazy_install_stamp_is_previous_tick(self):
        pipeline = _pipeline()
        sweeper = LifecycleSweeper()
        sweeper.advance(pipeline, 4)  # clock at 4
        entry = _entry(0, hard=2)
        pipeline.table(0).add(entry)
        assert sweeper.advance(pipeline, 1) == []  # stamped at prev=4
        assert entry.installed_at == 4
        removed = sweeper.advance(pipeline, 2)  # now=7 > 4 + 2
        assert [event.installed_at for event in removed] == [4]
        assert removed[0].removed_at == 7
        assert removed[0].duration == 3

    def test_fresh_twin_restarts_the_lifecycle(self):
        """A reinstalled (match, priority) twin is a *new* entry: zero
        counters, its own install stamp, its own deadlines."""
        pipeline = _pipeline()
        sweeper = LifecycleSweeper()
        original = _entry(3, idle=1)
        pipeline.table(0).add(original)
        sweeper.advance(pipeline, 2)  # original expires (installed 0)
        assert [e.packet_count for e in sweeper.ledger] == [0]
        twin = _entry(3, idle=1)
        pipeline.table(0).add(twin)
        assert sweeper.advance(pipeline, 1) == []  # stamped at prev=2
        assert twin.installed_at == 2
        removed = sweeper.advance(pipeline, 1)  # now=4 > 2 + 1
        assert [event.installed_at for event in removed] == [2]
        assert original.stats.packet_count == 0
        assert len(sweeper.ledger) == 2

    def test_ledger_counters_are_final(self):
        """Count-delta touch detection: traffic between sweeps refreshes
        the idle timer to the previous sweep's tick, and the removal
        event snapshots the entry's final counters."""
        pipeline = _pipeline()
        entry = _entry(0, idle=1)
        pipeline.table(0).add(entry)
        sweeper = LifecycleSweeper()
        sweeper.advance(pipeline, 1)  # stamp at 0, clock at 1
        entry.stats.record(FRAME)  # hot-path credit, no touch call
        entry.stats.record(FRAME)
        assert sweeper.advance(pipeline, 1) == []  # touched at 1, alive
        sweeper.sync()  # lanes buffer last_touched between sweeps
        assert entry.last_touched == 1
        removed = sweeper.advance(pipeline, 1)  # now=3 > 1 + 1
        assert [(e.reason, e.packet_count, e.byte_count) for e in removed] == [
            ("idle", 2, 2 * FRAME)
        ]


# ----------------------------------------------------------------------
# conservation across every runner path
# ----------------------------------------------------------------------

def _lifecycle_workload() -> Workload:
    """Every removal happens via expiry (no uninstall events), so the
    conservation law is exact: each credited packet is accounted for by
    a live entry or a flow-removed event, and each trace packet either
    credited an entry or went to the controller."""
    events = (
        ("install", 0, _entry(0)),  # permanent
        ("install", 0, _entry(1, idle=1)),
        ("install", 0, _entry(2, hard=2)),
        ("packets", [_pkt(0), _pkt(1), _pkt(2)] * 3),
        ("advance", 1),  # t=1: deadlines not strictly exceeded, all live
        ("packets", [_pkt(0), _pkt(1), _pkt(2)] * 2),
        ("advance", 2),  # t=3: idle (touched at 1) and hard (installed 0)
        ("packets", [_pkt(0), _pkt(1), _pkt(2)] * 2),  # flows 1, 2 miss
        ("advance", 1),
    )
    return Workload(
        name="lifecycle-conservation",
        description="mixed-timeout pool where only the sweeps remove",
        events=events,
    )


def _runners():
    return {
        "batched": lambda: BatchPipeline(_pipeline(), cache_capacity=None),
        "cached": lambda: BatchPipeline(_pipeline(), cache_capacity=16),
        "megaflow": lambda: BatchPipeline(
            _pipeline(), cache_capacity=16, megaflow_capacity=32
        ),
        "sharded-shm": lambda: ShardedBatchPipeline(
            _pipeline(),
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="shm",
            depth=3,
        ),
        "sharded-pickle": lambda: ShardedBatchPipeline(
            _pipeline(),
            workers=2,
            cache_capacity=16,
            megaflow_capacity=32,
            transport="pickle",
        ),
    }


class TestConservation:
    @pytest.mark.parametrize("columnar", [False, True], ids=["dict", "columnar"])
    @pytest.mark.parametrize("name", sorted(_runners()))
    def test_packets_conserved_on_every_path(self, name, columnar):
        # The workload is rebuilt per replay: install events carry the
        # mutable entry objects, so replaying one workload object twice
        # would leak the first run's counters into the second.
        workload = _lifecycle_workload()
        if columnar:
            workload = columnar_workload(workload)
        runner = _runners()[name]()
        try:
            stats = run_workload(runner, workload, batch_size=4)
            live = (
                runner._authoritative
                if isinstance(runner, ShardedBatchPipeline)
                else runner.pipeline
            )
            assert stats.packets == 21
            assert stats.expired == 2
            assert [e.reason for e in stats.flow_removed] == ["idle", "hard"]
            # Final counters on the removal events: 3 + 2 packets each.
            assert [e.packet_count for e in stats.flow_removed] == [5, 5]
            assert [e.byte_count for e in stats.flow_removed] == [
                5 * FRAME,
                5 * FRAME,
            ]
            # Conservation: every credited packet is in a live entry or
            # a removal event, and every trace packet either credited
            # exactly one entry (single table) or reached the
            # controller after its flow expired.
            ledger_packets = sum(e.packet_count for e in stats.flow_removed)
            ledger_bytes = sum(e.byte_count for e in stats.flow_removed)
            assert stats.flow_packets == 17
            assert stats.matched == stats.flow_packets
            assert stats.sent_to_controller == 4
            assert stats.packets == stats.matched + stats.sent_to_controller
            assert stats.flow_bytes == stats.flow_packets * FRAME
            live_entries = live.table(0).entries_snapshot()
            assert len(live_entries) == 1  # only the permanent flow
            live_packets = sum(e.stats.packet_count for e in live_entries)
            live_bytes = sum(e.stats.byte_count for e in live_entries)
            assert live_packets + ledger_packets == stats.flow_packets
            assert live_bytes + ledger_bytes == stats.flow_bytes
        finally:
            if isinstance(runner, ShardedBatchPipeline):
                runner.close()

    def test_ledgers_identical_across_paths(self):
        ledgers = {}
        for name, factory in _runners().items():
            runner = factory()
            try:
                stats = run_workload(
                    runner, _lifecycle_workload(), batch_size=4
                )
            finally:
                if isinstance(runner, ShardedBatchPipeline):
                    runner.close()
            ledgers[name] = stats.flow_removed
        reference = ledgers["batched"]
        assert len(reference) == 2
        for name, ledger in ledgers.items():
            assert ledger == reference, name


class TestRevalidationPin:
    def test_expired_flow_must_miss_the_caches(self):
        """The pin the two-tier runner earns its keep on: packets that
        warmed the microflow and megaflow tiers before their entry
        expired must go to the controller afterwards — an expiry is a
        table-version bump like any uninstall, and stale cache lines
        must not keep a dead flow alive."""
        runner = BatchPipeline(
            _pipeline(), cache_capacity=16, megaflow_capacity=32
        )
        runner.pipeline.table(0).add(_entry(5, idle=1))
        warm = runner.process_batch([_pkt(5), _pkt(5), _pkt(5)])
        assert all(not r.sent_to_controller for r in warm)
        removed = runner.advance_clock(2)  # idle deadline 0 + 1 < 2
        assert [e.reason for e in removed] == ["idle"]
        cold = runner.process_batch([_pkt(5), _pkt(5)])
        assert all(r.sent_to_controller for r in cold)
        assert removed[0].packet_count == 3  # final counters, frozen
