"""Open-loop streaming front-end: bounded admission, backpressure,
deterministic shedding and the conservation law.

Unit coverage for the arrival builders, :class:`AdmissionQueue`,
:class:`StreamConfig` validation and the degradation ladder, then
end-to-end :func:`run_stream` runs asserting the conservation law
(``admitted == completed + shed``, packets and bytes), determinism
(identical shed ledgers / latency stamps across reruns) and path
equivalence: the single-process, sharded-shm-pipelined and columnar
paths must produce bitwise-identical stream reports.
"""

from pathlib import Path

import pytest

from repro.runtime import (
    ARRIVALS,
    AdmissionQueue,
    BatchPipeline,
    ShardedBatchPipeline,
    StreamConfig,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    run_stream,
)
from repro.runtime.streaming import _Ladder

from tests.runtime.test_shard import make_arch

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)

#: A config under which the bursty schedule below genuinely overloads:
#: the declared service rate is far below the offered load, so the
#: admission queue fills, tail-drops and climbs the ladder.
OVERLOAD = StreamConfig(
    capacity=64,
    batch_size=16,
    form_deadline=8,
    window=2,
    service_rate=0.5,
    degrade_after=2,
)


def overload_schedule(rule_set, packet_count=900):
    return bursty_arrivals(
        rule_set, packet_count=packet_count, mean_burst=24.0,
        burst_gap=16.0, seed=11,
    )


class TestArrivalSchedules:
    @pytest.mark.parametrize("name", sorted(ARRIVALS))
    def test_seeded_and_replayable(self, small_routing_set, name):
        build = ARRIVALS[name]
        a = build(small_routing_set, packet_count=64, seed=9)
        b = build(small_routing_set, packet_count=64, seed=9)
        assert a.events == b.events
        assert a.packet_count == 64
        assert a.byte_count > 0
        assert {event[0] for event in a.events} <= {"advance", "packet"}
        assert all(
            event[1] > 0 for event in a.events if event[0] == "advance"
        )
        other = build(small_routing_set, packet_count=64, seed=10)
        assert other.events != a.events

    def test_bursty_packs_same_tick_bursts(self, small_routing_set):
        schedule = bursty_arrivals(
            small_routing_set, packet_count=128, mean_burst=8.0, seed=3
        )
        kinds = [event[0] for event in schedule.events]
        # At least one burst: two packets with no advance between them.
        assert any(
            a == b == "packet" for a, b in zip(kinds, kinds[1:])
        )

    def test_offered_load_reflects_gap(self, small_routing_set):
        dense = poisson_arrivals(
            small_routing_set, packet_count=128, mean_gap=2.0, seed=4
        )
        sparse = poisson_arrivals(
            small_routing_set, packet_count=128, mean_gap=16.0, seed=4
        )
        assert dense.offered_load > sparse.offered_load
        assert dense.duration < sparse.duration

    def test_builder_validation(self, small_routing_set):
        with pytest.raises(ValueError):
            poisson_arrivals(small_routing_set, mean_gap=0)
        with pytest.raises(ValueError):
            bursty_arrivals(small_routing_set, mean_burst=0.5)
        with pytest.raises(ValueError):
            bursty_arrivals(small_routing_set, burst_gap=0)
        with pytest.raises(ValueError):
            diurnal_arrivals(small_routing_set, amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal_arrivals(small_routing_set, base_gap=0)
        with pytest.raises(ValueError):
            diurnal_arrivals(small_routing_set, period=1)


class TestAdmissionQueue:
    def test_capacity_is_hard(self):
        queue = AdmissionQueue(capacity=3)
        records = [
            queue.offer(i, {"f": i, "frame_len": 100}, tick=0)
            for i in range(5)
        ]
        assert records[:3] == [None, None, None]
        assert [r.reason for r in records[3:]] == ["tail", "tail"]
        assert [r.index for r in records[3:]] == [3, 4]
        assert len(queue) == 3
        assert queue.peak_occupancy == 3

    def test_fifo_take(self):
        queue = AdmissionQueue(capacity=8)
        for i in range(5):
            queue.offer(i, {"f": i}, tick=i)
        taken = queue.take(3)
        assert [entry.index for entry in taken] == [0, 1, 2]
        assert queue.head_enqueue_tick == 3
        assert [entry.index for entry in queue.take(10)] == [3, 4]
        assert queue.head_enqueue_tick is None

    def test_deadline_expiry_sheds_aged_head(self):
        queue = AdmissionQueue(capacity=8, policy="deadline", deadline=4)
        queue.offer(0, {"f": 0}, tick=0)   # deadline tick 4
        queue.offer(1, {"f": 1}, tick=3)   # deadline tick 7
        assert queue.expire(4) == []       # at the deadline: still live
        shed = queue.expire(5)
        assert [record.index for record in shed] == [0]
        assert [record.reason for record in shed] == ["deadline"]
        assert len(queue) == 1
        assert queue.expire(20)[0].index == 1

    def test_tail_policy_never_expires(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer(0, {"f": 0}, tick=0)
        assert queue.expire(10_000) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4, policy="random-early")
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=4, policy="deadline")


class TestStreamConfig:
    def test_defaults_valid(self):
        StreamConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"form_deadline": 0},
            {"window": 0},
            {"service_rate": 0},
            {"service_rate": -1.0},
            {"degrade_after": 0},
            {"low_watermark": 0.8, "high_watermark": 0.5},
            {"low_watermark": 0.0},
            {"high_watermark": 1.5},
            {"shed_target": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)

    def test_service_burst_is_one_window(self):
        cfg = StreamConfig(batch_size=16, window=3)
        assert cfg.service_burst == 48.0


class TestLadder:
    def test_climbs_after_sustained_overload(self):
        cfg = StreamConfig(capacity=100, degrade_after=2)
        ladder = _Ladder(cfg)
        for tick in range(1, 7):
            ladder.step(occupancy=80, tick=tick)  # >= high watermark 75
        assert ladder.level == 3
        assert ladder.max_level == 3
        assert [level for _, level in ladder.transitions] == [1, 2, 3]
        assert ladder.bypass_megaflow and ladder.shedding

    def test_hysteresis_holds_between_watermarks(self):
        cfg = StreamConfig(capacity=100, degrade_after=1)
        ladder = _Ladder(cfg)
        ladder.step(occupancy=80, tick=1)
        assert ladder.level == 1
        ladder.step(occupancy=50, tick=2)  # between the watermarks
        assert ladder.streak == 1 and ladder.level == 1
        ladder.step(occupancy=10, tick=3)  # below low watermark: reset
        assert ladder.streak == 0 and ladder.level == 0

    def test_rung_one_halves_form_deadline(self):
        cfg = StreamConfig(capacity=100, form_deadline=8, degrade_after=1)
        ladder = _Ladder(cfg)
        assert ladder.form_deadline == 8
        ladder.step(occupancy=90, tick=1)
        assert ladder.form_deadline == 4


class TestRunStream:
    def test_underload_sheds_nothing(self, small_routing_set):
        schedule = poisson_arrivals(
            small_routing_set, packet_count=300, mean_gap=4.0, seed=7
        )
        report = run_stream(
            BatchPipeline(make_arch(small_routing_set)),
            schedule,
            StreamConfig(capacity=256, batch_size=32, window=4),
        )
        report.assert_conserved()
        assert report.shed_packets == 0
        assert report.max_level == 0
        assert report.completed_packets == schedule.packet_count
        assert report.completed_bytes == schedule.byte_count
        assert len(report.results) == len(report.latencies)
        assert report.p50 <= report.p99 <= report.p999

    def test_overload_sheds_deterministically(self, small_routing_set):
        schedule = overload_schedule(small_routing_set)
        first = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, OVERLOAD
        )
        first.assert_conserved()
        assert first.shed_packets > 0
        assert first.shed_by_reason["tail"] > 0
        assert first.peak_occupancy <= OVERLOAD.capacity
        assert first.max_level >= 1
        again = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, OVERLOAD
        )
        assert again.shed == first.shed
        assert again.latencies == first.latencies
        assert again.transitions == first.transitions
        assert again.batches == first.batches

    def test_ladder_reaches_admission_shedding(self, small_routing_set):
        schedule = overload_schedule(small_routing_set)
        report = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, OVERLOAD
        )
        assert report.max_level == 3
        assert report.shed_by_reason["degrade"] > 0

    def test_deadline_policy_sheds_by_deadline(self, small_routing_set):
        schedule = overload_schedule(small_routing_set)
        cfg = StreamConfig(
            capacity=64,
            batch_size=16,
            form_deadline=8,
            window=2,
            policy="deadline",
            deadline=24,
            service_rate=0.5,
        )
        report = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, cfg
        )
        report.assert_conserved()
        assert report.shed_by_reason["deadline"] > 0

    def test_megaflow_bypass_rung_skips_capture(self, small_routing_set):
        """Under sustained rung-2+ overload the megaflow tier sees no
        install traffic for bypassed batches — but classification
        results are identical to a fault-free, non-degraded run."""
        schedule = overload_schedule(small_routing_set)
        degraded_runner = BatchPipeline(make_arch(small_routing_set))
        degraded = run_stream(degraded_runner, schedule, OVERLOAD)
        assert degraded.max_level >= 2
        # Reference: unlimited service, nothing shed, no degradation.
        reference = run_stream(
            BatchPipeline(make_arch(small_routing_set)),
            schedule,
            StreamConfig(capacity=2048, batch_size=16, window=2),
        )
        assert reference.max_level == 0
        completed = dict(zip([i for i, _ in degraded.latencies],
                             degraded.results))
        full = dict(zip([i for i, _ in reference.latencies],
                        reference.results))
        for index, result in completed.items():
            assert result_key(result) == result_key(full[index])

    def test_bypass_flag_always_restored(self, small_routing_set):
        runner = BatchPipeline(make_arch(small_routing_set))
        run_stream(runner, overload_schedule(small_routing_set), OVERLOAD)
        assert runner.megaflow_bypass is False

    def test_unknown_event_kind_rejected(self, small_routing_set):
        from repro.runtime.streaming import ArrivalSchedule

        bogus = ArrivalSchedule("bogus", "", (("tick", 1),))
        with pytest.raises(ValueError):
            run_stream(
                BatchPipeline(make_arch(small_routing_set)), bogus
            )


def result_key(result):
    """A comparable identity for one PipelineResult (the same fields
    :func:`tests.runtime.test_differential_properties.assert_same_result`
    checks, flattened into a tuple)."""
    return (
        tuple(result.output_ports),
        result.sent_to_controller,
        result.dropped,
        result.metadata,
        tuple(result.tables_visited),
        tuple(sorted(result.final_fields.items())),
        tuple((str(e.match), e.priority) for e in result.matched_entries),
        tuple(map(str, result.applied_actions)),
    )


def report_fingerprint(report):
    """Every deterministic field of a stream report, for bitwise
    cross-path comparison (results compared via their public attrs)."""
    return (
        report.admitted_packets,
        report.admitted_bytes,
        report.completed_packets,
        report.completed_bytes,
        report.shed,
        report.latencies,
        report.batches,
        report.peak_occupancy,
        report.duration,
        report.max_level,
        report.transitions,
        tuple(result_key(result) for result in report.results),
    )


@needs_dev_shm
class TestPathEquivalence:
    """The streaming layer is transport-independent: inline, sharded
    shm-pipelined and columnar runs of the same (seed, schedule,
    config) produce identical reports — stalls excepted, since only
    the pipelined transport exerts window backpressure."""

    def test_reports_identical_across_paths(self, small_routing_set):
        schedule = overload_schedule(small_routing_set, packet_count=600)
        columnar = StreamConfig(
            **{**OVERLOAD.__dict__, "columnar": True}
        )
        inline = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, OVERLOAD
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=4
        ) as sharded_runner:
            sharded = run_stream(sharded_runner, schedule, OVERLOAD)
        inline_col = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, columnar
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=4
        ) as sharded_col_runner:
            sharded_col = run_stream(sharded_col_runner, schedule, columnar)
        reports = [inline, sharded, inline_col, sharded_col]
        for report in reports:
            report.assert_conserved()
        prints = [report_fingerprint(report) for report in reports]
        assert prints[0] == prints[1], "inline vs sharded diverge"
        assert prints[0] == prints[2], "inline vs columnar diverge"
        assert prints[0] == prints[3], "inline vs sharded columnar diverge"

    def test_window_backpressure_stalls(self, small_routing_set):
        """Bursts wider than the in-flight window force FIFO collects
        (stalls) on the sharded path — without perturbing the latency
        stamps, which stay identical to the inline run."""
        schedule = bursty_arrivals(
            small_routing_set, packet_count=400, mean_burst=80.0,
            burst_gap=32.0, seed=5,
        )
        cfg = StreamConfig(capacity=256, batch_size=16, window=2)
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=4
        ) as runner:
            sharded = run_stream(runner, schedule, cfg)
        inline = run_stream(
            BatchPipeline(make_arch(small_routing_set)), schedule, cfg
        )
        assert sharded.stalls > 0
        assert inline.stalls == 0
        assert sharded.latencies == inline.latencies
        assert sharded.shed == inline.shed
