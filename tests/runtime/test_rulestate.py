"""Shared read-only rule state (:mod:`repro.runtime.rulestate`):
seal/attach equivalence, attach-after-seal immutability, crash-safety of
the /dev/shm lifecycle, and bitwise-identical re-seals under churn."""

import gc
import os
import pickle
import signal
from multiprocessing import get_context
from pathlib import Path

import pytest

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import Match
from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    PipelineSpec,
    ShardedBatchPipeline,
    run_workload,
)
from repro.runtime.rulestate import FrozenLookupTable, SharedRuleState

from tests.runtime.test_megaflow import assert_same_result
from tests.runtime.test_shard import _shm_segments, make_arch

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)


def seal(rule_set):
    """An authoritative pipeline plus its sealed state and spec."""
    arch = make_arch(rule_set)
    spec = PipelineSpec.snapshot(arch)
    state = SharedRuleState.seal(arch, spec)
    return arch, state


def probes(rule_set, count=200):
    workload = SCENARIOS["zipf"](rule_set, packet_count=count, flow_count=10)
    return workload.events[0][1]


class TestSealAttach:
    def test_replica_classifies_identically(self, small_routing_set):
        arch, state = seal(small_routing_set)
        try:
            replica = state.spec.build()
            table = replica.tables[0]
            assert isinstance(table, FrozenLookupTable)
            assert len(table) == len(arch.tables[0])
            for fields in probes(small_routing_set):
                assert_same_result(
                    replica.process(dict(fields)), arch.process(dict(fields))
                )
        finally:
            state.close()

    def test_spec_round_trips_without_entries(self, small_routing_set):
        """The shared spec pickles O(1) in rules: lookup-table entry
        tuples are stripped (the blob lives in the block), and a
        pickle round trip — the worker bootstrap path — still builds a
        working replica."""
        arch, state = seal(small_routing_set)
        try:
            for table_spec in state.spec.tables:
                if table_spec.kind == "lookup":
                    assert table_spec.entries == ()
            replica = pickle.loads(pickle.dumps(state.spec)).build()
            fields = dict(probes(small_routing_set, count=1)[0])
            assert_same_result(replica.process(fields), arch.process(fields))
        finally:
            state.close()

    def test_entries_snapshot_preserves_install_order(
        self, small_routing_set
    ):
        """Sealed positions are the authoritative iteration order — the
        contract the parent's pinned flow-stats snapshots rely on."""
        arch, state = seal(small_routing_set)
        try:
            replica = state.spec.build()
            table, frozen = arch.tables[0], replica.tables[0]
            assert [e.match for e in frozen.entries_snapshot()] == [
                e.match for e in table.entries_snapshot()
            ]
            for position, entry in enumerate(frozen.entries_snapshot()):
                assert frozen.entry_position(entry) == position
        finally:
            state.close()


class TestImmutability:
    def test_frozen_arrays_reject_writes(self, small_routing_set):
        _, state = seal(small_routing_set)
        try:
            table = state.spec.build().tables[0]
            for owner, name in (
                (table.actions, "_positions"),
                (table.index, "_final"),
                (table.index, "_priority"),
            ):
                array = getattr(owner, name)
                with pytest.raises(ValueError, match="read-only"):
                    array[0] = 1
            # Don't let raw views (or their owners) outlive the table's
            # attachment handles: frame locals tear down in unspecified
            # order, and an exported view makes SharedMemory.__del__
            # noisy.
            del array, owner
        finally:
            state.close()

    def test_mutation_thaws_without_touching_siblings(
        self, small_routing_set
    ):
        """add() on one attached replica thaws that replica only: the
        sibling keeps its frozen mapping and still matches the
        authoritative table bit for bit."""
        arch, state = seal(small_routing_set)
        try:
            thawed = state.spec.build()
            sibling = state.spec.build()
            entry = FlowEntry.build(
                match=Match.exact(in_port=3),
                priority=999,
                instructions=[WriteActions([OutputAction(42)])],
            )
            before = len(sibling.tables[0])
            thawed.tables[0].add(entry)
            assert not thawed.tables[0]._frozen
            assert sibling.tables[0]._frozen
            assert len(thawed.tables[0]) == before + 1
            assert len(sibling.tables[0]) == before
            for fields in probes(small_routing_set, count=50):
                assert_same_result(
                    sibling.process(dict(fields)), arch.process(dict(fields))
                )
            # The thawed replica diverged exactly by the new entry.
            hit = thawed.process({"in_port": 3})
            assert 42 in hit.output_ports
        finally:
            state.close()


def _attach_then_die(spec) -> None:
    """Child target: attach to the sealed block, classify one packet,
    then die without any cleanup (``SIGKILL`` skips finalizers) — the
    stand-in for a worker crashing while mapped."""
    replica = spec.build()
    replica.process({"in_port": 1, "ipv4_dst": 0x0A000001})
    os.kill(os.getpid(), signal.SIGKILL)


@needs_dev_shm
class TestShmLifecycle:
    def test_seal_close_leaves_no_segments(self, small_routing_set):
        before = _shm_segments()
        _, state = seal(small_routing_set)
        replica = state.spec.build()
        replica.process({"in_port": 1, "ipv4_dst": 1})
        del replica
        gc.collect()
        state.close()
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_crashed_attacher_leaves_no_segments(self, small_routing_set):
        """A SIGKILLed attacher unlinks nothing itself; the owner's
        close() (or finalizer) must still leave /dev/shm clean — the
        PR-7 crash-recovery path depends on exactly this."""
        before = _shm_segments()
        _, state = seal(small_routing_set)
        child = get_context("fork").Process(
            target=_attach_then_die, args=(state.spec,)
        )
        child.start()
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL
        state.close()
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_abandoned_state_unlinks_via_finalizer(self, small_routing_set):
        before = _shm_segments()
        _, state = seal(small_routing_set)
        del state
        gc.collect()
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"


class TestResealUnderChurn:
    def entry(self, port: int, priority: int) -> FlowEntry:
        return FlowEntry.build(
            match=Match.exact(in_port=port),
            priority=priority,
            instructions=[WriteActions([OutputAction(100 + port)])],
        )

    def test_reseal_after_log_fold_is_bitwise_identical(
        self, small_routing_set
    ):
        """The shared-rules twin of the mutation-log prune test: once
        every worker catches up, the fold point re-seals a fresh block
        (new name, old one unlinked) and classification stays identical
        to the single-process runner throughout."""
        probe = [
            {"in_port": p, "ipv4_dst": d} for p in range(4) for d in (1, 2, 3)
        ]
        single = BatchPipeline(make_arch(small_routing_set))

        def churn(runner):
            entry = self.entry(7, priority=999)
            for _ in range(550):
                runner.pipeline.table(0).add(entry)
                runner.pipeline.table(0).remove(entry.match, entry.priority)

        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, shared_rules=True
        ) as sharded:
            first_block = sharded._rule_state.layout.block_name
            churn(sharded)
            churn(single)
            assert len(sharded._log) == 1100
            got = sharded.process_batch(probe)
            expected = single.process_batch(probe)
            for a, b in zip(got, expected):
                assert_same_result(a, b)
            got = sharded.process_batch(probe)  # prune + re-seal point
            expected = single.process_batch(probe)
            assert len(sharded._log) == 0
            assert sharded._rule_state.layout.block_name != first_block
            for a, b in zip(got, expected):
                assert_same_result(a, b)
            # Close-and-reuse re-seals from the folded snapshot.
            sharded.close()
            got = sharded.process_batch(probe)
            expected = single.process_batch(probe)
            for a, b in zip(got, expected):
                assert_same_result(a, b)

    @needs_dev_shm
    def test_reseal_churn_leaves_no_segments(self, small_routing_set):
        before = _shm_segments()
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, shared_rules=True
        ) as sharded:
            workload = SCENARIOS["churn"](
                small_routing_set, packet_count=120, flow_count=8
            )
            run_workload(sharded, workload, batch_size=20)
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"


class TestSharedScenarioDifferential:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_shared_rules_match_single_process(
        self, small_routing_set, name
    ):
        """Every scenario in the catalog, classified by shared-state
        workers, must equal the single-process runner bit for bit —
        flow stats included."""
        workload = SCENARIOS[name](
            small_routing_set, packet_count=200, flow_count=12
        )
        single = BatchPipeline(
            make_arch(small_routing_set),
            cache_capacity=128,
            megaflow_capacity=256,
        )
        expected = run_workload(
            single, workload, batch_size=50, keep_results=True
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            cache_capacity=128,
            megaflow_capacity=256,
            shared_rules=True,
        ) as sharded:
            got = run_workload(
                sharded, workload, batch_size=50, keep_results=True
            )
            assert sharded.flow_packets == single.flow_packets
            assert sharded.flow_bytes == single.flow_bytes
        assert len(got.results) == len(expected.results)
        for a, b in zip(got.results, expected.results):
            assert_same_result(a, b)
