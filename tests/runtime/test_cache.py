"""Microflow-cache behaviour: LRU bounds, invalidation, negative hits."""

import pytest

from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.table import FlowTable
from repro.runtime.cache import MicroflowCache


def entry(port: int, priority: int = 1) -> FlowEntry:
    return FlowEntry.build(match=Match.exact(in_port=port), priority=priority)


@pytest.fixture()
def table() -> OpenFlowLookupTable:
    table = OpenFlowLookupTable(("in_port",))
    for port in range(8):
        table.add(entry(port))
    return table


class TestBasics:
    def test_hit_after_miss(self, table):
        cache = MicroflowCache(table)
        first = cache.lookup({"in_port": 3})
        second = cache.lookup({"in_port": 3})
        assert first is second is not None
        assert cache.misses == 1 and cache.hits == 1

    def test_negative_caching(self, table):
        cache = MicroflowCache(table)
        assert cache.lookup({"in_port": 99}) is None
        assert cache.lookup({"in_port": 99}) is None
        assert cache.hits == 1

    def test_hit_records_flow_stats(self, table):
        cache = MicroflowCache(table)
        hit = cache.lookup({"in_port": 2})
        cache.lookup({"in_port": 2})
        assert hit.stats.packet_count == 2

    def test_capacity_bounds_lru(self, table):
        cache = MicroflowCache(table, capacity=2)
        for port in range(5):
            cache.lookup({"in_port": port})
        assert len(cache) == 2
        # Least-recently-used keys were evicted; the last two remain.
        cache.lookup({"in_port": 4})
        assert cache.hits == 1

    def test_flow_table_backend(self):
        backing = FlowTable()
        backing.add(entry(1))
        cache = MicroflowCache(backing, field_names=("in_port",))
        assert cache.lookup({"in_port": 1}) is not None
        assert cache.lookup({"in_port": 1}) is not None
        assert cache.hits == 1

    def test_schema_required(self):
        with pytest.raises(ValueError):
            MicroflowCache(FlowTable())

    def test_version_counter_required(self):
        class VersionlessTable:
            field_names = ("in_port",)

            def lookup(self, fields):
                return None

        with pytest.raises(ValueError, match="version"):
            MicroflowCache(VersionlessTable())

    def test_positive_capacity_required(self, table):
        with pytest.raises(ValueError):
            MicroflowCache(table, capacity=0)


class TestInvalidation:
    def test_add_revalidates_stale_entry(self, table):
        cache = MicroflowCache(table)
        assert cache.lookup({"in_port": 1}).priority == 1
        table.add(entry(1, priority=9))
        assert cache.lookup({"in_port": 1}).priority == 9
        # The stale record was refreshed in place, not flushed away.
        assert cache.flushes == 0
        assert cache.revalidations == 1

    def test_mutation_keeps_working_set(self, table):
        cache = MicroflowCache(table)
        for port in range(4):
            cache.lookup({"in_port": port})
        table.add(entry(99))
        # The keys survive the version bump; each revalidates on touch.
        assert len(cache) == 4
        assert cache.lookup({"in_port": 2}) is not None
        assert cache.revalidations == 1

    def test_remove_invalidates(self, table):
        cache = MicroflowCache(table)
        assert cache.lookup({"in_port": 1}) is not None
        table.remove(Match.exact(in_port=1), 1)
        assert cache.lookup({"in_port": 1}) is None

    def test_remove_where_invalidates(self, table):
        cache = MicroflowCache(table)
        assert cache.lookup_batch([{"in_port": p} for p in range(4)]) != []
        table.remove_where(lambda e: True)
        assert cache.lookup_batch([{"in_port": 1}]) == [None]

    def test_negative_entry_invalidated_by_install(self, table):
        cache = MicroflowCache(table)
        assert cache.lookup({"in_port": 50}) is None
        table.add(entry(50))
        assert cache.lookup({"in_port": 50}) is not None


class TestBatch:
    def test_batch_mixes_hits_and_misses(self, table):
        cache = MicroflowCache(table)
        cache.lookup({"in_port": 0})
        results = cache.lookup_batch(
            [{"in_port": 0}, {"in_port": 1}, {"in_port": 0}, {"in_port": 99}]
        )
        assert [r is not None for r in results] == [True, True, True, False]
        assert cache.hits >= 2  # the two {"in_port": 0} repeats
