"""Chaos harness for the fault-tolerant shard runtime.

Seeded :class:`FaultPlan` schedules kill, hang and delay workers at
named serve-loop steps; every recovery path — respawn + deterministic
replay, wedge escalation, poison-batch quarantine, budget-exhausted
degradation — must leave results, per-entry flow stats and /dev/shm
bitwise-indistinguishable from a run with immortal workers.

The targeted-fault tests route packets to workers by a synthetic
``shard_key`` field (outside every rule's match, so classification is
unaffected) — the faulted worker is guaranteed traffic for the faulted
seq; the seeded differential runs the normal hash sharding.

CI runs this file explicitly (the tier-1 junit guard) so the chaos
coverage cannot silently rot out of the pipeline.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    FaultPlan,
    FaultSpec,
    PoisonBatchError,
    ShardedBatchPipeline,
    StreamConfig,
    SupervisionConfig,
    WorkerCrashError,
    bursty_arrivals,
    run_stream,
    run_workload,
)
from repro.runtime.faults import HANG_SECONDS, STEPS

from tests.runtime.test_megaflow import assert_same_result
from tests.runtime.test_shard import _shm_segments, make_arch

needs_dev_shm = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, workers=3, seqs=range(8), faults=3)
        b = FaultPlan.seeded(7, workers=3, seqs=range(8), faults=3)
        assert a == b
        assert len(a.specs) == 3
        assert a

    def test_seeded_clamps_to_population(self):
        plan = FaultPlan.seeded(
            1, workers=1, seqs=[0], steps=("mid-classify",), faults=50
        )
        assert len(plan.specs) == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(worker=0, seq=0, step="nope", action="crash")
        with pytest.raises(ValueError):
            FaultSpec(worker=0, seq=0, step=STEPS[0], action="explode")

    def test_pruned_drops_fired_keeps_sticky_and_others(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(0, 0, "mid-classify", "crash"),
                FaultSpec(0, 0, "after-stats", "crash", sticky=True),
                FaultSpec(0, 5, "mid-classify", "crash"),
                FaultSpec(1, 0, "mid-classify", "crash"),
            )
        )
        kept = plan.pruned(worker=0, up_to_seq=0).specs
        assert FaultSpec(0, 0, "mid-classify", "crash") not in kept
        assert FaultSpec(0, 0, "after-stats", "crash", sticky=True) in kept
        assert FaultSpec(0, 5, "mid-classify", "crash") in kept
        assert FaultSpec(1, 0, "mid-classify", "crash") in kept

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()


def _entry_counts(entries):
    return sorted(
        (str(e.match), e.priority, e.stats.packet_count, e.stats.byte_count)
        for e in entries
    )


class _RoutedSharded(ShardedBatchPipeline):
    """Packets go to the worker named by their ``shard_key`` field."""

    def shard_of(self, packet_fields):
        return packet_fields.get("shard_key", 0) % self.workers


def routed_batches(rule_set, sizes, workers=2):
    """One batch per size; batch i's packets all carry
    ``shard_key = i % workers``, pinning it to that worker under
    :class:`_RoutedSharded` without perturbing any matched field."""
    workload = SCENARIOS["zipf"](
        rule_set, packet_count=sum(sizes), flow_count=8
    )
    trace = workload.events[0][1]
    batches = []
    cursor = 0
    for index, size in enumerate(sizes):
        batches.append(
            [
                dict(fields, shard_key=index % workers)
                for fields in trace[cursor : cursor + size]
            ]
        )
        cursor += size
    return batches


class _FaultRun:
    """Drive the same handcrafted batches through a single-process
    reference and a routed sharded runner under a fault plan, then
    compare results and per-entry flow counters bitwise."""

    def __init__(self, rule_set, sizes, plan, workers=2, **kwargs):
        self.batches = routed_batches(rule_set, sizes, workers=workers)
        ref_arch = make_arch(rule_set)
        self.ref_entries = list(ref_arch.tables[0])
        single = BatchPipeline(
            ref_arch, cache_capacity=64, megaflow_capacity=128
        )
        self.expected = [single.process_batch(b) for b in self.batches]
        arch = make_arch(rule_set)
        self.entries = list(arch.tables[0])
        self.sharded = _RoutedSharded(
            arch,
            workers=workers,
            cache_capacity=64,
            megaflow_capacity=128,
            fault_plan=plan,
            **kwargs,
        )

    def run_and_compare(self):
        with self.sharded:
            for batch, expected in zip(self.batches, self.expected):
                got = self.sharded.process_batch(batch)
                for a, b in zip(got, expected):
                    assert_same_result(a, b)
            snapshot = self.sharded.supervision_snapshot()
            # close() resets per-run supervisor state; capture first.
            self.disabled = set(self.sharded._supervisor.disabled)
        ref_counts = _entry_counts(self.ref_entries)
        # Guard against a vacuous comparison: the trace must actually
        # hit rules, or the per-entry check proves nothing.
        assert sum(count[2] for count in ref_counts) > 0
        assert _entry_counts(self.entries) == ref_counts
        return snapshot


@needs_dev_shm
class TestCrashRecovery:
    """SIGKILL faults: detection via the process sentinel, respawn,
    deterministic replay, crash-safe shm cleanup."""

    @pytest.mark.parametrize("shared_rules", [False, True])
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_seeded_chaos_differential(
        self, small_routing_set, seed, shared_rules
    ):
        """The acceptance run: a seeded plan SIGKILLs workers at random
        steps mid-churn; results, stats, per-entry counters and
        /dev/shm must match the single-process run exactly — with and
        without the shared sealed rule state (respawned workers attach
        to the block instead of rebuilding, then replay the log)."""
        workload = SCENARIOS["churn"](
            small_routing_set, packet_count=200, flow_count=12
        )
        ref_arch = make_arch(small_routing_set)
        ref_entries = list(ref_arch.tables[0])
        single = BatchPipeline(
            ref_arch, cache_capacity=64, megaflow_capacity=128
        )
        expected = run_workload(
            single, workload, batch_size=25, keep_results=True
        )
        plan = FaultPlan.seeded(seed, workers=3, seqs=range(8), faults=2)
        before = _shm_segments()
        arch = make_arch(small_routing_set)
        entries = list(arch.tables[0])
        with ShardedBatchPipeline(
            arch,
            workers=3,
            cache_capacity=64,
            megaflow_capacity=128,
            depth=3,
            fault_plan=plan,
            shared_rules=shared_rules,
        ) as sharded:
            got = run_workload(
                sharded, workload, batch_size=25, keep_results=True
            )
            snapshot = sharded.supervision_snapshot()
        assert got.packets == expected.packets
        for a, b in zip(got.results, expected.results):
            assert_same_result(a, b)
        assert got.flow_packets == expected.flow_packets
        assert got.flow_bytes == expected.flow_bytes
        assert _entry_counts(entries) == _entry_counts(ref_entries)
        assert snapshot["crashes"] >= 1, "seeded fault never fired"
        assert snapshot["restarts"] == snapshot["crashes"]
        assert snapshot["wedges"] == 0
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_external_sigkill_mid_stream(self, small_routing_set):
        """Satellite regression: a worker killed from outside (no fault
        plan at all) is detected, replaced, and strands nothing."""
        plan = FaultPlan()
        before = _shm_segments()
        run = _FaultRun(small_routing_set, (20,) * 6, plan)
        with run.sharded as sharded:
            for i, (batch, expected) in enumerate(
                zip(run.batches, run.expected)
            ):
                if i == 2:
                    os.kill(sharded._procs[0].pid, signal.SIGKILL)
                got = sharded.process_batch(batch)
                for a, b in zip(got, expected):
                    assert_same_result(a, b)
            snapshot = sharded.supervision_snapshot()
        assert _entry_counts(run.entries) == _entry_counts(run.ref_entries)
        assert snapshot["crashes"] == 1
        assert snapshot["restarts"] == 1
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_close_after_kill_without_collect(self, small_routing_set):
        """close() with a corpse holding an uncollected batch must still
        unlink the dead worker's announced blocks (the terminate
        defensive path used to strand worker response rings)."""
        batches = routed_batches(small_routing_set, (16, 16))
        before = _shm_segments()
        sharded = _RoutedSharded(
            make_arch(small_routing_set), workers=2, depth=2, cache_capacity=64
        )
        sharded.process_batch(batches[0])  # spin the fleet up
        sharded.submit_batch(batches[1])
        os.kill(sharded._procs[0].pid, signal.SIGKILL)
        os.kill(sharded._procs[1].pid, signal.SIGKILL)
        sharded.close()
        deadline = time.monotonic() + 5
        while _shm_segments() - before and time.monotonic() < deadline:
            time.sleep(0.05)
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_healthy_run_counts_nothing(self, small_routing_set):
        workload = SCENARIOS["uniform"](
            small_routing_set, packet_count=60, flow_count=6
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=2
        ) as sharded:
            run_workload(sharded, workload, batch_size=20)
            snapshot = sharded.supervision_snapshot()
        assert snapshot == {
            "crashes": 0,
            "wedges": 0,
            "restarts": 0,
            "replayed_batches": 0,
            "poison_batches": 0,
            "inline_packets": 0,
        }


@needs_dev_shm
class TestWedgeDetection:
    def test_hang_detected_within_deadline(self, small_routing_set):
        """A wedged worker (alive, silent) is declared dead within the
        configured deadline, killed, and its batch replayed — the
        collect must return long before the hang would have."""
        plan = FaultPlan(specs=(FaultSpec(0, 0, "mid-classify", "hang"),))
        run = _FaultRun(
            small_routing_set,
            (12, 8),
            plan,
            supervision=SupervisionConfig(deadline=1.0),
        )
        started = time.monotonic()
        snapshot = run.run_and_compare()
        elapsed = time.monotonic() - started
        assert elapsed < HANG_SECONDS / 10, "wedge went undetected"
        assert snapshot["wedges"] == 1
        assert snapshot["restarts"] == 1

    def test_transient_delay_is_not_a_failure(self, small_routing_set):
        """A short stall must ride out the deadline untouched: no kill,
        no respawn, no recovery counters."""
        plan = FaultPlan(
            specs=(FaultSpec(0, 0, "mid-classify", "delay", delay=0.2),)
        )
        run = _FaultRun(
            small_routing_set,
            (12, 8),
            plan,
            supervision=SupervisionConfig(deadline=5.0),
        )
        snapshot = run.run_and_compare()
        assert snapshot["wedges"] == 0
        assert snapshot["crashes"] == 0


@needs_dev_shm
class TestPoisonAndBudgets:
    def test_sticky_fault_is_a_poison_batch(self, small_routing_set):
        """A sticky fault kills the replacement too; the second death
        classifies the batch poison and it completes in-process —
        bitwise-identically — instead of looping replays forever."""
        plan = FaultPlan(
            specs=(FaultSpec(0, 0, "after-receive", "crash", sticky=True),)
        )
        run = _FaultRun(small_routing_set, (12, 8, 10), plan)
        snapshot = run.run_and_compare()
        assert snapshot["poison_batches"] == 1
        assert snapshot["crashes"] == 2
        assert snapshot["restarts"] == 2
        assert snapshot["inline_packets"] == 12

    def test_budget_exhaustion_degrades_to_inline(self, small_routing_set):
        """Past the restart budget the shard is retired and its traffic
        classified in-process — the lost batches and every later batch
        routed to it — with identical results."""
        plan = FaultPlan(
            specs=(
                FaultSpec(0, 0, "after-receive", "crash"),
                FaultSpec(0, 2, "after-receive", "crash"),
            )
        )
        run = _FaultRun(
            small_routing_set,
            (6, 4, 5, 3, 7),  # batches 0, 2, 4 pin to worker 0
            plan,
            supervision=SupervisionConfig(restart_budget=1),
        )
        snapshot = run.run_and_compare()
        assert 0 in run.disabled
        assert snapshot["crashes"] == 2
        assert snapshot["restarts"] == 1
        # Batch 2 is lost to the second crash, batch 4 routed to the
        # retired shard afterwards: both classified in-process.
        assert snapshot["inline_packets"] == 5 + 7

    def test_budget_exhaustion_redistributes(self, small_routing_set):
        """fallback="redistribute": later batches reroute the retired
        shard's members onto survivors instead of the parent."""
        plan = FaultPlan(specs=(FaultSpec(0, 0, "after-receive", "crash"),))
        run = _FaultRun(
            small_routing_set,
            (6, 4, 5),  # batches 0 and 2 pin to worker 0
            plan,
            supervision=SupervisionConfig(
                restart_budget=0, fallback="redistribute"
            ),
        )
        snapshot = run.run_and_compare()
        assert 0 in run.disabled
        # Only the batch in flight at the crash runs inline; batch 2
        # rides the surviving worker.
        assert snapshot["inline_packets"] == 6
        assert snapshot["restarts"] == 0

    def test_fallback_raise_propagates(self, small_routing_set):
        plan = FaultPlan(specs=(FaultSpec(0, 0, "after-receive", "crash"),))
        batches = routed_batches(small_routing_set, (16,))
        before = _shm_segments()
        sharded = _RoutedSharded(
            make_arch(small_routing_set),
            workers=2,
            fault_plan=plan,
            supervision=SupervisionConfig(restart_budget=0, fallback="raise"),
        )
        with pytest.raises(WorkerCrashError):
            sharded.process_batch(batches[0])
        sharded.close()
        leaked = _shm_segments() - before
        assert not leaked, f"segments left in /dev/shm: {sorted(leaked)}"

    def test_poison_with_raise_fallback(self, small_routing_set):
        plan = FaultPlan(
            specs=(FaultSpec(0, 0, "after-receive", "crash", sticky=True),)
        )
        batches = routed_batches(small_routing_set, (16,))
        sharded = _RoutedSharded(
            make_arch(small_routing_set),
            workers=2,
            fault_plan=plan,
            supervision=SupervisionConfig(fallback="raise"),
        )
        with pytest.raises(PoisonBatchError):
            sharded.process_batch(batches[0])
        sharded.close()


@needs_dev_shm
class TestOutOfOrderUnderFaults:
    """A dead or wedged shard must only stall the batches actually
    assigned to it — collect_any keeps completing survivors' batches."""

    def test_collect_any_returns_survivors_first(self, small_routing_set):
        batches = routed_batches(small_routing_set, (6, 4))
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in batches]
        plan = FaultPlan(specs=(FaultSpec(0, 0, "mid-classify", "hang"),))
        with _RoutedSharded(
            make_arch(small_routing_set),
            workers=2,
            depth=2,
            cache_capacity=64,
            fault_plan=plan,
            supervision=SupervisionConfig(deadline=1.5),
        ) as sharded:
            seq0 = sharded.submit_batch(batches[0])  # pinned to the hung shard
            seq1 = sharded.submit_batch(batches[1])
            first_seq, first = sharded.collect_any()
            second_seq, second = sharded.collect_any()
            snapshot = sharded.supervision_snapshot()
        # Batch 1's shard is healthy: it must complete first, long
        # before the wedge deadline frees batch 0.
        assert (first_seq, second_seq) == (seq1, seq0)
        for got, want in zip(first, expected[1]):
            assert_same_result(got, want)
        for got, want in zip(second, expected[0]):
            assert_same_result(got, want)
        assert snapshot["wedges"] == 1
        assert snapshot["restarts"] == 1

    def test_fifo_collect_preserved_after_recovery(self, small_routing_set):
        batches = routed_batches(small_routing_set, (6, 4))
        single = BatchPipeline(make_arch(small_routing_set), cache_capacity=64)
        expected = [single.process_batch(batch) for batch in batches]
        plan = FaultPlan(specs=(FaultSpec(0, 0, "after-stats", "crash"),))
        with _RoutedSharded(
            make_arch(small_routing_set),
            workers=2,
            depth=2,
            cache_capacity=64,
            fault_plan=plan,
        ) as sharded:
            sharded.submit_batch(batches[0])
            sharded.submit_batch(batches[1])
            first = sharded.collect_batch()  # FIFO: seq 0, via recovery
            second = sharded.collect_batch()
            snapshot = sharded.supervision_snapshot()
        for got, want in zip(first, expected[0]):
            assert_same_result(got, want)
        for got, want in zip(second, expected[1]):
            assert_same_result(got, want)
        assert snapshot["crashes"] == 1
        assert snapshot["restarts"] == 1
        assert snapshot["replayed_batches"] >= 1


def _orphan_middle(queue):
    """Child entry point: build a tiny fleet, report the worker pids,
    then park — the test SIGKILLs this process and expects the workers
    to notice the orphaning on their own."""
    from repro.filters.synthetic import generate_routing_set

    from tests.conftest import SMALL_ROUTING_STATS

    rule_set = generate_routing_set(SMALL_ROUTING_STATS, seed=13)
    sharded = ShardedBatchPipeline(make_arch(rule_set), workers=2)
    workload = SCENARIOS["uniform"](rule_set, packet_count=8, flow_count=2)
    sharded.process_batch(workload.events[0][1])
    queue.put([proc.pid for proc in sharded._procs])
    time.sleep(HANG_SECONDS)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign pid
        return True
    return True


class TestOrphanedWorkers:
    def test_workers_exit_when_parent_dies(self):
        """SIGKILL the parent mid-run: the workers' pipes never see EOF
        (siblings inherit the socket ends), so they must detect the
        orphaning via the ppid watch and exit by themselves."""
        import multiprocessing as mp

        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        queue = ctx.Queue()
        middle = ctx.Process(target=_orphan_middle, args=(queue,))
        middle.start()
        try:
            pids = queue.get(timeout=30)
            os.kill(middle.pid, signal.SIGKILL)
            middle.join(timeout=10)
            alive = list(pids)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                alive = [pid for pid in alive if _pid_alive(pid)]
                if not alive:
                    break
                time.sleep(0.05)
            assert not alive, f"orphaned workers survived: {alive}"
        finally:
            if middle.is_alive():  # pragma: no cover - cleanup
                middle.kill()
                middle.join(timeout=5)


@needs_dev_shm
class TestOverloadChaos:
    """Worker crashes during an open-loop *overload* stream: the
    supervisor's respawn + deterministic replay must leave the stream
    report — shed ledger, latency stamps, results, ladder transitions —
    bitwise identical to a fault-free twin, while the admission queue's
    hard capacity holds throughout.

    CI greps the tier-1 junit for this class by name (like the chaos
    differential) so the overload coverage cannot silently rot out of
    the pipeline.
    """

    @pytest.mark.parametrize("seed", [3, 17])
    def test_crash_during_stream_is_invisible(
        self, small_routing_set, seed
    ):
        from tests.runtime.test_streaming import (
            OVERLOAD,
            overload_schedule,
            report_fingerprint,
        )

        schedule = overload_schedule(small_routing_set, packet_count=700)
        clean_arch = make_arch(small_routing_set)
        clean_entries = list(clean_arch.tables[0])
        with ShardedBatchPipeline(
            clean_arch, workers=2, depth=4
        ) as runner:
            clean = run_stream(runner, schedule, OVERLOAD)
        clean.assert_conserved()
        assert clean.shed_packets > 0, "twin run must actually overload"
        plan = FaultPlan.seeded(
            seed, workers=2, seqs=range(clean.batches), faults=2
        )
        chaos_arch = make_arch(small_routing_set)
        chaos_entries = list(chaos_arch.tables[0])
        with ShardedBatchPipeline(
            chaos_arch, workers=2, depth=4, fault_plan=plan
        ) as runner:
            chaotic = run_stream(runner, schedule, OVERLOAD)
            snapshot = runner.supervision_snapshot()
        chaotic.assert_conserved()
        assert snapshot["crashes"] >= 1, "seeded fault never fired"
        assert snapshot["restarts"] == snapshot["crashes"]
        assert snapshot["replayed_batches"] >= 1
        assert snapshot["wedges"] == 0
        assert chaotic.peak_occupancy <= OVERLOAD.capacity
        assert chaotic.shed == clean.shed, (
            "recovery changed the shed ledger"
        )
        assert report_fingerprint(chaotic) == report_fingerprint(clean)
        assert _entry_counts(chaos_entries) == _entry_counts(clean_entries)

    def test_stream_queue_bounded_under_hang_escalation(
        self, small_routing_set
    ):
        """A hung worker escalates to SIGKILL + replay mid-stream; the
        stream report still matches the fault-free twin and the queue
        never exceeds capacity."""
        schedule = bursty_arrivals(
            small_routing_set, packet_count=300, mean_burst=24.0,
            burst_gap=16.0, seed=11,
        )
        cfg = StreamConfig(
            capacity=64, batch_size=16, form_deadline=8, window=2,
            service_rate=0.5, degrade_after=2,
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set), workers=2, depth=4
        ) as runner:
            clean = run_stream(runner, schedule, cfg)
        # Bursts are single-flow, so a whole batch can hash to one
        # worker; arm the hang on both so seq 2 wedges whoever got it.
        plan = FaultPlan(
            specs=(
                FaultSpec(0, 2, "mid-classify", "hang"),
                FaultSpec(1, 2, "mid-classify", "hang"),
            )
        )
        with ShardedBatchPipeline(
            make_arch(small_routing_set),
            workers=2,
            depth=4,
            fault_plan=plan,
            supervision=SupervisionConfig(deadline=1.0),
        ) as runner:
            chaotic = run_stream(runner, schedule, cfg)
            snapshot = runner.supervision_snapshot()
        assert snapshot["wedges"] >= 1, "hang never escalated"
        assert chaotic.peak_occupancy <= cfg.capacity
        assert chaotic.shed == clean.shed
        assert chaotic.latencies == clean.latencies
