"""Tests for the behavioural FlowTable (the semantic oracle)."""

import pytest

from repro.openflow.errors import TableFullError
from repro.openflow.flow import FlowEntry, FlowStats
from repro.openflow.match import Match, PrefixMatch
from repro.openflow.table import FlowTable


def entry(priority: int, **exact) -> FlowEntry:
    return FlowEntry.build(match=Match.exact(**exact), priority=priority)


class TestFlowEntry:
    def test_sort_key_priority_desc(self):
        high, low = entry(10, in_port=1), entry(5, in_port=1)
        assert high.sort_key < low.sort_key

    def test_sort_key_specificity_tiebreak(self):
        specific = FlowEntry.build(
            match=Match(
                {"ipv4_dst": PrefixMatch(value=0x0A000000, length=24, bits=32)}
            ),
            priority=1,
        )
        loose = FlowEntry.build(
            match=Match({"ipv4_dst": PrefixMatch(value=0x0A000000, length=8, bits=32)}),
            priority=1,
        )
        assert specific.sort_key < loose.sort_key

    def test_table_miss_detection(self):
        assert FlowEntry.build(match=Match({}), priority=0).is_table_miss
        assert not entry(0, in_port=1).is_table_miss
        assert not FlowEntry.build(match=Match({}), priority=5).is_table_miss

    def test_stats_record(self):
        stats = FlowStats()
        stats.record(byte_count=100)
        stats.record()
        assert stats.packet_count == 2
        assert stats.byte_count == 100


class TestFlowTable:
    def test_lookup_highest_priority(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        table.add(entry(9, in_port=1))
        hit = table.lookup({"in_port": 1})
        assert hit is not None and hit.priority == 9

    def test_lookup_miss(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        assert table.lookup({"in_port": 2}) is None

    def test_add_replaces_same_match_same_priority(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        replacement = entry(1, in_port=1)
        table.add(replacement)
        assert len(table) == 1
        assert table.lookup({"in_port": 1}) is replacement

    def test_same_match_different_priority_coexist(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        table.add(entry(2, in_port=1))
        assert len(table) == 2

    def test_remove(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        assert table.remove(Match.exact(in_port=1), 1)
        assert not table.remove(Match.exact(in_port=1), 1)
        assert len(table) == 0

    def test_remove_where(self):
        table = FlowTable()
        for port in range(5):
            table.add(entry(1, in_port=port))
        removed = table.remove_where(lambda e: e.priority == 1)
        assert removed == 5 and len(table) == 0

    def test_capacity_enforced(self):
        table = FlowTable(max_entries=1)
        table.add(entry(1, in_port=1))
        with pytest.raises(TableFullError):
            table.add(entry(1, in_port=2))

    def test_capacity_allows_replacement(self):
        table = FlowTable(max_entries=1)
        table.add(entry(1, in_port=1))
        table.add(entry(1, in_port=1))  # replacement, not growth
        assert len(table) == 1

    def test_counters(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        table.lookup({"in_port": 1})
        table.lookup({"in_port": 9})
        assert table.lookup_count == 2
        assert table.matched_count == 1

    def test_entry_stats_updated_on_hit(self):
        table = FlowTable()
        e = entry(1, in_port=1)
        table.add(e)
        table.lookup({"in_port": 1})
        assert e.stats.packet_count == 1

    def test_table_miss_entry_found(self):
        table = FlowTable()
        miss = FlowEntry.build(match=Match({}), priority=0)
        table.add(entry(5, in_port=1))
        table.add(miss)
        assert table.table_miss_entry is miss

    def test_miss_entry_matches_last(self):
        table = FlowTable()
        table.add(FlowEntry.build(match=Match({}), priority=0))
        table.add(entry(5, in_port=1))
        hit = table.lookup({"in_port": 1})
        assert hit is not None and hit.priority == 5

    def test_iteration_is_sorted(self):
        table = FlowTable()
        table.add(entry(1, in_port=1))
        table.add(entry(9, in_port=2))
        assert [e.priority for e in table] == [9, 1]

    def test_negative_table_id_rejected(self):
        with pytest.raises(ValueError):
            FlowTable(table_id=-1)

    def test_equal_priority_first_added_wins(self):
        table = FlowTable()
        first = entry(3, in_port=1)
        table.add(first)
        table.add(
            FlowEntry.build(match=Match.exact(in_port=1, eth_type=1), priority=3)
        )
        hit = table.lookup({"in_port": 1, "eth_type": 1})
        # Both match; the more specific one wins the specificity tiebreak.
        assert hit is not None and hit.match != first.match
