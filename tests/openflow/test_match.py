"""Tests for per-field predicates and the multi-field Match."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.openflow.errors import OpenFlowError
from repro.openflow.match import (
    ExactMatch,
    MaskedMatch,
    Match,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import mask_of, prefix_covers_value


class TestExactMatch:
    def test_matches_only_value(self):
        predicate = ExactMatch(value=7, bits=8)
        assert predicate.matches(7)
        assert not predicate.matches(8)

    def test_width_enforced(self):
        with pytest.raises(OpenFlowError):
            ExactMatch(value=256, bits=8)

    def test_specificity_is_width(self):
        assert ExactMatch(value=1, bits=13).specificity() == 13

    def test_hashable(self):
        assert ExactMatch(1, 8) in {ExactMatch(1, 8)}


class TestPrefixMatch:
    def test_prefix_semantics(self):
        predicate = PrefixMatch(value=0x0A000000, length=8, bits=32)
        assert predicate.matches(0x0A123456)
        assert not predicate.matches(0x0B123456)

    def test_zero_length_is_wildcard(self):
        predicate = PrefixMatch(value=0, length=0, bits=32)
        assert predicate.matches(0) and predicate.matches(mask_of(32))

    def test_host_bits_rejected(self):
        with pytest.raises(OpenFlowError):
            PrefixMatch(value=0x0A000001, length=8, bits=32)

    def test_length_bounds(self):
        with pytest.raises(OpenFlowError):
            PrefixMatch(value=0, length=33, bits=32)

    def test_specificity_is_length(self):
        assert PrefixMatch(value=0x0A000000, length=8, bits=32).specificity() == 8

    @given(
        st.integers(min_value=0, max_value=16),
        st.integers(min_value=0, max_value=mask_of(16)),
        st.integers(min_value=0, max_value=mask_of(16)),
    )
    def test_agrees_with_prefix_covers(self, length, raw, probe):
        from repro.util.bits import canonical_prefix

        value, length = canonical_prefix(raw, length, 16)
        predicate = PrefixMatch(value=value, length=length, bits=16)
        assert predicate.matches(probe) == prefix_covers_value(
            value, length, probe, 16
        )


class TestRangeMatch:
    def test_inclusive_bounds(self):
        predicate = RangeMatch(low=10, high=20, bits=16)
        assert predicate.matches(10) and predicate.matches(20)
        assert not predicate.matches(9) and not predicate.matches(21)

    def test_invalid_order_rejected(self):
        with pytest.raises(OpenFlowError):
            RangeMatch(low=5, high=4, bits=16)

    def test_is_full(self):
        assert RangeMatch(low=0, high=65535, bits=16).is_full
        assert not RangeMatch(low=0, high=65534, bits=16).is_full

    def test_specificity_ordering(self):
        exact = RangeMatch(low=80, high=80, bits=16)
        narrow = RangeMatch(low=0, high=1023, bits=16)
        full = RangeMatch(low=0, high=65535, bits=16)
        assert exact.specificity() > narrow.specificity() > full.specificity()


class TestMaskedMatch:
    def test_masked_semantics(self):
        predicate = MaskedMatch(value=0x10, mask=0xF0, bits=8)
        assert predicate.matches(0x1F)
        assert not predicate.matches(0x2F)

    def test_value_outside_mask_rejected(self):
        with pytest.raises(OpenFlowError):
            MaskedMatch(value=0x01, mask=0xF0, bits=8)

    def test_specificity_counts_mask_bits(self):
        assert MaskedMatch(value=0, mask=0b1010, bits=8).specificity() == 2


class TestWildcard:
    def test_matches_everything(self):
        predicate = WildcardMatch(bits=16)
        assert predicate.matches(0) and predicate.matches(65535)

    def test_zero_specificity(self):
        assert WildcardMatch(bits=16).specificity() == 0


class TestMatch:
    def test_exact_builder(self):
        match = Match.exact(in_port=3, eth_type=0x0800)
        assert match.matches({"in_port": 3, "eth_type": 0x0800})
        assert not match.matches({"in_port": 4, "eth_type": 0x0800})

    def test_missing_field_fails_match(self):
        match = Match.exact(ipv4_src=0x0A000001)
        assert not match.matches({"eth_type": 0x0800})

    def test_empty_match_is_table_miss(self):
        assert Match({}).is_table_miss
        assert not Match.exact(in_port=1).is_table_miss

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            Match({"bogus": WildcardMatch(bits=8)})

    def test_zero_bit_predicates_canonicalised_away(self):
        """OXM omits all-wild fields; the match drops them so the scan
        and decomposition paths agree on field-less packets (the /0
        divergence the differential property harness found)."""
        noisy = Match(
            {
                "in_port": ExactMatch(value=3, bits=32),
                "ipv4_dst": PrefixMatch(value=0, length=0, bits=32),
                "tcp_dst": RangeMatch(low=0, high=0xFFFF, bits=16),
                "eth_type": WildcardMatch(bits=16),
            }
        )
        assert set(noisy) == {"in_port"}
        assert noisy == Match.exact(in_port=3)
        assert hash(noisy) == hash(Match.exact(in_port=3))
        # A /0-only match constrains nothing: it matches a packet that
        # lacks the field entirely, exactly like the empty match.
        default_route = Match({"ipv4_dst": PrefixMatch(0, 0, 32)})
        assert default_route.matches({"eth_type": 0x0806})
        assert default_route.is_table_miss

    def test_wrong_width_rejected(self):
        with pytest.raises(OpenFlowError):
            Match({"vlan_vid": ExactMatch(value=1, bits=16)})

    def test_equality_and_hash(self):
        a = Match.exact(in_port=1)
        b = Match.exact(in_port=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Match.exact(in_port=2)

    def test_specificity_sums_fields(self):
        match = Match(
            {
                "ipv4_dst": PrefixMatch(value=0x0A000000, length=8, bits=32),
                "in_port": ExactMatch(value=1, bits=32),
            }
        )
        assert match.specificity() == 40

    def test_mapping_interface(self):
        match = Match.exact(in_port=1, eth_type=0x0800)
        assert len(match) == 2
        assert set(match) == {"in_port", "eth_type"}
        assert isinstance(match["in_port"], ExactMatch)

    def test_extra_packet_fields_ignored(self):
        match = Match.exact(in_port=1)
        assert match.matches({"in_port": 1, "eth_type": 0x0800, "vlan_vid": 5})
