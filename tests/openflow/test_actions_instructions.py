"""Tests for actions, the action-set ordering and instruction sets."""

import pytest

from repro.openflow.actions import (
    CONTROLLER_PORT,
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    SetQueueAction,
    action_set_order,
)
from repro.openflow.errors import OpenFlowError, PipelineError
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    InstructionSet,
    Meter,
    WriteActions,
    WriteMetadata,
)


class TestActions:
    def test_output_describe(self):
        assert OutputAction(7).describe() == "output:7"
        assert OutputAction(CONTROLLER_PORT).describe() == "output:CONTROLLER"

    def test_output_to_controller_flag(self):
        assert OutputAction(CONTROLLER_PORT).to_controller
        assert not OutputAction(1).to_controller

    def test_negative_port_rejected(self):
        with pytest.raises(OpenFlowError):
            OutputAction(-1)

    def test_set_field_validates_width(self):
        with pytest.raises(OpenFlowError):
            SetFieldAction(field_name="vlan_pcp", value=8)

    def test_set_field_applies(self):
        fields = {"vlan_pcp": 0}
        SetFieldAction(field_name="vlan_pcp", value=5).apply(fields)
        assert fields["vlan_pcp"] == 5

    def test_push_vlan_ethertype_restricted(self):
        with pytest.raises(OpenFlowError):
            PushVlanAction(ethertype=0x0800)

    def test_action_set_order_output_last(self):
        ordered = action_set_order(
            (OutputAction(1), PopVlanAction(), SetQueueAction(2))
        )
        assert isinstance(ordered[-1], OutputAction)
        assert isinstance(ordered[0], PopVlanAction)

    def test_action_set_keeps_last_of_type(self):
        ordered = action_set_order((OutputAction(1), OutputAction(9)))
        assert len(ordered) == 1
        assert ordered[0].port == 9

    def test_action_set_one_set_field_per_field(self):
        ordered = action_set_order(
            (
                SetFieldAction("vlan_pcp", 1),
                SetFieldAction("vlan_pcp", 3),
                SetFieldAction("ip_dscp", 2),
            )
        )
        set_fields = [a for a in ordered if isinstance(a, SetFieldAction)]
        assert len(set_fields) == 2
        pcp = next(a for a in set_fields if a.field_name == "vlan_pcp")
        assert pcp.value == 3

    def test_group_action(self):
        assert GroupAction(5).describe() == "group:5"


class TestInstructionSet:
    def test_execution_order(self):
        instructions = InstructionSet(
            [
                GotoTable(2),
                WriteActions([OutputAction(1)]),
                Meter(4),
                ApplyActions([PopVlanAction()]),
            ]
        )
        kinds = [type(i) for i in instructions]
        assert kinds == [Meter, ApplyActions, WriteActions, GotoTable]

    def test_duplicate_type_rejected(self):
        with pytest.raises(PipelineError):
            InstructionSet([GotoTable(1), GotoTable(2)])

    def test_goto_property(self):
        instructions = InstructionSet([GotoTable(3)])
        assert instructions.goto_table is not None
        assert instructions.goto_table.table_id == 3
        assert InstructionSet([]).goto_table is None

    def test_negative_table_rejected(self):
        with pytest.raises(PipelineError):
            GotoTable(-1)

    def test_write_metadata_apply(self):
        instruction = WriteMetadata(value=0xAB00, mask=0xFF00)
        assert instruction.apply(0x1234) == 0xAB34

    def test_write_metadata_value_outside_mask_rejected(self):
        with pytest.raises(PipelineError):
            WriteMetadata(value=0xFF, mask=0xF0)

    def test_clear_actions_describe(self):
        assert ClearActions().describe() == "clear_actions"

    def test_len_and_get(self):
        instructions = InstructionSet([GotoTable(1), ClearActions()])
        assert len(instructions) == 2
        assert instructions.get(ClearActions) == ClearActions()
        assert instructions.get(Meter) is None

    def test_equality(self):
        a = InstructionSet([GotoTable(1)])
        b = InstructionSet([GotoTable(1)])
        assert a == b
        assert a != InstructionSet([GotoTable(2)])

    def test_describe_joins(self):
        text = InstructionSet([GotoTable(1), Meter(2)]).describe()
        assert "meter:2" in text and "goto_table:1" in text
