"""Tests for the multiple-table pipeline semantics (OpenFlow v1.1+)."""

import pytest

from repro.openflow.actions import (
    CONTROLLER_PORT,
    OutputAction,
    SetFieldAction,
)
from repro.openflow.errors import PipelineError
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import ExactMatch, Match
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline
from repro.openflow.table import FlowTable


def flow(priority=1, instructions=(), **exact) -> FlowEntry:
    return FlowEntry.build(
        match=Match.exact(**exact), priority=priority, instructions=instructions
    )


class TestConstruction:
    def test_int_constructor(self):
        pipeline = OpenFlowPipeline(3)
        assert len(pipeline) == 3
        assert [t.table_id for t in pipeline.tables] == [0, 1, 2]

    def test_zero_tables_rejected(self):
        with pytest.raises(PipelineError):
            OpenFlowPipeline(0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(PipelineError):
            OpenFlowPipeline([FlowTable(0), FlowTable(0)])

    def test_unordered_ids_rejected(self):
        with pytest.raises(PipelineError):
            OpenFlowPipeline([FlowTable(1), FlowTable(0)])

    def test_unknown_table_access(self):
        with pytest.raises(PipelineError):
            OpenFlowPipeline(1).table(7)


class TestInstall:
    def test_goto_backwards_rejected(self):
        pipeline = OpenFlowPipeline(2)
        with pytest.raises(PipelineError):
            pipeline.install(1, flow(instructions=[GotoTable(0)], in_port=1))

    def test_goto_self_rejected(self):
        pipeline = OpenFlowPipeline(2)
        with pytest.raises(PipelineError):
            pipeline.install(0, flow(instructions=[GotoTable(0)], in_port=1))

    def test_goto_missing_table_rejected(self):
        pipeline = OpenFlowPipeline(2)
        with pytest.raises(PipelineError):
            pipeline.install(0, flow(instructions=[GotoTable(9)], in_port=1))


class TestProcessing:
    def test_single_table_write_actions(self):
        pipeline = OpenFlowPipeline(1)
        pipeline.install(
            0, flow(instructions=[WriteActions([OutputAction(7)])], in_port=1)
        )
        result = pipeline.process({"in_port": 1})
        assert result.matched
        assert result.output_ports == [7]
        assert not result.dropped

    def test_goto_chains_tables(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(0, flow(instructions=[GotoTable(1)], in_port=1))
        pipeline.install(
            1, flow(instructions=[WriteActions([OutputAction(9)])], in_port=1)
        )
        result = pipeline.process({"in_port": 1})
        assert result.tables_visited == [0, 1]
        assert result.output_ports == [9]
        assert len(result.matched_entries) == 2

    def test_miss_sends_to_controller_by_default(self):
        pipeline = OpenFlowPipeline(1)
        result = pipeline.process({"in_port": 1})
        assert result.sent_to_controller
        assert CONTROLLER_PORT in result.output_ports
        assert not result.matched

    def test_miss_policy_drop(self):
        pipeline = OpenFlowPipeline(1, miss_policy=MissPolicy.DROP)
        result = pipeline.process({"in_port": 1})
        assert result.dropped and not result.sent_to_controller

    def test_match_without_output_drops(self):
        pipeline = OpenFlowPipeline(1)
        pipeline.install(0, flow(in_port=1))
        result = pipeline.process({"in_port": 1})
        assert result.matched and result.dropped

    def test_write_metadata_visible_to_next_table(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(
            0,
            flow(instructions=[WriteMetadata(value=5), GotoTable(1)], in_port=1),
        )
        pipeline.install(
            1,
            FlowEntry.build(
                match=Match({"metadata": ExactMatch(value=5, bits=64)}),
                priority=1,
                instructions=[WriteActions([OutputAction(3)])],
            ),
        )
        result = pipeline.process({"in_port": 1})
        assert result.output_ports == [3]
        assert result.metadata == 5

    def test_clear_actions_empties_set(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(
            0,
            flow(
                instructions=[WriteActions([OutputAction(7)]), GotoTable(1)],
                in_port=1,
            ),
        )
        pipeline.install(1, flow(instructions=[ClearActions()], in_port=1))
        result = pipeline.process({"in_port": 1})
        assert result.output_ports == []
        assert result.dropped

    def test_apply_actions_execute_immediately(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(
            0,
            flow(
                instructions=[
                    ApplyActions([SetFieldAction("ip_dscp", 42)]),
                    GotoTable(1),
                ],
                in_port=1,
            ),
        )
        pipeline.install(
            1,
            FlowEntry.build(
                match=Match({"ip_dscp": ExactMatch(value=42, bits=6)}),
                priority=1,
                instructions=[WriteActions([OutputAction(2)])],
            ),
        )
        result = pipeline.process({"in_port": 1, "ip_dscp": 0})
        assert result.output_ports == [2]
        assert result.final_fields["ip_dscp"] == 42

    def test_write_actions_overwrite_within_set(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(
            0,
            flow(
                instructions=[WriteActions([OutputAction(1)]), GotoTable(1)],
                in_port=1,
            ),
        )
        pipeline.install(
            1, flow(instructions=[WriteActions([OutputAction(2)])], in_port=1)
        )
        result = pipeline.process({"in_port": 1})
        # One output of each type survives: the later write wins.
        assert result.output_ports == [2]

    def test_second_table_miss_goes_to_controller(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.install(0, flow(instructions=[GotoTable(1)], in_port=1))
        result = pipeline.process({"in_port": 1})
        assert result.sent_to_controller
        assert result.tables_visited == [0, 1]

    def test_table_miss_entry_handles_miss(self):
        pipeline = OpenFlowPipeline(2)
        miss = FlowEntry.build(
            match=Match({}), priority=0, instructions=[GotoTable(1)]
        )
        pipeline.install(0, miss)
        pipeline.install(
            1, flow(instructions=[WriteActions([OutputAction(5)])], in_port=4)
        )
        result = pipeline.process({"in_port": 4})
        assert result.output_ports == [5]


class TestInstructionTypeOrder:
    """OpenFlow v1.3 §5.9: instructions execute by type order (Meter,
    Apply-Actions, Clear-Actions, Write-Actions, Write-Metadata,
    Goto-Table), never by the order the entry happens to list them."""

    def test_raw_iterable_is_canonicalized_on_entry(self):
        entry = FlowEntry(
            match=Match.exact(in_port=1),
            priority=1,
            instructions=(WriteActions([OutputAction(7)]), ClearActions()),
        )
        kinds = [type(i) for i in entry.instructions]
        assert kinds == [ClearActions, WriteActions]

    def test_write_before_clear_still_outputs(self):
        # Listed Write-Actions *before* Clear-Actions: spec order runs the
        # clear first, so this entry's own written actions must survive.
        pipeline = OpenFlowPipeline(1)
        pipeline.table(0).add(
            FlowEntry(
                match=Match.exact(in_port=1),
                priority=1,
                instructions=(WriteActions([OutputAction(7)]), ClearActions()),
            )
        )
        result = pipeline.process({"in_port": 1})
        assert result.output_ports == [7]
        assert not result.dropped

    def test_clear_only_empties_earlier_tables_actions(self):
        # Table 0 writes port 5; table 1 lists (Write port 7, Clear) in
        # the buggy order.  Spec: clear table 0's write, then add port 7.
        pipeline = OpenFlowPipeline(2)
        pipeline.install(
            0,
            flow(
                instructions=[WriteActions([OutputAction(5)]), GotoTable(1)],
                in_port=1,
            ),
        )
        pipeline.table(1).add(
            FlowEntry(
                match=Match.exact(in_port=1),
                priority=1,
                instructions=(WriteActions([OutputAction(7)]), ClearActions()),
            )
        )
        result = pipeline.process({"in_port": 1})
        assert result.output_ports == [7]

    def test_goto_listed_first_still_runs_last(self):
        pipeline = OpenFlowPipeline(2)
        pipeline.table(0).add(
            FlowEntry(
                match=Match.exact(in_port=1),
                priority=1,
                instructions=(
                    GotoTable(1),
                    WriteMetadata(value=0x5),
                    WriteActions([OutputAction(3)]),
                ),
            )
        )
        pipeline.install(1, flow(instructions=[], metadata=0x5))
        result = pipeline.process({"in_port": 1})
        # Metadata was written before the goto took effect, so table 1's
        # metadata match sees it; the action set still executes at the end.
        assert result.tables_visited == [0, 1]
        assert result.metadata == 0x5
        assert result.output_ports == [3]
