"""Tests for the OXM field registry (paper Table II source of truth)."""

import pytest

from repro.openflow.errors import UnknownFieldError
from repro.openflow.fields import (
    REGISTRY,
    FieldDef,
    FieldRegistry,
    MatchMethod,
    OXM_FIELDS,
    paper_table2_fields,
)

#: The paper's Table II, row for row: (name, bits, method).
PAPER_TABLE2 = [
    ("Ingress Port", 32, MatchMethod.EXACT),
    ("Source Ethernet", 48, MatchMethod.PREFIX),
    ("Destination Ethernet", 48, MatchMethod.PREFIX),
    ("Ethernet Type", 16, MatchMethod.EXACT),
    ("VLAN ID", 13, MatchMethod.EXACT),
    ("VLAN Priority", 3, MatchMethod.EXACT),
    ("MPLS Label", 20, MatchMethod.EXACT),
    ("Source IPv4", 32, MatchMethod.PREFIX),
    ("Destination IPv4", 32, MatchMethod.PREFIX),
    ("Source IPv6", 128, MatchMethod.PREFIX),
    ("Destination IPv6", 128, MatchMethod.PREFIX),
    ("IPv4 Protocol", 8, MatchMethod.EXACT),
    ("IPv4 ToS", 6, MatchMethod.EXACT),
    ("Source Port", 16, MatchMethod.RANGE),
    ("Destination Port", 16, MatchMethod.RANGE),
]


def test_39_match_fields_excluding_metadata():
    assert REGISTRY.match_field_count(exclude_metadata=True) == 39


def test_40_fields_including_metadata():
    assert REGISTRY.match_field_count(exclude_metadata=False) == 40


def test_metadata_is_64_bits():
    assert REGISTRY["metadata"].bits == 64


def test_15_common_fields():
    assert len(REGISTRY.common_fields()) == 15


def test_paper_table2_rows_exact():
    rows = [(f.paper_name, f.bits, f.method) for f in paper_table2_fields()]
    assert rows == PAPER_TABLE2


def test_unknown_field_raises():
    with pytest.raises(UnknownFieldError):
        REGISTRY["bogus_field"]


def test_unknown_field_is_keyerror():
    with pytest.raises(KeyError):
        REGISTRY["bogus_field"]


def test_width_helper():
    assert REGISTRY.width("eth_dst") == 48
    assert REGISTRY.width("vlan_vid") == 13


def test_method_helper():
    assert REGISTRY.method("ipv4_dst") is MatchMethod.PREFIX
    assert REGISTRY.method("tcp_src") is MatchMethod.RANGE


def test_oxm_ids_unique_and_dense():
    ids = sorted(f.oxm_id for f in OXM_FIELDS)
    assert ids == list(range(40))


def test_max_value():
    assert REGISTRY["vlan_pcp"].max_value == 7
    assert REGISTRY["ipv6_src"].max_value == (1 << 128) - 1


def test_registry_is_mapping():
    assert len(REGISTRY) == 40
    assert "in_port" in REGISTRY
    assert set(iter(REGISTRY)) == {f.name for f in OXM_FIELDS}


def test_duplicate_names_rejected():
    duplicated = (OXM_FIELDS[0], OXM_FIELDS[0])
    with pytest.raises(ValueError):
        FieldRegistry(duplicated)


def test_zero_width_field_rejected():
    with pytest.raises(ValueError):
        FieldDef(name="bad", oxm_id=99, bits=0, method=MatchMethod.EXACT)


def test_common_flag_follows_paper_name():
    for field in OXM_FIELDS:
        assert field.common == bool(field.paper_name)
