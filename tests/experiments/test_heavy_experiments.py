"""Shape assertions for the heavy experiments (all 16 filters).

Marked ``slow``: they build the four >180 k-rule Routing sets.  They are
the authoritative checks that the paper's figure-level claims reproduce;
the benchmark suite re-runs the same code under timing.
"""

import pytest

from repro.experiments.registry import run_experiment

pytestmark = pytest.mark.slow


def test_table4_matches_paper_exactly():
    result = run_experiment("table4", write_csv=False)
    assert result.headline["cell_mismatches_vs_paper"] == 0
    assert result.headline["outliers_match_paper"] == 1.0


def test_fig2_shape_claims():
    result = run_experiment("fig2", write_csv=False)
    # gozb is the paper's max; ours must be within 2 % of the measured max.
    assert result.headline["gozb_gap_vs_max_percent"] <= 2.0
    assert result.headline["ip_outliers_match_paper"] == 1.0
    # Paper magnitudes: 54 010 MAC nodes (full-array scale), routing well
    # below MAC relative to rule count.
    assert result.headline["max_eth_nodes_sparse"] >= 8_000
    assert result.headline["max_ip_nodes_sparse"] <= 60_000


def test_fig4_shape_claims():
    result = run_experiment("fig4", write_csv=False)
    assert result.headline["outlier_higher_dominates"] == 1.0
    assert (
        result.headline["max_outlier_higher_kbits_sparse"]
        > result.headline["max_regular_lower_kbits_sparse"]
    )


def test_fig5_saving_close_to_paper():
    result = run_experiment("fig5", write_csv=False)
    assert result.headline["all_filters_save"] == 1.0
    # Paper: 56.92 % average saving; accept the same regime.
    assert 45.0 <= result.headline["average_saving_percent"] <= 75.0


def test_prototype_matches_paper_scale():
    result = run_experiment("prototype", write_csv=False)
    # Paper: 5 Mbit total, ~2 Mbit MBT, 209-entry worst-case LUT,
    # L1 <= 32 records in <= 832 bits, 4 tables.
    assert 2.0 <= result.headline["total_mbits"] <= 10.0
    assert 1.0 <= result.headline["mbt_mbits"] <= 4.0
    assert result.headline["largest_lut_entries"] == 209
    assert result.headline["max_l1_records"] <= 32
    assert result.headline["max_l1_bits"] <= 1024
    assert result.headline["fits_device"] == 1.0


def test_ablation_three_levels_is_reasonable():
    result = run_experiment("ablation", write_csv=False)
    # The 3-level distribution must not be the memory worst case, and the
    # label method must save storage on every filter.
    assert result.headline["mean_label_saving_percent"] > 30.0


def test_baseline_tcam_agreement():
    result = run_experiment("baseline-tcam", write_csv=False)
    table = result.tables[0]
    for row in table.rows:
        agree, total = str(row[5]).split("/")
        assert int(agree) == int(total)
