"""Tests for the experiment harness and the light experiments' claims.

The heavy experiments (those that build all 16 filters, including the
>180 k-rule ones) run under the ``slow`` marker and in the benchmark
suite; the quick ones are executed directly here with their shape
assertions.
"""

import pytest

from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    experiment,
    get_experiment,
    run_experiment,
)
from repro.util.tables import TextTable

EXPECTED_IDS = {
    "table1",
    "table2",
    "table3",
    "table4",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "prototype",
    "ablation",
    "baseline-tcam",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert EXPECTED_IDS <= set(all_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            experiment("table2")(lambda: ExperimentResult("table2"))

    def test_result_render_and_csv(self, tmp_path):
        result = ExperimentResult(experiment_id="demo")
        table = TextTable(headers=["a"], title="t")
        table.add_row([1])
        result.tables.append(table)
        result.headline["x"] = 1.0
        result.notes.append("note text")
        rendered = result.render()
        assert "demo" in rendered and "note text" in rendered and "x=1" in rendered
        paths = result.write_csvs(tmp_path)
        assert paths[0].name == "demo.csv"
        assert paths[0].exists()

    def test_multiple_tables_get_suffixes(self, tmp_path):
        result = ExperimentResult(experiment_id="multi")
        for _ in range(2):
            table = TextTable(headers=["a"])
            table.add_row([1])
            result.tables.append(table)
        paths = result.write_csvs(tmp_path)
        assert [p.name for p in paths] == ["multi-0.csv", "multi-1.csv"]

    def test_run_experiment_writes_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        run_experiment("table2")
        assert (tmp_path / "table2.csv").exists()


class TestTable2:
    def test_claims(self):
        result = run_experiment("table2", write_csv=False)
        assert result.headline["match_fields_excluding_metadata"] == 39
        assert result.headline["common_fields"] == 15
        assert result.headline["metadata_bits"] == 64
        assert len(result.tables[0].rows) == 15


class TestTable3:
    def test_every_cell_matches_paper(self):
        result = run_experiment("table3", write_csv=False)
        assert result.headline["cell_mismatches_vs_paper"] == 0
        assert len(result.tables[0].rows) == 16


class TestTable1:
    def test_quantified_comparison(self):
        result = run_experiment("table1", write_csv=False)
        assert result.headline["hypercuts_replication"] >= 1.0
        assert result.headline["tcam_kbits"] > 0
        qualitative = result.tables[0]
        assert len(qualitative.rows) == 4


class TestFig3:
    def test_shape_claims(self):
        result = run_experiment("fig3", write_csv=False)
        assert result.headline["max_is_gozb"] == 1.0
        assert result.headline["max_l1_records"] <= 32
        assert result.headline["max_l1_bits"] <= 1024  # "less than 1 Kbit"
        # Paper scale: 983.7 Kbits; full-array must be within a factor ~2.
        assert 500 <= result.headline["max_total_kbits_full_array"] <= 2000


class TestThroughput:
    def test_counters_land_next_to_memory_claims(self):
        result = run_experiment("throughput", write_csv=False)
        # The wide scenario's defining contrast: exact-match caching
        # collapses while the wildcard tier absorbs the trace.
        assert result.headline["uniform_wide_microflow_hit_rate"] <= 0.05
        assert result.headline["uniform_wide_megaflow_hit_rate"] >= 0.5
        assert result.headline["total_mbits"] > 0
        assert result.headline["churn_action_free_hwm"] >= 1
        scenario_table, memory_table = result.tables
        assert len(scenario_table.rows) == 6  # the full catalog
        assert any("free hwm" in str(row) for row in memory_table.rows)
        # Lifecycle columns: timeout-churn must report expiries and the
        # other scenarios (no advance events) must report none.
        assert result.headline["timeout_churn_expired_entries"] > 0
        assert result.headline["timeout_churn_sweep_entry_lanes"] > 0
        # Open-loop streaming: the declared service rate is overloaded
        # (so packets shed and the tail is measured) while the relaxed
        # run — capacity above offered load — sheds nothing.
        assert result.headline["stream_overload_shed_packets"] > 0
        assert result.headline["stream_overload_p99_ticks"] > 0
        assert result.headline["stream_relaxed_shed_packets"] == 0
        assert (
            result.headline["stream_offered_load_pkts_per_tick"] > 0.5
        )  # the declared service rate the bursts overwhelm


class TestRunnerCli:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig5" in out

    def test_unknown_experiment_errors(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_run_single(self, capsys, tmp_path, monkeypatch):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Experiment table2" in out
