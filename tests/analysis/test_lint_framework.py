"""Framework behaviour: pragmas, config allowlists, CLI, registration."""

import pytest

from repro.analysis.lint import (
    REGISTRY,
    Config,
    Rule,
    check_source,
    main,
    register,
    rule_names,
    run_paths,
)

FIRING = "import numpy as np\nlanes = np.zeros(8)\n"


class TestPragmas:
    def test_inline_disable_by_name(self):
        source = (
            "import numpy as np\n"
            "lanes = np.zeros(8)  # repro-lint: disable=dtype-discipline\n"
        )
        assert not check_source(source, "x.py")

    def test_bare_disable_silences_the_line(self):
        source = (
            "import numpy as np\n"
            "lanes = np.zeros(8)  # repro-lint: disable\n"
        )
        assert not check_source(source, "x.py")

    def test_disable_for_other_rule_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "lanes = np.zeros(8)  # repro-lint: disable=shm-lifecycle\n"
        )
        assert [f.rule for f in check_source(source, "x.py")] == [
            "dtype-discipline"
        ]

    def test_pragma_on_other_line_does_not_suppress(self):
        source = (
            "import numpy as np  # repro-lint: disable=dtype-discipline\n"
            "lanes = np.zeros(8)\n"
        )
        assert len(check_source(source, "x.py")) == 1


class TestConfig:
    def test_exclude_glob_suppresses_rule_for_path(self, tmp_path):
        config_file = tmp_path / "repro-lint.toml"
        config_file.write_text(
            '[rule.dtype-discipline]\nexclude = ["benchmarks/*.py"]\n'
        )
        config = Config.load(config_file)
        assert not check_source(
            FIRING, "benchmarks/bench_thing.py", config=config
        )
        assert check_source(FIRING, "src/repro/thing.py", config=config)

    def test_discover_walks_upwards(self, tmp_path):
        (tmp_path / "repro-lint.toml").write_text(
            '[rule.dtype-discipline]\nexclude = ["*.py"]\n'
        )
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        config = Config.discover(nested)
        assert config.excluded("dtype-discipline", "anything.py")

    def test_missing_config_is_empty(self, tmp_path):
        assert Config.discover(tmp_path) == Config()


class TestRunPaths:
    def test_walks_directories_and_reports(self, tmp_path):
        (tmp_path / "bad.py").write_text(FIRING)
        (tmp_path / "good.py").write_text(
            "import numpy as np\nlanes = np.zeros(8, dtype=np.uint64)\n"
        )
        findings = run_paths([str(tmp_path)], config=Config())
        assert [f.rule for f in findings] == ["dtype-discipline"]
        assert findings[0].path.endswith("bad.py")

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        findings = run_paths([str(tmp_path)], config=Config())
        assert [f.rule for f in findings] == ["parse-error"]


class TestRegistration:
    def test_rule_names_match_registry(self):
        assert rule_names() == tuple(r.name for r in REGISTRY)
        assert len(set(rule_names())) == len(REGISTRY)

    def test_register_rejects_anonymous_rules(self):
        with pytest.raises(ValueError, match="no name"):

            @register
            class Nameless(Rule):
                pass

    def test_register_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class Impostor(Rule):
                name = "dtype-discipline"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(FIRING)
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2:" in out
        assert "[dtype-discipline]" in out
        assert "hint:" in out

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(FIRING)
        assert main([str(bad), "--select", "shm-lifecycle"]) == 0
        assert main([str(bad), "--select", "dtype-discipline"]) == 1

    def test_unknown_select_exits_two(self, capsys):
        assert main(["--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert f"{name}:" in out

    def test_explicit_config_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(FIRING)
        config_file = tmp_path / "repro-lint.toml"
        config_file.write_text(
            '[rule.dtype-discipline]\nexclude = ["bad.py"]\n'
        )
        assert main([str(bad), "--config", str(config_file)]) == 0
