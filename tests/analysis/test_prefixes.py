"""Tests for the prefix-length distribution analysis."""

import pytest

from repro.analysis.prefixes import (
    expansion_summary,
    prefix_length_profile,
)
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import ExactMatch, PrefixMatch


@pytest.fixture()
def mixed_lengths() -> RuleSet:
    rules = RuleSet("p", Application.ROUTING, ("in_port", "ipv4_dst"))
    for length, value in ((8, 0x0A000000), (8, 0x0B000000), (24, 0x0A141E00), (32, 0x01020304)):
        rules.add(
            Rule(
                fields={
                    "in_port": ExactMatch(1, 32),
                    "ipv4_dst": PrefixMatch(value, length, 32),
                },
                priority=length,
            )
        )
    return rules


def test_length_histogram(mixed_lengths):
    profiles = prefix_length_profile(mixed_lengths, "ipv4_dst")
    hi = profiles["ipv4_dst/hi"]
    # two /8 entries, one 16-bit entry from the /24, one from the /32.
    assert hi.length_counts == {8: 2, 16: 2}
    lo = profiles["ipv4_dst/lo"]
    assert lo.length_counts == {8: 1, 16: 1}


def test_total_and_mean(mixed_lengths):
    hi = prefix_length_profile(mixed_lengths, "ipv4_dst")["ipv4_dst/hi"]
    assert hi.total_entries == 4
    assert hi.mean_length() == pytest.approx((8 + 8 + 16 + 16) / 4)


def test_expansion_records_match_trie(mixed_lengths):
    """The analytical expansion count equals the records the built trie
    holds at entry levels (path records excluded)."""
    from repro.experiments.common import build_partition_tries

    strides = (5, 5, 6)
    summary = expansion_summary(mixed_lengths, "ipv4_dst", strides)
    tries = build_partition_tries(mixed_lengths, "ipv4_dst")
    for partition, (entries, expanded) in summary.items():
        trie = tries[partition]
        assert entries == len(trie)
        labelled = sum(s.with_label for s in trie.level_stats())
        # Expansion floor <= labelled records (shared records collapse).
        assert labelled <= expanded


def test_expansion_factor_at_boundary():
    rules = RuleSet("b", Application.ROUTING, ("in_port", "ipv4_dst"))
    # length 6 -> boundary 10 -> 2^4 = 16 records per entry.
    rules.add(
        Rule(fields={"ipv4_dst": PrefixMatch(0x08000000, 6, 32)}, priority=6)
    )
    summary = expansion_summary(rules, "ipv4_dst", (5, 5, 6))
    assert summary["ipv4_dst/hi"] == (1, 16)


def test_non_prefix_field_rejected(mixed_lengths):
    with pytest.raises(ValueError):
        prefix_length_profile(mixed_lengths, "in_port")


def test_empty_profile():
    rules = RuleSet("e", Application.ROUTING, ("in_port", "ipv4_dst"))
    profiles = prefix_length_profile(rules, "ipv4_dst")
    assert profiles["ipv4_dst/hi"].total_entries == 0
    assert profiles["ipv4_dst/hi"].mean_length() == 0.0
    assert profiles["ipv4_dst/hi"].expansion_records((5, 5, 6)) == 0
