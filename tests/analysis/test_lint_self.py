"""The linter's own acceptance gate, plus regression tests for the
defects its first run over the tree surfaced.

``python -m repro.analysis src benchmarks examples`` must exit 0; this
suite enforces the same thing from tier-1 so a violation fails locally
before CI sees it.
"""

from pathlib import Path

import numpy as np

from repro.analysis.lint import Config, check_source, run_paths
from repro.filters.synthetic import _coverage_first
from repro.runtime.transport import (
    BlockReader,
    BlockWriter,
    PacketBlockCodec,
    SharedBlock,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestTreeIsClean:
    def test_scanned_tree_has_no_findings(self):
        config = Config.load(REPO_ROOT / "repro-lint.toml")
        findings = run_paths(
            [str(REPO_ROOT / part) for part in ("src", "benchmarks", "examples")],
            config=config,
        )
        assert not findings, "\n".join(f.render() for f in findings)

    def test_fixture_corpus_is_excluded_by_repo_config(self):
        # `python -m repro.analysis tests` must not drown in the seeded
        # violations that exist precisely to test the rules.
        config = Config.load(REPO_ROOT / "repro-lint.toml")
        fixture = "tests/analysis/lint_fixtures/dtype-discipline/fire.py"
        source = (REPO_ROOT / fixture).read_text(encoding="utf-8")
        assert not check_source(source, fixture, config=config)
        # ...while the same code anywhere else still fires.
        assert check_source(source, "src/repro/elsewhere.py", config=config)


class TestDtypeRegressions:
    """The first tree-wide run flagged three dtype-less ``np.arange``
    calls (platform ``long`` — int32 on Windows — flowing into int64
    lanes).  Pin the fixed behaviour."""

    def test_attach_pick_indirection_is_int64(self):
        codec = PacketBlockCodec()
        writer = BlockWriter()
        layout = codec.encode(
            writer, [{"in_port": 1}, {"in_port": 2}, {"in_port": 1}], "pkt"
        )
        block = SharedBlock()
        try:
            block.ensure(writer.nbytes)
            segments = writer.write_to(block.buf)
            reader = BlockReader(block.buf, segments)
            attached = codec.attach(reader, layout, positions=[2, 0])
            assert attached.pick.dtype == np.int64
            assert attached.dicts() == [{"in_port": 1}, {"in_port": 1}]
            del reader, attached  # release views before unmapping
        finally:
            block.close()

    def test_coverage_first_indices_are_int64(self):
        rng = np.random.default_rng(7)
        indices = _coverage_first(rng, pool_size=4, rows=9)
        assert indices.dtype == np.int64
        assert sorted(indices[:4].tolist()) == [0, 1, 2, 3]

    def test_fixed_modules_stay_dtype_clean(self):
        for module in (
            "src/repro/runtime/transport.py",
            "src/repro/filters/synthetic.py",
        ):
            path = REPO_ROOT / module
            source = path.read_text(encoding="utf-8")
            findings = [
                f
                for f in check_source(source, module)
                if f.rule == "dtype-discipline"
            ]
            assert not findings, "\n".join(f.render() for f in findings)
