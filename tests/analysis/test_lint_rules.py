"""Fixture corpus for the repro-lint rule set.

Every registered rule must have a ``fire.py`` (seeded violation the
rule flags) and a ``clean.py`` (legitimate code it must not flag) under
``lint_fixtures/<rule-name>/``.  The meta-test makes that structural:
registering a rule without fixtures fails the suite.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import REGISTRY, check_source

FIXTURES = Path(__file__).parent / "lint_fixtures"

RULE_NAMES = [rule.name for rule in REGISTRY]


def _run_rule(rule_name, fixture_path):
    rule = next(r for r in REGISTRY if r.name == rule_name)
    source = fixture_path.read_text(encoding="utf-8")
    return check_source(source, str(fixture_path), rules=[rule])


class TestFixtureCorpus:
    def test_rule_set_is_at_least_the_issue_floor(self):
        assert len(REGISTRY) >= 5

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_every_rule_has_fixtures(self, rule_name):
        rule_dir = FIXTURES / rule_name
        assert (rule_dir / "fire.py").is_file(), (
            f"rule {rule_name!r} has no should-fire fixture"
        )
        assert (rule_dir / "clean.py").is_file(), (
            f"rule {rule_name!r} has no should-not-fire fixture"
        )

    def test_no_orphan_fixture_directories(self):
        on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        assert on_disk == set(RULE_NAMES)

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_fire_fixture_fires(self, rule_name):
        findings = _run_rule(rule_name, FIXTURES / rule_name / "fire.py")
        assert findings, f"{rule_name}: fire.py produced no findings"
        assert all(f.rule == rule_name for f in findings)
        assert all(f.line > 0 and f.hint for f in findings)

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_clean_fixture_stays_clean(self, rule_name):
        findings = _run_rule(rule_name, FIXTURES / rule_name / "clean.py")
        assert not findings, (
            f"{rule_name}: clean.py flagged: "
            + "; ".join(f.render() for f in findings)
        )

    @pytest.mark.parametrize("rule_name", RULE_NAMES)
    def test_fire_fixture_is_quiet_for_other_rules(self, rule_name):
        """Fixtures are minimal: each seeds exactly one rule's violation."""
        source = (FIXTURES / rule_name / "fire.py").read_text(
            encoding="utf-8"
        )
        findings = check_source(
            source, f"{rule_name}/fire.py", rules=list(REGISTRY)
        )
        assert {f.rule for f in findings} == {rule_name}


class TestRuleDetails:
    """Pin the sharp edges each rule was designed around."""

    def test_shm_attach_never_flags(self):
        findings = check_source(
            "from multiprocessing import shared_memory\n"
            "def attach(name):\n"
            "    return shared_memory.SharedMemory(name=name)\n",
            "attach.py",
        )
        assert not findings

    def test_shm_positional_create_flags(self):
        findings = check_source(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def make(n):\n"
            "    return SharedMemory(None, True, n)\n",
            "positional.py",
        )
        assert [f.rule for f in findings] == ["shm-lifecycle"]

    def test_frame_len_comparison_is_the_exclusion_idiom(self):
        findings = check_source(
            "def keyed(batch, names):\n"
            "    return batch.key_hashes(\n"
            "        tuple(n for n in names if n != 'frame_len')\n"
            "    )\n",
            "exclusion.py",
        )
        assert not findings

    def test_snapshot_single_read_is_fine(self):
        findings = check_source(
            "class S:\n"
            "    def _submit(self):\n"
            "        with self._lock:\n"
            "            return len(self._log)\n",
            "single.py",
        )
        assert not findings

    def test_snapshot_nested_defs_counted_separately(self):
        # One read in the outer function, one in a nested helper: each
        # scope snapshots once, so neither is a re-read.
        findings = check_source(
            "class S:\n"
            "    def _submit(self):\n"
            "        n = len(self._log)\n"
            "        def backlog():\n"
            "            return len(self._log)\n"
            "        return n, backlog\n",
            "nested.py",
        )
        assert not findings

    def test_dtype_positional_accepted(self):
        findings = check_source(
            "import numpy as np\n"
            "def f(n):\n"
            "    return np.zeros(n, np.uint64), np.full(n, 0, np.int64)\n",
            "positional_dtype.py",
        )
        assert not findings

    def test_hot_name_outside_hot_set_is_free(self):
        findings = check_source(
            "def report(batch):\n"
            "    return batch.dicts()\n",
            "cold.py",
        )
        assert not findings
