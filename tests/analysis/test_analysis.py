"""Tests for the Section III analysis pipeline."""

import pytest

from repro.analysis.replication import repetition_survey, total_repetition
from repro.analysis.survey import mac_survey_table, routing_survey_table
from repro.analysis.unique_values import (
    exact_values,
    partition_unique_entries,
    unique_value_survey,
)
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.fields import MatchMethod
from repro.openflow.match import ExactMatch, PrefixMatch


class TestUniqueValues:
    def test_exact_values_dedupe(self, tiny_routing_set):
        assert exact_values(tiny_routing_set, "in_port") == {1, 2}

    def test_partition_entries_tiny_set(self, tiny_routing_set):
        unique = partition_unique_entries(tiny_routing_set, "ipv4_dst")
        # 10/8 (twice, same entry), 10.20/16, 10.20.30/24 -> hi entries
        assert unique["ipv4_dst/hi"] == {(0x0A00, 8), (0x0A14, 16)}
        # only the /24 reaches the lower partition
        assert unique["ipv4_dst/lo"] == {(0x1E00, 8)}

    def test_default_route_not_stored(self, tiny_routing_set):
        unique = partition_unique_entries(tiny_routing_set, "ipv4_dst")
        assert all((0, 0) not in entries for entries in unique.values())

    def test_survey_structure(self, tiny_routing_set):
        survey = unique_value_survey(tiny_routing_set)
        by_field = {s.field_name: s for s in survey}
        assert by_field["in_port"].method is MatchMethod.EXACT
        assert by_field["in_port"].per_partition == {"in_port": 2}
        assert by_field["ipv4_dst"].per_partition == {
            "ipv4_dst/hi": 2,
            "ipv4_dst/lo": 1,
        }
        assert by_field["ipv4_dst"].total == 3

    def test_survey_counts_ranges(self, tiny_acl_set):
        survey = unique_value_survey(tiny_acl_set)
        by_field = {s.field_name: s for s in survey}
        assert by_field["tcp_dst"].per_partition == {"tcp_dst": 2}

    def test_exact_values_rejects_prefix_field_content(self):
        rules = RuleSet("x", Application.ROUTING, ("in_port", "ipv4_dst"))
        rules.add(
            Rule(
                fields={
                    "in_port": ExactMatch(1, 32),
                    "ipv4_dst": PrefixMatch(0x0A000000, 8, 32),
                }
            )
        )
        with pytest.raises(TypeError):
            exact_values(rules, "ipv4_dst")

    def test_exact_values_accepts_full_length_prefix(self):
        rules = RuleSet("x", Application.ROUTING, ("in_port", "ipv4_dst"))
        rules.add(
            Rule(fields={"in_port": ExactMatch(1, 32)})
        )
        rules.add(
            Rule(
                fields={
                    "in_port": PrefixMatch(value=7, length=32, bits=32),
                }
            )
        )
        assert exact_values(rules, "in_port") == {1, 7}


class TestRepetition:
    def test_tiny_set_counts(self, tiny_routing_set):
        by_structure = {
            r.structure: r for r in repetition_survey(tiny_routing_set)
        }
        # 5 rules constrain in_port; 2 unique values.
        assert by_structure["in_port"].total_entries == 5
        assert by_structure["in_port"].unique_entries == 2
        # hi partition: 4 non-wild entries (default route excluded), 2 unique.
        assert by_structure["ipv4_dst/hi"].total_entries == 4
        assert by_structure["ipv4_dst/hi"].unique_entries == 2

    def test_total_aggregates(self, tiny_routing_set):
        total = total_repetition(tiny_routing_set)
        assert total.total_entries == 5 + 4 + 1
        assert total.unique_entries == 2 + 2 + 1

    def test_saving_fraction(self, small_mac_set):
        total = total_repetition(small_mac_set)
        assert 0.0 < total.saving_fraction < 1.0
        assert total.repetition_factor > 1.0

    def test_range_repetition(self, tiny_acl_set):
        by_structure = {r.structure: r for r in repetition_survey(tiny_acl_set)}
        assert by_structure["tcp_dst"].total_entries == 2
        assert by_structure["tcp_dst"].unique_entries == 2

    def test_empty_structure_zero_factor(self):
        rules = RuleSet("x", Application.ROUTING, ("in_port", "ipv4_dst"))
        survey = {r.structure: r for r in repetition_survey(rules)}
        assert survey["in_port"].repetition_factor == 0.0
        assert survey["in_port"].saving_fraction == 0.0


class TestSurveyTables:
    def test_mac_table_matches_calibration(self, small_mac_set):
        table = mac_survey_table({"testmac": small_mac_set})
        assert table.rows[0] == ["testmac", 151, 16, 26, 38, 55]

    def test_routing_table_matches_calibration(self, small_routing_set):
        table = routing_survey_table({"testroute": small_routing_set})
        assert table.rows[0] == ["testroute", 400, 12, 40, 90]

    def test_wrong_application_rejected(self, small_routing_set):
        with pytest.raises(ValueError):
            mac_survey_table({"x": small_routing_set})

    def test_wrong_application_rejected_routing(self, small_mac_set):
        with pytest.raises(ValueError):
            routing_survey_table({"x": small_mac_set})
