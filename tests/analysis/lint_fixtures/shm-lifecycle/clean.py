# repro-lint fixture: should NOT fire shm-lifecycle.
import weakref
from multiprocessing import shared_memory


def _release_segment(shm):
    shm.close()
    shm.unlink()


def guarded_segment(owner, size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    weakref.finalize(owner, _release_segment, shm)
    return shm


def attach_only(name):
    # Attaching never creates; the owner holds the guard.
    return shared_memory.SharedMemory(name=name)


class OwnedBlock:
    """Creation inside a class that owns teardown is fine."""

    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)

    def close(self):
        self._shm.close()
        self._shm.unlink()
