# repro-lint fixture: should FIRE shm-lifecycle.
# A segment created with no unlink guard in scope and no owning
# close()/teardown — an abandoned run strands it in /dev/shm.
from multiprocessing import shared_memory


def leak_segment(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm


class Holder:
    """No close(), no __exit__, no finalize — still a leak."""

    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)
