# repro-lint fixture: should NOT fire snapshot-discipline.


class SnapshottingSubmitter:
    def _submit(self, batch):
        # One read, under the mutation lock, carried with the batch.
        with self._mutation_lock:
            log_len = len(self._log)
        self._inflight.append((batch, log_len))
        return log_len

    def send_backlog(self, worker, cursor, log_len):
        # Bounded by the submission snapshot: every worker catches up
        # to the same point.
        return self._log[cursor:log_len]

    def collect_replies(self, worker, inflight):
        # The collect side resolves against the carried snapshot.
        return self._replies[worker][: inflight.log_len]
