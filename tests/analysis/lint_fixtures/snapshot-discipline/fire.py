# repro-lint fixture: should FIRE snapshot-discipline.
# Re-reading the mutation-log length lets a mutator land between the
# reads, splitting one batch across two table states.


class RacySubmitter:
    def submit_batch(self, batch):
        start = len(self._log)
        self._ship(batch)
        # Second read: mutations appended by another thread since
        # `start` now leak into this batch's view.
        return len(self._log) - start

    def collect_replies(self, worker):
        # Any read on the collect side ignores the submission snapshot.
        return self._replies[worker][: len(self._log)]

    def send_backlog(self, worker, cursor):
        # Open-ended slice: ships whatever has landed by *now*, not
        # what was snapshotted when the batch was submitted.
        return self._log[cursor:]
