# repro-lint fixture: should FIRE bounded-queue.
# An unbounded admission queue turns overload into unbounded memory
# growth and unbounded queueing delay: nothing is ever shed, latency
# climbs without limit, and the process eventually OOMs — the exact
# failure mode the streaming layer's AdmissionQueue exists to prevent.
from collections import deque


class UnboundedAdmission:
    def __init__(self):
        self.backlog = deque()  # no maxlen=, no len() bound anywhere

    def offer(self, item):
        self.backlog.append(item)  # grows forever under overload


def fifo_via_list(items):
    queue = []
    for item in items:
        queue.insert(0, item)  # head-insert: list used as a FIFO
    drained = []
    while queue:
        drained.append(queue.pop(0))  # head-pop, still unbounded
    return drained
