# repro-lint fixture: should NOT fire bounded-queue.
from collections import deque


class BoundedAdmission:
    # The AdmissionQueue idiom: the deque itself is unbounded, but
    # every append is guarded by a len() comparison against a declared
    # capacity — the bound lives in the class, findable class-wide.
    def __init__(self, capacity):
        self.capacity = capacity
        self._queue = deque()

    def offer(self, item):
        if len(self._queue) >= self.capacity:
            return False  # tail-drop: the bound is enforced here
        self._queue.append(item)
        return True


class MirroredOrder:
    # The shard-transport idiom: deques that mirror an in-flight map
    # one-to-one, so the same depth bound caps them via asserts.
    def __init__(self, depth):
        self.depth = depth
        self._order = deque()
        self._pending = [deque() for _ in range(4)]

    def submit(self, seq, worker):
        assert len(self._order) < self.depth
        self._order.append(seq)
        assert len(self._pending[worker]) < self.depth
        self._pending[worker].append(seq)


def sliding_window(values):
    # maxlen= IS the declared bound.
    window = deque(values, maxlen=8)
    return list(window)


def local_bounded(items, cap):
    # Locals are searched within the enclosing function.
    queue = deque()
    for item in items:
        if len(queue) >= cap:
            break
        queue.append(item)
    return queue


def trim_head(queue, keep):
    # Head-pops below a len() bound: a capped drain, not unbounded use.
    while len(queue) > keep:
        queue.pop(0)


def stack_use(frames):
    # append/pop() from the tail is a stack, out of scope for the rule.
    stack = list(frames)
    while stack:
        stack.pop()
