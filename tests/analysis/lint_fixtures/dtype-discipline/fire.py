# repro-lint fixture: should FIRE dtype-discipline.
# Dtype-less constructions promote silently: float64 zeros, platform
# `long` aranges (int32 on Windows), object arrays from mixed input.
import numpy as np


def implicit_lanes(rows):
    lanes = np.zeros(rows)  # float64, not a uint64 lane
    picks = np.arange(rows)  # platform long, not int64
    return lanes, picks


def implicit_from_data(values, payload):
    column = np.array(values)  # dtype inferred from input
    view = np.frombuffer(payload)  # float64 (!) by default
    return column, view
