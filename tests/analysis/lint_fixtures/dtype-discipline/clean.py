# repro-lint fixture: should NOT fire dtype-discipline.
import numpy as np


def explicit_lanes(rows):
    lanes = np.zeros(rows, dtype=np.uint64)
    presence = np.ones(rows, dtype=np.uint8)
    picks = np.arange(rows, dtype=np.int64)
    return lanes, presence, picks


def explicit_positional(rows, values, payload):
    # Positional dtype counts too.
    lanes = np.zeros(rows, np.uint64)
    column = np.asarray(values, np.int64)
    view = np.frombuffer(payload, np.uint8)
    return lanes, column, view


def not_numpy(array, zeros, rows):
    # Local callables that happen to share constructor names.
    return array(rows) + zeros(rows)


def dtype_free_apis(lanes, hits):
    # APIs that *inherit* dtype are fine.
    out = np.zeros_like(lanes)
    counts = np.bincount(hits)
    return out, counts
