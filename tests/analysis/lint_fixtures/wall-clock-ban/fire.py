# repro-lint fixture: should FIRE wall-clock-ban.
# Wall-clock reads make two replays of the same workload diverge: an
# idle timeout measured against time.time() expires entries based on
# host load, not on the trace.
import time
from datetime import datetime


def expire_by_host_clock(entries, idle_timeout):
    now = time.time()  # wall clock decides expiry
    cutoff = time.monotonic() - idle_timeout  # so does monotonic
    return [e for e in entries if e.last_touched < min(now, cutoff)]


def stamp_install(entry):
    entry.installed_at = datetime.now()  # capture-the-moment stamp
    entry.nanos = time.monotonic_ns()
