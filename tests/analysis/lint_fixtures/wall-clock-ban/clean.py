# repro-lint fixture: should NOT fire wall-clock-ban.
import time


def expire_on_virtual_clock(entries, now):
    # Time is a parameter: the runner advances a VirtualClock and
    # passes the tick down, so expiry depends only on the workload.
    return [e for e in entries if e.is_expired(now)]


def measure_sweep(sweep):
    # Duration measurement is fine — perf_counter never feeds logic
    # that decides *whether* something happens, only how long it took.
    started = time.perf_counter()
    sweep()
    return time.perf_counter() - started


def supervision_deadline(timeout):
    # Watching for dead worker processes is genuinely about the host,
    # not the simulation; the pragma keeps the exception reviewable.
    return time.monotonic() + timeout  # repro-lint: disable=wall-clock-ban


def other_receivers(clock, moment):
    # Other objects' .now()/.today() methods are out of scope: the
    # rule keys on the time/datetime module receivers by name.
    return clock.now(), moment.time()
