# repro-lint fixture: should FIRE hot-path-purity.
# Hot-tier functions falling off the lanes into per-row dicts.


def lookup_batch_columnar(self, batch):
    rows = batch.dicts()  # bulk-materialises every row
    return [self.lookup(row) for row in rows]


def probe_rows(self, batch, rows, results):
    for row in rows:
        results[row] = PipelineResult(  # per-row result construction
            final_fields=batch.fields_at(row)
        )
    return results


def classify_columnar(pipeline, codec, payload):
    batch = codec.decode(payload)  # bulk decode on the fast path
    return pipeline.run(batch)


class PipelineResult:
    def __init__(self, final_fields):
        self.final_fields = final_fields
