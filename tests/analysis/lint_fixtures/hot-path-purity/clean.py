# repro-lint fixture: should NOT fire hot-path-purity.


def lookup_batch_columnar(self, batch, rows):
    # Lazy, aliased per-row views on the miss path are allowed.
    return [self.lookup(batch.row_fields(row)) for row in rows]


def probe_rows(self, lanes, present, hits):
    # Pure lane arithmetic: the whole point of the probe tier.
    return lanes[hits] & present[hits]


def classify_columnar(pipeline, batch, misses):
    # The miss path may materialise *individual* rows...
    for row in misses:
        pipeline.resolve(batch.fields_at(row))
    return misses


def cold_path_report(codec, payload, batch):
    # ...and outside the hot tiers, decode/dicts are fair game.
    decoded = codec.decode(payload)
    return decoded, batch.dicts()
