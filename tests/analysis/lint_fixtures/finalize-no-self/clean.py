# repro-lint fixture: should NOT fire finalize-no-self.
import weakref


def _release_segment(shm):
    shm.close()
    shm.unlink()


class GuardedBlock:
    def __init__(self, shm):
        self._shm = shm
        # Module-level callback; the *resource* is captured (evaluated
        # now), not the owner — exactly how transport.SharedBlock does it.
        weakref.finalize(self, _release_segment, self._shm)


def other_finalize(registry, entry):
    # Not weakref.finalize at all — some object's own .finalize().
    registry.finalize(entry, entry.close)
