# repro-lint fixture: should FIRE finalize-no-self.
# Each of these finalizers keeps its own owner alive, so the guard
# can never run.
import weakref


class BoundMethodGuard:
    def __init__(self, shm):
        self._shm = shm
        # Bound method: the finalizer holds `self` forever.
        weakref.finalize(self, self._cleanup)

    def _cleanup(self):
        self._shm.unlink()


class LambdaGuard:
    def __init__(self, shm):
        self._shm = shm
        # The closure captures `self` — same leak, different spelling.
        weakref.finalize(self, lambda: self._shm.unlink())


class SelfArgGuard:
    def __init__(self, release):
        # Passing the owner as a callback argument pins it too.
        weakref.finalize(self, release, self)
