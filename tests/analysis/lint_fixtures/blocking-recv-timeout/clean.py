# Legitimate pipe waits the blocking-recv-timeout rule must not flag:
# every recv() sits behind a sentinel-aware or bounded readiness guard.


class SupervisedCollector:
    def take_reply(self, worker, sentinel):
        from multiprocessing import connection

        # Sentinel-aware bounded wait: a dead worker wakes the parent
        # (sentinel) and a wedged one trips the timeout.
        ready = connection.wait([self._conns[worker], sentinel], 0.5)
        if self._conns[worker] in ready:
            return self._conns[worker].recv()
        return None

    def drain(self, conn):
        while conn.poll(0):
            yield conn.recv()
