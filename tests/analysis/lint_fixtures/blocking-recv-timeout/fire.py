# Seeded violation for the blocking-recv-timeout rule: pipe receives
# with no way to notice a dead or wedged peer.


class BlockingCollector:
    def take_reply(self, worker):
        # Bare blocking receive: a crashed worker never writes, so the
        # parent parks here forever.
        return self._conns[worker].recv()

    def gather(self):
        from multiprocessing import connection

        # Readiness wait with neither a timeout nor a process sentinel
        # in the wait set: the same indefinite block, one layer up.
        return connection.wait(self._conns)
