# repro-lint fixture: should NOT fire frame-len-exclusion.
FRAME_LEN_FIELD = "frame_len"


def keyed_without_length(batch, fields):
    # The exclusion idiom: frame_len appears only inside a comparison
    # that filters it *out* of the key.
    keep = tuple(name for name in fields if name != FRAME_LEN_FIELD)
    return batch.key_hashes(keep)


def filtered_inline(batch, fields):
    return batch.packed_keys(
        tuple(name for name in fields if name != "frame_len")
    )


def length_as_metadata(stats, entry, fields):
    # frame_len feeding byte accounting is the whole point.
    stats.record(entry, fields.get(FRAME_LEN_FIELD, 0))


def schema_without_length(cache_cls, table, fields):
    return cache_cls(
        table,
        field_names=tuple(f for f in fields if f != FRAME_LEN_FIELD),
    )
