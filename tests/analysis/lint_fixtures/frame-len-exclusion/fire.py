# repro-lint fixture: should FIRE frame-len-exclusion.
# A per-packet length in an exact-match key splinters every flow into
# per-size microflows; in a shard schema it scatters one aggregate
# across shards.
FRAME_LEN_FIELD = "frame_len"


def keyed_by_length(batch, fields):
    return batch.key_hashes((*fields, FRAME_LEN_FIELD))


def literal_in_key(batch):
    return batch.packed_keys(("eth_dst", "frame_len"))


def schema_with_length(cache_cls, table):
    return cache_cls(table, field_names=("eth_src", FRAME_LEN_FIELD))
