"""The graduated mypy gate: config-shape checks plus a live run.

The live ``mypy`` run is skipped when mypy is not importable (the CI
``mypy`` job is the enforcing copy); the config-shape checks always run
so a broken ``mypy.ini`` fails fast even on a minimal toolchain.
"""

from __future__ import annotations

import configparser
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
MYPY_INI = REPO_ROOT / "mypy.ini"

GATED_PACKAGES = ("runtime", "packet", "openflow")


def _config() -> configparser.ConfigParser:
    parser = configparser.ConfigParser()
    parser.read(MYPY_INI)
    return parser


class TestConfigShape:
    def test_config_parses(self) -> None:
        parser = _config()
        assert parser.has_section("mypy")

    def test_gate_is_strict_over_target_packages(self) -> None:
        parser = _config()
        assert parser.getboolean("mypy", "strict")
        files = parser.get("mypy", "files")
        for package in GATED_PACKAGES:
            assert f"src/repro/{package}" in files

    def test_py_typed_marker_ships(self) -> None:
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_overrides_only_name_real_modules(self) -> None:
        """Every per-module section must point at an importable module (or
        wildcard package) — a typo'd override silently stops waiving."""
        src = REPO_ROOT / "src"
        for section in _config().sections():
            if not section.startswith("mypy-"):
                continue
            dotted = section[len("mypy-") :]
            if dotted.endswith(".*"):
                package_dir = src / Path(*dotted[:-2].split("."))
                assert package_dir.is_dir(), f"{section}: no package {dotted[:-2]}"
            else:
                module_file = src / Path(*dotted.split(".")).with_suffix(".py")
                assert module_file.is_file(), f"{section}: no module {dotted}"

    def test_stage0_modules_stay_inside_the_gate(self) -> None:
        """``ignore_errors`` overrides for gated packages are the stage-0
        rung of the ladder; they must at least be *inside* the gate, not a
        backdoor exempting unrelated trees."""
        parser = _config()
        for section in parser.sections():
            if not section.startswith("mypy-repro."):
                continue
            dotted = section[len("mypy-") :]
            inside = any(dotted.startswith(f"repro.{p}.") for p in GATED_PACKAGES)
            if inside and parser.has_option(section, "ignore_errors"):
                # Stage 0 is a short list; growing it needs a deliberate
                # edit here, not just a new mypy.ini section.
                assert dotted in {
                    "repro.runtime.batch",
                    "repro.runtime.shard",
                    "repro.runtime.scenarios",
                }, f"unexpected stage-0 module {dotted}"


class TestLiveGate:
    def test_mypy_strict_gate_passes(self) -> None:
        if shutil.which("mypy") is None:
            try:
                import mypy  # noqa: F401
            except ImportError:
                pytest.skip("mypy not installed; CI job enforces the gate")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
