"""Tests for the update-process simulation (Section V.B / Fig. 5)."""

import pytest

from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import ExactMatch, PrefixMatch
from repro.update.controller_sim import (
    SoftwareController,
    average_saving_percent,
)
from repro.update.engine import CYCLES_PER_UPDATE, UpdateEngine
from repro.update.generator import (
    generate_action_updates,
    generate_algorithm_updates,
)
from repro.update.records import UpdateFile, UpdateRecord


class TestUpdateFile:
    def test_append_and_counts(self):
        file = UpdateFile(name="f")
        file.append(UpdateRecord(structure="a", key=(1,), label=1))
        file.append(UpdateRecord(structure="a", key=(2,), label=2))
        file.append(UpdateRecord(structure="b", key=(3,), label=1))
        assert len(file) == 3
        assert file.per_structure() == {"a": 2, "b": 1}

    def test_count_only_mode(self):
        file = UpdateFile(name="f", materialize=False)
        file.count("a", n=5)
        assert len(file) == 5
        assert file.records == []
        with pytest.raises(ValueError):
            list(file)

    def test_merged(self):
        a = UpdateFile(name="a")
        a.append(UpdateRecord(structure="s", key=(1,), label=1))
        b = UpdateFile(name="b")
        b.append(UpdateRecord(structure="s", key=(2,), label=2))
        merged = a.merged(b)
        assert len(merged) == 2
        assert merged.per_structure() == {"s": 2}


class TestGenerator:
    def test_label_file_counts_unique_only(self, tiny_routing_set):
        label_file = generate_algorithm_updates(tiny_routing_set, use_labels=True)
        initial_file = generate_algorithm_updates(
            tiny_routing_set, use_labels=False
        )
        # 2 unique ports vs 5 port-constrained rules.
        assert label_file.per_structure()["in_port"] == 2
        assert initial_file.per_structure()["in_port"] == 5
        assert len(label_file) < len(initial_file)

    def test_trie_records_expansion_counted(self):
        rules = RuleSet("r", Application.ROUTING, ("in_port", "ipv4_dst"))
        rules.add(
            Rule(
                fields={
                    "in_port": ExactMatch(1, 32),
                    "ipv4_dst": PrefixMatch(0x0A000000, 8, 32),
                },
                priority=8,
            )
        )
        file = generate_algorithm_updates(rules, use_labels=True)
        counts = file.per_structure()
        # hi partition: a /8 entry -> 1 L1 path record + 4 expanded L2.
        assert counts["ipv4_dst/hi/L1"] == 1
        assert counts["ipv4_dst/hi/L2"] == 4
        assert counts["in_port"] == 1

    def test_duplicate_prefix_rewrites_expansion_without_labels(self):
        rules = RuleSet("r", Application.ROUTING, ("in_port", "ipv4_dst"))
        for port in (1, 2):
            rules.add(
                Rule(
                    fields={
                        "in_port": ExactMatch(port, 32),
                        "ipv4_dst": PrefixMatch(0x0A000000, 8, 32),
                    },
                    priority=8,
                )
            )
        initial = generate_algorithm_updates(rules, use_labels=False)
        label = generate_algorithm_updates(rules, use_labels=True)
        # Without labels the second rule re-writes the 4 expansion records
        # (but creates no new path records).
        assert initial.per_structure()["ipv4_dst/hi/L2"] == 8
        assert label.per_structure()["ipv4_dst/hi/L2"] == 4

    def test_count_only_matches_materialized(self, small_mac_set):
        materialized = generate_algorithm_updates(small_mac_set, use_labels=True)
        counted = generate_algorithm_updates(
            small_mac_set, use_labels=True, materialize=False
        )
        assert len(materialized) == len(counted)
        assert materialized.per_structure() == counted.per_structure()

    def test_label_trie_records_match_built_trie(self, small_mac_set):
        """The optimised file writes each stored trie record exactly once,
        so its per-level counts equal the built trie's record counts."""
        from repro.experiments.common import build_partition_tries

        file = generate_algorithm_updates(small_mac_set, use_labels=True)
        counts = file.per_structure()
        tries = build_partition_tries(small_mac_set, "eth_dst")
        for name, trie in tries.items():
            for stats in trie.level_stats():
                assert counts.get(f"{name}/L{stats.level}", 0) == stats.records

    def test_action_updates_one_per_rule(self, small_mac_set):
        file = generate_action_updates(small_mac_set)
        assert len(file) == len(small_mac_set)


class TestEngine:
    def test_two_cycles_per_record(self):
        file = UpdateFile(name="f", materialize=False)
        file.count("s", n=10)
        cost = UpdateEngine().cost(file)
        assert cost.cycles == 10 * CYCLES_PER_UPDATE == 20

    def test_duration(self):
        file = UpdateFile(name="f", materialize=False)
        file.count("s", n=100)
        cost = UpdateEngine().cost(file)
        assert cost.duration_us(clock_mhz=100.0) == pytest.approx(2.0)

    def test_batch(self):
        a = UpdateFile(name="a", materialize=False)
        a.count("s", 3)
        b = UpdateFile(name="b", materialize=False)
        b.count("s", 4)
        assert UpdateEngine().cost_of_batch([a, b]).cycles == 14

    def test_invalid_engine_params(self):
        with pytest.raises(ValueError):
            UpdateEngine(cycles_per_update=0)


class TestController:
    def test_characterize_returns_two_files(self, small_mac_set):
        controller = SoftwareController()
        algorithms, actions = controller.characterize(small_mac_set)
        assert "algorithms" in algorithms.name
        assert "actions" in actions.name

    def test_label_method_saves_cycles(self, small_mac_set, small_routing_set):
        controller = SoftwareController()
        for rule_set in (small_mac_set, small_routing_set):
            comparison = controller.compare(rule_set)
            assert comparison.optimised.cycles < comparison.initial.cycles
            assert 0 < comparison.saving_percent < 100

    def test_full_update_includes_actions(self, small_mac_set):
        controller = SoftwareController()
        algorithms_only = controller.algorithm_update_cost(small_mac_set)
        full = controller.full_update_cost(small_mac_set)
        assert full.cycles == algorithms_only.cycles + 2 * len(small_mac_set)

    def test_average_saving(self, small_mac_set, small_routing_set):
        controller = SoftwareController()
        comparisons = [
            controller.compare(small_mac_set),
            controller.compare(small_routing_set),
        ]
        average = average_saving_percent(comparisons)
        low = min(c.saving_percent for c in comparisons)
        high = max(c.saving_percent for c in comparisons)
        assert low <= average <= high

    def test_average_saving_empty(self):
        assert average_saving_percent([]) == 0.0
