"""Tests for the single-table and HyperCuts baselines."""

import pytest

from repro.baselines.hypercuts import HyperCutsTree
from repro.baselines.single_table import (
    SingleTableSwitch,
    cross_product_entries,
    materialise_cross_product,
)
from repro.packet.generator import PacketGenerator, TraceConfig


class TestSingleTable:
    def test_lookup_within_one_application(self, small_routing_set, generator):
        switch = SingleTableSwitch([small_routing_set])
        matches = [r.to_match() for r in small_routing_set.rules[:30]]
        for fields in generator.field_trace(matches, 100, hit_rate=0.8):
            expected = small_routing_set.linear_lookup(fields)
            got = switch.lookup(fields)
            assert (got is None) == (expected is None)

    def test_priority_bands_keep_first_app_ahead(
        self, small_mac_set, small_routing_set, generator
    ):
        switch = SingleTableSwitch([small_mac_set, small_routing_set])
        mac_rule = small_mac_set.rules[0]
        route_rule = small_routing_set.rules[1]
        fields = generator.fields_matching(mac_rule.to_match())
        fields |= generator.fields_matching(route_rule.to_match())
        hit = switch.lookup(fields)
        assert hit is not None
        assert hit.match == mac_rule.to_match()  # first app wins its band

    def test_entry_count(self, small_mac_set, small_routing_set):
        switch = SingleTableSwitch([small_mac_set, small_routing_set])
        assert len(switch) == len(small_mac_set) + len(small_routing_set)

    def test_cross_product_entries(self, small_mac_set, small_routing_set):
        assert cross_product_entries([]) == 0
        assert cross_product_entries([small_mac_set]) == len(small_mac_set)
        assert cross_product_entries(
            [small_mac_set, small_routing_set]
        ) == len(small_mac_set) * len(small_routing_set)

    def test_materialise_cross_product(self, small_mac_set, small_routing_set):
        combined = materialise_cross_product(small_mac_set, small_routing_set)
        assert len(combined) == len(small_mac_set) * len(small_routing_set)
        sample = combined[0]
        assert set(sample.fields) == {
            "vlan_vid",
            "eth_dst",
            "in_port",
            "ipv4_dst",
        }

    def test_materialise_limit(self, small_mac_set, small_routing_set):
        with pytest.raises(ValueError):
            materialise_cross_product(
                small_mac_set, small_routing_set, limit=10
            )

    def test_materialise_rejects_shared_fields(self, small_routing_set):
        with pytest.raises(ValueError):
            materialise_cross_product(small_routing_set, small_routing_set)


class TestHyperCuts:
    def test_lookup_matches_linear(self, small_acl_set):
        tree = HyperCutsTree(small_acl_set, binth=8)
        generator = PacketGenerator(TraceConfig(seed=31))
        matches = [r.to_match() for r in small_acl_set.rules[:40]]
        trace = generator.field_trace(
            matches, 150, hit_rate=0.7, fill_fields=small_acl_set.field_names
        )
        for fields in trace:
            expected = small_acl_set.linear_lookup(fields)
            got = tree.lookup(fields)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got.priority == expected.priority

    def test_routing_lookup(self, tiny_routing_set):
        tree = HyperCutsTree(tiny_routing_set, binth=2)
        hit = tree.lookup({"in_port": 1, "ipv4_dst": 0x0A141E05})
        assert hit is not None and hit.action_port == 12

    def test_replication_observed(self, small_acl_set):
        """Wildcard-heavy ACL rules replicate across leaves — the effect
        the paper's Section III.B calls out for HyperCuts."""
        stats = HyperCutsTree(small_acl_set, binth=4).stats()
        assert stats.replication_factor > 1.0
        assert stats.leaf_rule_refs > stats.rules

    def test_binth_controls_leaf_size(self, small_acl_set):
        shallow = HyperCutsTree(small_acl_set, binth=64).stats()
        deep = HyperCutsTree(small_acl_set, binth=4).stats()
        assert deep.nodes >= shallow.nodes
        assert deep.max_depth >= shallow.max_depth

    def test_stats_consistency(self, small_acl_set):
        stats = HyperCutsTree(small_acl_set, binth=8).stats()
        assert stats.leaves <= stats.nodes
        assert stats.rules == len(small_acl_set)

    def test_invalid_binth(self, small_acl_set):
        with pytest.raises(ValueError):
            HyperCutsTree(small_acl_set, binth=0)

    def test_missing_field_is_miss(self, tiny_routing_set):
        tree = HyperCutsTree(tiny_routing_set)
        assert tree.lookup({"in_port": 1}) is None
