"""Tests for worst-case provisioning across filter sets."""

import pytest

from repro.memory.cost_model import MemoryModel
from repro.memory.provisioning import provision_prototype
from repro.memory.report import architecture_memory_report
from repro.core.builder import build_prototype


@pytest.fixture(scope="module")
def two_pairs(request):
    from repro.filters.paper_data import MacFilterStats, RoutingFilterStats
    from repro.filters.synthetic import generate_mac_set, generate_routing_set

    small = (
        generate_mac_set(MacFilterStats("small", 151, 16, 26, 38, 55), seed=1),
        generate_routing_set(RoutingFilterStats("small", 400, 12, 40, 90), seed=2),
    )
    large = (
        generate_mac_set(MacFilterStats("large", 600, 40, 60, 200, 400), seed=3),
        generate_routing_set(RoutingFilterStats("large", 900, 20, 60, 300), seed=4),
    )
    return {"small": small, "large": large}


def test_envelope_at_least_each_individual(two_pairs):
    plan = provision_prototype(two_pairs)
    for mac, routing in two_pairs.values():
        individual = architecture_memory_report(
            build_prototype(mac, routing), MemoryModel.FULL_ARRAY
        )
        assert plan.total_bits >= individual.total_bits


def test_single_pair_equals_its_report(two_pairs):
    pair = {"small": two_pairs["small"]}
    plan = provision_prototype(pair)
    report = architecture_memory_report(
        build_prototype(*two_pairs["small"]), MemoryModel.FULL_ARRAY
    )
    assert plan.total_bits == report.total_bits


def test_sizing_filters_attribution(two_pairs):
    plan = provision_prototype(two_pairs)
    sizing = plan.sizing_filters()
    # The larger pair must force at least some structure maxima.
    assert sizing.get("large", 0) > 0
    assert sum(sizing.values()) == len(plan.structures)


def test_block_ram_plan(two_pairs):
    plan = provision_prototype(two_pairs)
    block_ram = plan.block_ram()
    assert block_ram.total_blocks > 0
    assert block_ram.fits_device()


def test_empty_rejected():
    with pytest.raises(ValueError):
        provision_prototype({})


def test_structure_names_per_table(two_pairs):
    plan = provision_prototype(two_pairs)
    names = {s.name for s in plan.structures}
    assert "t1/eth_dst/lo" in names
    assert "t3/ipv4_dst/hi" in names
    assert "t0/vlan_vid" in names
