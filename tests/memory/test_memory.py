"""Tests for the embedded-memory cost model."""

import pytest

from repro.algorithms.multibit_trie import MultibitTrie
from repro.core.builder import build_lookup_table, build_prototype
from repro.memory.cost_model import (
    MemoryModel,
    index_cost,
    metadata_label_bits,
    trie_group_cost,
)
from repro.memory.fpga import (
    DEVICE_M20K_BLOCKS,
    M20K_BITS,
    StratixVModel,
    plan_memory,
)
from repro.memory.node_format import FLAG_BITS, TrieNodeFormat, size_node_format
from repro.memory.report import architecture_memory_report, table_memory_report


def make_trie(entries) -> MultibitTrie:
    trie = MultibitTrie()
    for label, (value, length) in enumerate(entries, start=1):
        trie.insert(value, length, label)
    return trie


class TestNodeFormat:
    def test_record_layout(self):
        fmt = TrieNodeFormat(label_bits=13, pointer_bits=(10, 12, 0))
        assert fmt.record_bits(1) == FLAG_BITS + 13 + 10
        assert fmt.record_bits(3) == FLAG_BITS + 13  # no pointer at leaf level
        assert fmt.level_count == 3

    def test_level_bounds(self):
        fmt = TrieNodeFormat(label_bits=1, pointer_bits=(1, 0))
        with pytest.raises(ValueError):
            fmt.record_bits(0)
        with pytest.raises(ValueError):
            fmt.record_bits(3)

    def test_sizing_from_worst_case(self):
        small = make_trie([(0x0A14, 16)])
        big = make_trie([(i << 4, 12) for i in range(200)])
        fmt = size_node_format([small, big])
        # Label width sized for the big trie's 200 labels (+NO_LABEL).
        assert fmt.label_bits == 8
        # L2 pointer sized for the big trie's L3... both tries share it.
        assert fmt.pointer_bits[-1] == 0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            size_node_format([])

    def test_mixed_strides_rejected(self):
        with pytest.raises(ValueError):
            size_node_format([MultibitTrie(), MultibitTrie(strides=(8, 8))])


class TestTrieGroupCost:
    def test_sparse_counts_records(self):
        trie = make_trie([(0x0A00, 8)])  # 1 L1 path + 4 expanded L2 records
        costs, fmt = trie_group_cost({"t": trie})
        levels = costs["t"].levels
        assert [level.records for level in levels] == [1, 4, 0]
        assert costs["t"].total_bits == (
            1 * fmt.record_bits(1) + 4 * fmt.record_bits(2)
        )
        assert costs["t"].stored_nodes == 5

    def test_full_array_counts(self):
        trie = make_trie([(0x0A14, 16)])
        costs, _ = trie_group_cost({"t": trie}, MemoryModel.FULL_ARRAY)
        assert [level.records for level in costs["t"].levels] == [32, 32, 64]

    def test_kbits_property(self):
        trie = make_trie([(0x0A14, 16)])
        costs, _ = trie_group_cost({"t": trie})
        assert costs["t"].total_kbits == costs["t"].total_bits / 1024

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            trie_group_cost({})


class TestIndexCost:
    def test_counts_stages(self):
        from repro.core.index import IndexCalculator

        index = IndexCalculator(("a", "b"))
        index.add_rule((1, 2), 0, 0)
        index.add_rule((1, 3), 1, 0)
        size = index_cost(index, action_index_bits=8)
        assert size.entries == 1 + 2  # stage-1 stems + final tuples
        assert size.bits > 0

    def test_metadata_label_bits(self):
        from repro.core.index import IndexCalculator

        index = IndexCalculator(("a",))
        for i in range(5):
            index.add_rule((i + 1,), i, 0)
        assert metadata_label_bits(index) == 3  # 5 labels + NO_LABEL


class TestFpga:
    def test_single_block(self):
        plan = plan_memory("m", depth=100, width=20)
        assert plan.blocks == 1
        assert plan.capacity_bits == M20K_BITS

    def test_deep_memory_multiple_blocks(self):
        plan = plan_memory("m", depth=5000, width=20)
        assert plan.blocks == 5  # 1024 x 20 per block

    def test_wide_memory_striped(self):
        plan = plan_memory("m", depth=512, width=80)
        assert plan.blocks == 2  # two 40-bit columns

    def test_narrow_records_pack_deeper(self):
        # 10-bit records: 2048 per block.
        plan = plan_memory("m", depth=2048, width=10)
        assert plan.blocks == 1

    def test_empty_memory_zero_blocks(self):
        assert plan_memory("m", depth=0, width=20).blocks == 0

    def test_utilisation(self):
        plan = plan_memory("m", depth=512, width=40)
        assert plan.utilisation == 1.0

    def test_device_model(self):
        model = StratixVModel(plans=[plan_memory("a", 512, 40)] * 3)
        assert model.total_blocks == 3
        assert model.fits_device()
        assert 0 < model.device_fraction < 1
        huge = StratixVModel(
            plans=[plan_memory("x", DEVICE_M20K_BLOCKS * 600, 40)]
        )
        assert not huge.fits_device()


class TestReports:
    def test_table_report_structure(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        report = table_memory_report(table)
        kinds = {s.kind for s in report.structures}
        assert kinds == {"trie", "lut", "index", "actions"}
        assert report.total_bits == sum(s.bits for s in report.structures)
        assert report.trie_bits > 0
        assert report.node_format is not None

    def test_architecture_report_totals(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        report = architecture_memory_report(prototype)
        assert len(report.tables) == 4
        assert report.total_bits == sum(t.total_bits for t in report.tables)
        assert 0 < report.trie_bits < report.total_bits

    def test_full_array_not_smaller_than_sparse(self, small_mac_set):
        table = build_lookup_table(small_mac_set)
        sparse = table_memory_report(table, MemoryModel.SPARSE)
        full = table_memory_report(table, MemoryModel.FULL_ARRAY)
        assert full.trie_bits >= sparse.trie_bits

    def test_block_ram_plans_cover_structures(self, tiny_routing_set):
        table = build_lookup_table(tiny_routing_set)
        report = table_memory_report(table)
        plans = report.block_ram_plans()
        names = {p.name for p in plans}
        assert any("ipv4_dst/hi/L1" in n for n in names)
        assert any("in_port" in n for n in names)

    def test_report_to_table_renders(self, small_mac_set, small_routing_set):
        prototype = build_prototype(small_mac_set, small_routing_set)
        report = architecture_memory_report(prototype)
        text = report.to_table().to_markdown()
        assert "TOTAL" in text and "trie" in text
