#!/usr/bin/env python3
"""Embedded-memory capacity planning across all 16 backbone filters.

The paper's core question — how much on-chip memory does the multiple
table lookup need? — asked as a deployment question: for every router's
filter pair (MAC learning + Routing), what does the 4-table prototype
cost in bits and Stratix V M20K blocks, under both trie allocation
models, and does it fit the device?

``--rules N`` leaves the paper's filters behind and scales a synthetic
BGP-shaped routing table to N rules (10^5-10^6 is the interesting
range): it prints the per-structure breakdown of the built table next
to the byte inventory of the *sealed* shared-rule snapshot the sharded
runtime maps into ``/dev/shm`` (:mod:`repro.runtime.rulestate`), so the
paper's bit-cost model and the runtime's measured footprint can be read
side by side.  docs/memory-model.md walks through both outputs line by
line.

Run with::

    python examples/memory_planning.py            # three sample filters
    python examples/memory_planning.py --all      # all 16 (slow: builds
                                                  # the >180k-rule sets)
    python examples/memory_planning.py --rules 100000   # synthetic scale
"""

import sys

from repro.core.builder import build_prototype
from repro.filters.paper_data import FILTER_NAMES
from repro.filters.synthetic import mac_set, routing_set
from repro.memory.cost_model import MemoryModel
from repro.memory.report import architecture_memory_report
from repro.util.tables import TextTable


def plan(names) -> TextTable:
    table = TextTable(
        headers=[
            "filter",
            "rules (mac+route)",
            "sparse Mbits",
            "full-array Mbits",
            "MBT Mbits",
            "M20K blocks",
            "fits 5SGXMB6R3?",
        ],
        title="Prototype memory plan per backbone router",
    )
    for name in names:
        mac = mac_set(name)
        routing = routing_set(name)
        architecture = build_prototype(mac, routing)
        sparse = architecture_memory_report(architecture, MemoryModel.SPARSE)
        full = architecture_memory_report(architecture, MemoryModel.FULL_ARRAY)
        block_ram = full.block_ram()
        table.add_row(
            [
                name,
                f"{len(mac)}+{len(routing)}",
                round(sparse.total_mbits, 2),
                round(full.total_mbits, 2),
                round(full.trie_mbits, 2),
                block_ram.total_blocks,
                "yes" if block_ram.fits_device() else "NO",
            ]
        )
    return table


def plan_large(rules: int) -> None:
    """Per-structure model vs sealed shared-state bytes at ``rules``."""
    from repro.core.architecture import MultiTableLookupArchitecture
    from repro.core.builder import build_lookup_table
    from repro.filters.synthetic import large_rule_set
    from repro.memory.report import shared_state_report
    from repro.runtime import PipelineSpec
    from repro.runtime.rulestate import SharedRuleState

    rule_set = large_rule_set(rules)
    architecture = MultiTableLookupArchitecture(
        [build_lookup_table(rule_set)]
    )
    report = architecture_memory_report(architecture, MemoryModel.SPARSE)
    print(report.to_table().to_markdown())
    print()
    state = SharedRuleState.seal(
        architecture, PipelineSpec.snapshot(architecture)
    )
    try:
        print(shared_state_report(state.layout).to_table().to_markdown())
        print()
        print(
            f"{rules:,} rules: model {report.total_mbits:.1f} Mbit; "
            "sealed /dev/shm snapshot "
            f"{shared_state_report(state.layout).total_nbytes / 1e6:.1f} MB "
            "shared by all workers (per-worker incremental cost is the "
            "pages its traffic touches, not the table)."
        )
    finally:
        state.close()


def main() -> None:
    if "--rules" in sys.argv:
        plan_large(int(sys.argv[sys.argv.index("--rules") + 1]))
        return
    if "--all" in sys.argv:
        names = FILTER_NAMES
    else:
        names = ("bbra", "gozb", "yoza")
    table = plan(names)
    print(table.to_markdown())
    print()
    print(
        "note: the paper's quoted prototype (gozb MAC + regular routing) "
        "totals ~5 Mbit under full-array allocation."
    )


if __name__ == "__main__":
    main()
