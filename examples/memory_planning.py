#!/usr/bin/env python3
"""Embedded-memory capacity planning across all 16 backbone filters.

The paper's core question — how much on-chip memory does the multiple
table lookup need? — asked as a deployment question: for every router's
filter pair (MAC learning + Routing), what does the 4-table prototype
cost in bits and Stratix V M20K blocks, under both trie allocation
models, and does it fit the device?

Run with::

    python examples/memory_planning.py            # three sample filters
    python examples/memory_planning.py --all      # all 16 (slow: builds
                                                  # the >180k-rule sets)
"""

import sys

from repro.core.builder import build_prototype
from repro.filters.paper_data import FILTER_NAMES
from repro.filters.synthetic import mac_set, routing_set
from repro.memory.cost_model import MemoryModel
from repro.memory.report import architecture_memory_report
from repro.util.tables import TextTable


def plan(names) -> TextTable:
    table = TextTable(
        headers=[
            "filter",
            "rules (mac+route)",
            "sparse Mbits",
            "full-array Mbits",
            "MBT Mbits",
            "M20K blocks",
            "fits 5SGXMB6R3?",
        ],
        title="Prototype memory plan per backbone router",
    )
    for name in names:
        mac = mac_set(name)
        routing = routing_set(name)
        architecture = build_prototype(mac, routing)
        sparse = architecture_memory_report(architecture, MemoryModel.SPARSE)
        full = architecture_memory_report(architecture, MemoryModel.FULL_ARRAY)
        block_ram = full.block_ram()
        table.add_row(
            [
                name,
                f"{len(mac)}+{len(routing)}",
                round(sparse.total_mbits, 2),
                round(full.total_mbits, 2),
                round(full.trie_mbits, 2),
                block_ram.total_blocks,
                "yes" if block_ram.fits_device() else "NO",
            ]
        )
    return table


def main() -> None:
    if "--all" in sys.argv:
        names = FILTER_NAMES
    else:
        names = ("bbra", "gozb", "yoza")
    table = plan(names)
    print(table.to_markdown())
    print()
    print(
        "note: the paper's quoted prototype (gozb MAC + regular routing) "
        "totals ~5 Mbit under full-array allocation."
    )


if __name__ == "__main__":
    main()
