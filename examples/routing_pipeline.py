#!/usr/bin/env python3
"""Longest-prefix routing through the paper's two-table split.

Demonstrates the prototype's table organisation for the Routing
application: table 0 matches the ingress port with a hash LUT and writes
the port's label into pipeline metadata; table 1 matches (metadata, IPv4
destination) with two 16-bit multi-bit tries.  Also shows incremental
route updates: a more-specific route is installed live and traffic
shifts, then it is withdrawn and traffic falls back.

Run with::

    python examples/routing_pipeline.py
"""

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_per_field_pipeline
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import ExactMatch, Match, PrefixMatch


def dotted(value: int) -> str:
    return ".".join(str((value >> s) & 0xFF) for s in (24, 16, 8, 0))


def route(port: int, prefix: str, out: int) -> Rule:
    address, length_text = prefix.split("/")
    parts = [int(p) for p in address.split(".")]
    value = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]
    length = int(length_text)
    return Rule(
        fields={
            "in_port": ExactMatch(value=port, bits=32),
            "ipv4_dst": PrefixMatch(value=value, length=length, bits=32),
        },
        priority=length,
        action_port=out,
    )


def classify(architecture, port: int, dst: int) -> str:
    result = architecture.process({"in_port": port, "ipv4_dst": dst})
    if result.sent_to_controller:
        return "-> controller"
    return f"-> port {result.output_ports[0]}" if result.output_ports else "dropped"


def main() -> None:
    table = RuleSet(
        name="example-routes",
        application=Application.ROUTING,
        field_names=("in_port", "ipv4_dst"),
    )
    table.add(route(1, "0.0.0.0/0", 1))  # default
    table.add(route(1, "10.0.0.0/8", 2))
    table.add(route(1, "10.20.0.0/16", 3))
    table.add(route(2, "10.0.0.0/8", 4))

    tables = build_per_field_pipeline(table)
    architecture = MultiTableLookupArchitecture(tables)
    print(architecture.describe())
    print()

    probes = [
        (1, "10.20.30.40"),
        (1, "10.99.0.1"),
        (1, "192.0.2.1"),
        (2, "10.20.30.40"),
        (3, "10.20.30.40"),  # unknown ingress port
    ]

    def show(title: str) -> None:
        print(title)
        for port, address in probes:
            value = sum(
                int(p) << s for p, s in zip(address.split("."), (24, 16, 8, 0))
            )
            print(f"  port {port}, dst {address:15s} {classify(architecture, port, value)}")
        print()

    show("initial routing table:")

    # Install a more-specific /24 live (the incremental-update ability the
    # paper's update evaluation is about): the 10.20.30/24 traffic shifts.
    new_route = route(1, "10.20.30.0/24", 9)
    label_for_port1 = 1  # port 1 was the first unique in_port labelled
    tables[1].add(
        FlowEntry.build(
            match=Match(
                {
                    "metadata": ExactMatch(value=label_for_port1, bits=64),
                    "ipv4_dst": new_route.fields["ipv4_dst"],
                }
            ),
            priority=new_route.priority,
            instructions=[WriteActions([OutputAction(new_route.action_port)])],
        )
    )
    show("after installing 10.20.30.0/24 -> port 9 on port 1:")

    # Withdraw it again: traffic falls back to the /16.
    tables[1].remove(
        Match(
            {
                "metadata": ExactMatch(value=label_for_port1, bits=64),
                "ipv4_dst": new_route.fields["ipv4_dst"],
            }
        ),
        new_route.priority,
    )
    show("after withdrawing the /24:")


if __name__ == "__main__":
    main()
