#!/usr/bin/env python3
"""A 5-tuple ACL firewall: every matching method (EM + LPM + RM) at once.

The ACL application exercises the full Table II vocabulary in one lookup
table: IPv4 prefixes (LPM tries), port ranges (the elementary-interval
engine) and the protocol byte (a hash LUT) — and compares the result and
memory against a TCAM holding the same rules (range expansion included).

Run with::

    python examples/acl_firewall.py
"""

from repro.algorithms.tcam import Tcam
from repro.core.builder import build_lookup_table
from repro.filters.rule import Application, Rule, RuleSet
from repro.memory.report import table_memory_report
from repro.openflow.match import ExactMatch, PrefixMatch, RangeMatch
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.util.units import format_bits

DROP_PORT = 0
ALLOW_PORT = 1


def build_policy() -> RuleSet:
    acl = RuleSet(
        name="edge-firewall",
        application=Application.ACL,
        field_names=("ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst", "ip_proto"),
    )
    # 1. Block a bad neighbourhood outright.
    acl.add(
        Rule(
            fields={"ipv4_src": PrefixMatch(0xC6336400, 24, 32)},  # 198.51.100/24
            priority=100,
            action_port=DROP_PORT,
        )
    )
    # 2. Allow web traffic to the DMZ.
    acl.add(
        Rule(
            fields={
                "ipv4_dst": PrefixMatch(0xCB007100, 24, 32),  # 203.0.113/24
                "tcp_dst": RangeMatch(80, 80, 16),
                "ip_proto": ExactMatch(6, 8),
            },
            priority=90,
            action_port=ALLOW_PORT,
        )
    )
    # 3. Allow ephemeral return traffic.
    acl.add(
        Rule(
            fields={
                "tcp_src": RangeMatch(80, 80, 16),
                "tcp_dst": RangeMatch(49152, 65535, 16),
                "ip_proto": ExactMatch(6, 8),
            },
            priority=80,
            action_port=ALLOW_PORT,
        )
    )
    # 4. Block all low ports from anywhere.
    acl.add(
        Rule(
            fields={"tcp_dst": RangeMatch(0, 1023, 16)},
            priority=50,
            action_port=DROP_PORT,
        )
    )
    # 5. Rate-limit an awkward registered-port band (a range that does not
    #    align to prefixes — it costs several TCAM words but one interval
    #    entry in the decomposition's range engine).
    acl.add(
        Rule(
            fields={
                "tcp_dst": RangeMatch(1024, 5000, 16),
                "ip_proto": ExactMatch(17, 8),
            },
            priority=40,
            action_port=DROP_PORT,
        )
    )
    # 6. Default allow.
    acl.add(Rule(fields={}, priority=1, action_port=ALLOW_PORT))
    return acl


def main() -> None:
    acl = build_policy()
    table = build_lookup_table(acl)
    tcam = Tcam.from_rule_set(acl)

    print(f"policy: {len(acl)} rules")
    probes = [
        ("web to DMZ", {"ipv4_src": 0x0A000001, "ipv4_dst": 0xCB007105, "tcp_src": 51000, "tcp_dst": 80, "ip_proto": 6}),
        ("ssh anywhere", {"ipv4_src": 0x0A000001, "ipv4_dst": 0x08080808, "tcp_src": 51000, "tcp_dst": 22, "ip_proto": 6}),
        ("from bad /24", {"ipv4_src": 0xC6336407, "ipv4_dst": 0xCB007105, "tcp_src": 51000, "tcp_dst": 80, "ip_proto": 6}),
        ("return traffic", {"ipv4_src": 0xCB007105, "ipv4_dst": 0x0A000001, "tcp_src": 80, "tcp_dst": 50000, "ip_proto": 6}),
        ("plain udp", {"ipv4_src": 0x0A000001, "ipv4_dst": 0x08080808, "tcp_src": 5000, "tcp_dst": 5001, "ip_proto": 17}),
    ]
    for name, fields in probes:
        hit = table.lookup(fields)
        verdict = "allow" if hit and hit_port(hit) == ALLOW_PORT else "DROP"
        print(f"  {name:15s} -> {verdict} (priority {hit.priority if hit else '-'})")

    # Differential check against the TCAM on a random trace.
    generator = PacketGenerator(TraceConfig(seed=3))
    matches = [rule.to_match() for rule in acl]
    agree = 0
    trace = generator.field_trace(matches, 500, hit_rate=0.6, fill_fields=acl.field_names)
    for fields in trace:
        a = table.lookup(fields)
        b = tcam.lookup(fields)
        if (a is None) == (b is None) and (a is None or a.priority == b.priority):
            agree += 1
    print(f"\nTCAM agreement on 500 random packets: {agree}/500")

    report = table_memory_report(table)
    print(
        f"memory: decomposition {format_bits(report.total_bits)} vs TCAM "
        f"{format_bits(tcam.size().bits)} "
        f"({len(tcam)} ternary words for {len(acl)} rules — "
        f"range expansion x{tcam.expansion_factor:.1f})"
    )


def hit_port(entry) -> int:
    from repro.openflow.actions import OutputAction
    from repro.openflow.instructions import WriteActions

    write = entry.instructions.get(WriteActions)
    assert isinstance(write, WriteActions)
    (action,) = write.actions
    assert isinstance(action, OutputAction)
    return action.port


if __name__ == "__main__":
    main()
