#!/usr/bin/env python3
"""A MAC-learning switch on top of the decomposition lookup table.

The classic SDN application from the paper's motivation: the switch
starts empty; unknown destinations go to the controller, which installs a
(VLAN, MAC) -> port flow after observing the source; subsequent packets
to that address forward in the data plane.  Wire-format frames are
parsed with the real packet codecs.

Run with::

    python examples/mac_learning_switch.py
"""

from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.actions import OutputAction
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import WriteActions
from repro.openflow.match import ExactMatch, Match
from repro.packet.builder import build_packet
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    IP_PROTO_UDP,
    Ethernet,
    IPv4,
    Udp,
    Vlan,
)
from repro.packet.packet import Packet
from repro.packet.parser import parse_packet

VLAN_PRESENT = 0x1000


class LearningSwitch:
    """Data plane (decomposition table) + a trivial learning controller."""

    def __init__(self) -> None:
        self.table = OpenFlowLookupTable(("vlan_vid", "eth_dst"))
        self.packet_ins = 0
        self.forwarded = 0

    def _learn(self, vlan: int, mac: int, port: int) -> None:
        match = Match(
            {
                "vlan_vid": ExactMatch(vlan | VLAN_PRESENT, 13),
                "eth_dst": ExactMatch(mac, 48),
            }
        )
        self.table.add(
            FlowEntry.build(
                match=match,
                priority=1,
                instructions=[WriteActions([OutputAction(port)])],
            )
        )

    def receive(self, frame: bytes, in_port: int) -> str:
        packet = parse_packet(frame, in_port=in_port)
        fields = packet.match_fields()
        eth = packet.headers[0]
        vlan_header = packet.headers[1]
        assert isinstance(eth, Ethernet) and isinstance(vlan_header, Vlan)

        # The controller learns the *source* location on every packet.
        self._learn(vlan_header.vid, eth.src, in_port)

        hit = self.table.lookup(fields)
        if hit is None:
            self.packet_ins += 1
            return "flood (unknown destination, packet-in to controller)"
        self.forwarded += 1
        action = next(iter(hit.instructions)).describe()
        return f"forward via {action}"


def frame(src: int, dst: int, vlan: int) -> bytes:
    return build_packet(
        Packet(
            headers=(
                Ethernet(dst=dst, src=src, ethertype=ETHERTYPE_VLAN),
                Vlan(vid=vlan, ethertype=ETHERTYPE_IPV4),
                IPv4(src=0x0A000001, dst=0x0A000002, proto=IP_PROTO_UDP),
                Udp(src_port=5000, dst_port=5001),
            )
        )
    )


def main() -> None:
    switch = LearningSwitch()
    host_a, host_b, host_c = 0x00AAAAAAAAAA, 0x00BBBBBBBBBB, 0x00CCCCCCCCCC

    events = [
        ("A->B", frame(host_a, host_b, vlan=10), 1),
        ("B->A", frame(host_b, host_a, vlan=10), 2),
        ("A->B", frame(host_a, host_b, vlan=10), 1),  # now known
        ("C->A", frame(host_c, host_a, vlan=10), 3),
        ("A->C", frame(host_a, host_c, vlan=10), 1),
        ("A->B vlan20", frame(host_a, host_b, vlan=20), 1),  # other VLAN: unknown
    ]
    for name, data, port in events:
        outcome = switch.receive(data, in_port=port)
        print(f"{name:14s} (port {port}): {outcome}")

    print()
    print(
        f"table now holds {len(switch.table)} learned entries; "
        f"{switch.packet_ins} packet-ins, {switch.forwarded} forwarded"
    )


if __name__ == "__main__":
    main()
