#!/usr/bin/env python3
"""Throughput runtime: batched, cached, sharded classification.

Builds one decomposition lookup table from a synthetic routing set
(schema widened with an unconstrained ``tcp_src`` so the wide scenario
bites), then replays every scenario in the catalog (uniform /
uniform-wide / zipf / bursty / churn) through four execution paths —
per-packet decomposition lookup, the batched path, the batched path
behind a microflow cache, and the full two-tier microflow+megaflow
stack — and prints packets/sec for each.  A final section fans large
batches across a 4-worker :class:`ShardedBatchPipeline`.

Run with::

    PYTHONPATH=src python examples/throughput_runtime.py
"""

import os
import time

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.filters.paper_data import RoutingFilterStats
from repro.filters.synthetic import generate_routing_set
from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    ShardedBatchPipeline,
    run_workload,
    widen_rule_set,
)
from repro.util.tables import TextTable

PACKETS = 20_000
FLOWS = 128


def replay(rule_set, workload, cache_capacity, batch_size, megaflow_capacity=None):
    arch = MultiTableLookupArchitecture([build_lookup_table(rule_set)])
    runner = BatchPipeline(
        arch,
        cache_capacity=cache_capacity,
        megaflow_capacity=megaflow_capacity,
    )
    start = time.perf_counter()
    stats = run_workload(runner, workload, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return stats, stats.packets / elapsed


def main() -> None:
    rules = widen_rule_set(
        generate_routing_set(RoutingFilterStats("demo", 2000, 12, 40, 90), seed=7)
    )
    print(f"rule set: {len(rules.rules)} routing rules, schema {rules.field_names}")

    table = TextTable(
        headers=[
            "scenario",
            "per-packet pkts/s",
            "batch pkts/s",
            "cached pkts/s",
            "megaflow pkts/s",
            "uflow hit",
            "mflow hit",
        ],
        title=f"Throughput over {PACKETS} packets ({FLOWS} flows)",
    )
    for name, builder in SCENARIOS.items():
        workload = builder(rules, packet_count=PACKETS, flow_count=FLOWS)
        _, scalar_pps = replay(rules, workload, cache_capacity=None, batch_size=1)
        _, batch_pps = replay(rules, workload, cache_capacity=None, batch_size=256)
        cached_stats, cached_pps = replay(
            rules, workload, cache_capacity=4096, batch_size=256
        )
        mega_stats, mega_pps = replay(
            rules,
            workload,
            cache_capacity=4096,
            batch_size=256,
            megaflow_capacity=8192,
        )
        table.add_row(
            [
                name,
                f"{scalar_pps:,.0f}",
                f"{batch_pps:,.0f}",
                f"{cached_pps:,.0f}",
                f"{mega_pps:,.0f}",
                f"{cached_stats.cache_hit_rate:.2f}",
                f"{mega_stats.megaflow_hit_rate:.2f}",
            ]
        )
    print(table.to_markdown())

    workload = SCENARIOS["zipf"](rules, packet_count=PACKETS, flow_count=FLOWS)
    with ShardedBatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(rules)]),
        workers=4,
        cache_capacity=None,
    ) as sharded:
        start = time.perf_counter()
        stats = run_workload(sharded, workload, batch_size=2048)
        sharded_pps = stats.packets / (time.perf_counter() - start)
    print(
        f"\nsharded (4 workers, {os.cpu_count()} cpu(s), batch 2048, no "
        f"caches): {sharded_pps:,.0f} pkts/s"
    )


if __name__ == "__main__":
    main()
