#!/usr/bin/env python3
"""Throughput runtime: batched, cached, sharded classification.

Builds one decomposition lookup table from a synthetic routing set
(schema widened with an unconstrained ``tcp_src`` so the wide scenario
bites), then replays every scenario in the catalog (uniform /
uniform-wide / zipf / bursty / churn) through four execution paths —
per-packet decomposition lookup, the batched path, the batched path
behind a microflow cache, and the full two-tier microflow+megaflow
stack — and prints packets/sec for each.  A final section fans large
batches across a 4-worker :class:`ShardedBatchPipeline`.

``--rules N`` swaps the 2k demo set for a synthetic BGP-shaped table of
N rules (see :func:`repro.filters.synthetic.large_rule_set`) and runs
the sharded section twice — workers rebuilding private replicas vs
workers attaching to one sealed shared snapshot (``shared_rules=True``,
:mod:`repro.runtime.rulestate`) — printing worker spin-up time for
both.  docs/architecture.md describes the runtime layer stack this
example walks; docs/memory-model.md covers what sharing the sealed
state saves.

Run with::

    PYTHONPATH=src python examples/throughput_runtime.py
    PYTHONPATH=src python examples/throughput_runtime.py --rules 100000
    PYTHONPATH=src python examples/throughput_runtime.py --packets 4000
"""

import os
import sys
import time

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.filters.paper_data import RoutingFilterStats
from repro.filters.synthetic import generate_routing_set, large_rule_set
from repro.runtime import (
    SCENARIOS,
    BatchPipeline,
    ShardedBatchPipeline,
    run_workload,
    widen_rule_set,
)
from repro.util.tables import TextTable

PACKETS = 20_000
FLOWS = 128


def _flag(name: str, default: int) -> int:
    if name in sys.argv:
        return int(sys.argv[sys.argv.index(name) + 1])
    return default


def replay(rule_set, workload, cache_capacity, batch_size, megaflow_capacity=None):
    arch = MultiTableLookupArchitecture([build_lookup_table(rule_set)])
    runner = BatchPipeline(
        arch,
        cache_capacity=cache_capacity,
        megaflow_capacity=megaflow_capacity,
    )
    start = time.perf_counter()
    stats = run_workload(runner, workload, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return stats, stats.packets / elapsed


def scenario_table(rules, packets: int) -> None:
    table = TextTable(
        headers=[
            "scenario",
            "per-packet pkts/s",
            "batch pkts/s",
            "cached pkts/s",
            "megaflow pkts/s",
            "uflow hit",
            "mflow hit",
        ],
        title=f"Throughput over {packets} packets ({FLOWS} flows)",
    )
    for name, builder in SCENARIOS.items():
        workload = builder(rules, packet_count=packets, flow_count=FLOWS)
        _, scalar_pps = replay(rules, workload, cache_capacity=None, batch_size=1)
        _, batch_pps = replay(rules, workload, cache_capacity=None, batch_size=256)
        cached_stats, cached_pps = replay(
            rules, workload, cache_capacity=4096, batch_size=256
        )
        mega_stats, mega_pps = replay(
            rules,
            workload,
            cache_capacity=4096,
            batch_size=256,
            megaflow_capacity=8192,
        )
        table.add_row(
            [
                name,
                f"{scalar_pps:,.0f}",
                f"{batch_pps:,.0f}",
                f"{cached_pps:,.0f}",
                f"{mega_pps:,.0f}",
                f"{cached_stats.cache_hit_rate:.2f}",
                f"{mega_stats.megaflow_hit_rate:.2f}",
            ]
        )
    print(table.to_markdown())


def sharded_section(rules, packets: int, shared_rules: bool) -> None:
    workload = SCENARIOS["zipf"](rules, packet_count=packets, flow_count=FLOWS)
    mode = "shared sealed state" if shared_rules else "private replicas"
    with ShardedBatchPipeline(
        MultiTableLookupArchitecture([build_lookup_table(rules)]),
        workers=4,
        cache_capacity=None,
        shared_rules=shared_rules,
    ) as sharded:
        trace = workload.events[0][1]
        start = time.perf_counter()
        sharded.process_batch(trace[:64])  # triggers the fleet spawn
        spinup = time.perf_counter() - start
        start = time.perf_counter()
        stats = run_workload(sharded, workload, batch_size=2048)
        sharded_pps = stats.packets / (time.perf_counter() - start)
    print(
        f"sharded, {mode} (4 workers, {os.cpu_count()} cpu(s), batch "
        f"2048, no caches): spin-up {spinup:.3f}s, {sharded_pps:,.0f} pkts/s"
    )


def main() -> None:
    packets = _flag("--packets", PACKETS)
    large = _flag("--rules", 0)
    if large:
        rules = large_rule_set(large)
        print(
            f"rule set: {len(rules.rules):,} synthetic BGP-shaped rules, "
            f"schema {rules.field_names}"
        )
        # At this scale the per-packet scalar sweep would dominate the
        # demo; go straight to the sharded spin-up comparison the
        # shared state exists for.
        sharded_section(rules, packets, shared_rules=False)
        sharded_section(rules, packets, shared_rules=True)
        return
    rules = widen_rule_set(
        generate_routing_set(RoutingFilterStats("demo", 2000, 12, 40, 90), seed=7)
    )
    print(f"rule set: {len(rules.rules)} routing rules, schema {rules.field_names}")
    scenario_table(rules, packets)
    print()
    sharded_section(rules, packets, shared_rules=False)


if __name__ == "__main__":
    main()
