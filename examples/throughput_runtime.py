#!/usr/bin/env python3
"""Throughput runtime: batched, cached classification over the scenarios.

Builds one decomposition lookup table from a synthetic routing set, then
replays every scenario in the catalog (uniform / zipf / bursty / churn)
through three execution paths — per-packet decomposition lookup, the
batched path, and the batched path behind a microflow cache — and prints
packets/sec for each.

Run with::

    PYTHONPATH=src python examples/throughput_runtime.py
"""

import time

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.builder import build_lookup_table
from repro.filters.paper_data import RoutingFilterStats
from repro.filters.synthetic import generate_routing_set
from repro.runtime import SCENARIOS, BatchPipeline, run_workload
from repro.util.tables import TextTable

PACKETS = 20_000
FLOWS = 128


def replay(rule_set, workload, cache_capacity, batch_size):
    arch = MultiTableLookupArchitecture([build_lookup_table(rule_set)])
    runner = BatchPipeline(arch, cache_capacity=cache_capacity)
    start = time.perf_counter()
    stats = run_workload(runner, workload, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return stats, stats.packets / elapsed


def main() -> None:
    rules = generate_routing_set(
        RoutingFilterStats("demo", 2000, 12, 40, 90), seed=7
    )
    print(f"rule set: {len(rules.rules)} routing rules, schema {rules.field_names}")

    table = TextTable(
        headers=[
            "scenario",
            "per-packet pkts/s",
            "batch pkts/s",
            "cached pkts/s",
            "hit rate",
        ],
        title=f"Throughput over {PACKETS} packets ({FLOWS} flows)",
    )
    for name, builder in SCENARIOS.items():
        workload = builder(rules, packet_count=PACKETS, flow_count=FLOWS)
        _, scalar_pps = replay(rules, workload, cache_capacity=None, batch_size=1)
        _, batch_pps = replay(rules, workload, cache_capacity=None, batch_size=256)
        cached_stats, cached_pps = replay(
            rules, workload, cache_capacity=4096, batch_size=256
        )
        table.add_row(
            [
                name,
                f"{scalar_pps:,.0f}",
                f"{batch_pps:,.0f}",
                f"{cached_pps:,.0f}",
                f"{cached_stats.cache_hit_rate:.2f}",
            ]
        )
    print(table.to_markdown())


if __name__ == "__main__":
    main()
