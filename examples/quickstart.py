#!/usr/bin/env python3
"""Quickstart: build a lookup table, classify packets, cost its memory.

Run with::

    python examples/quickstart.py
"""

from repro.core.builder import build_lookup_table
from repro.filters.synthetic import mac_sets
from repro.memory.report import table_memory_report
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.update.controller_sim import SoftwareController
from repro.util.units import format_bits


def main() -> None:
    # 1. A calibrated filter set — same statistics as the paper's Table III.
    mac = mac_sets(("bbra",))["bbra"]
    print(f"loaded {mac.summary()}")

    # 2. The paper's architecture: parallel single-field engines (VLAN LUT,
    #    three 16-bit Ethernet tries), label combination, action table.
    table = build_lookup_table(mac)
    engines = ", ".join(f"{e.name} ({e.kind})" for e in table.partition_engines())
    print(f"built one OpenFlow lookup table with engines: {engines}")

    # 3. Classify a small packet trace (70 % drawn from the rules).
    generator = PacketGenerator(TraceConfig(seed=1))
    matches = [rule.to_match() for rule in mac]
    hits = 0
    for fields in generator.field_trace(matches, 1000, hit_rate=0.7):
        if table.lookup(fields) is not None:
            hits += 1
    print(f"classified 1000 packets: {hits} hits, {1000 - hits} misses")

    # 4. Memory cost (Section V.A of the paper).
    report = table_memory_report(table)
    print("memory breakdown:")
    for structure in report.structures:
        print(f"  {structure.name:12s} {structure.kind:8s} {format_bits(structure.bits)}")
    print(f"  total: {format_bits(report.total_bits)}")

    # 5. Update cost with vs without the label method (Section V.B).
    comparison = SoftwareController().compare(mac)
    print(
        f"update cycles: {comparison.initial.cycles} without labels, "
        f"{comparison.optimised.cycles} with labels "
        f"({comparison.saving_percent:.1f}% saved)"
    )


if __name__ == "__main__":
    main()
