"""Behavioural TCAM model (the hardware baseline of Table I).

A Ternary CAM stores (value, care-mask) words and returns the first
matching entry by physical order — very fast lookup, but every ternary
bit costs roughly twice an SRAM bit, ranges must be expanded into
prefixes, and rule updates may shift entries.  The model quantifies all
three so the benchmarks can put numbers on the paper's qualitative
comparison ("Memory Limitation / Poor Flexibility").
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.algorithms.base import StructureSize
from repro.filters.rule import Rule, RuleSet
from repro.openflow.fields import REGISTRY
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    MaskedMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import mask_of, prefix_mask

#: SRAM-equivalent cost of one ternary bit (a TCAM cell holds value+mask).
TCAM_CELL_FACTOR = 2


def range_to_prefixes(low: int, high: int, bits: int) -> list[tuple[int, int]]:
    """Minimal prefix cover of the inclusive range ``[low, high]``.

    The classic split used when loading ranges into TCAM; a w-bit range
    needs at most ``2w - 2`` prefixes.  Returned prefixes are canonical
    ``(value, length)`` pairs in ascending value order.

    >>> range_to_prefixes(1, 6, 4)
    [(1, 4), (2, 3), (4, 3), (6, 4)]
    """
    if not 0 <= low <= high <= mask_of(bits):
        raise ValueError(f"range [{low}, {high}] invalid for {bits} bits")
    prefixes: list[tuple[int, int]] = []
    cursor = low
    while cursor <= high:
        alignment = cursor & -cursor if cursor else 1 << bits
        remaining = high - cursor + 1
        largest_fit = 1 << (remaining.bit_length() - 1)
        size = min(alignment, largest_fit)
        length = bits - (size.bit_length() - 1)
        prefixes.append((cursor, length))
        cursor += size
    return prefixes


@dataclass(frozen=True)
class TcamEntry:
    """One ternary word: ``(packet & mask) == value`` matches."""

    value: int
    mask: int
    rule_index: int

    def matches(self, key: int) -> bool:
        return (key & self.mask) == self.value


def _ternary_forms(predicate: FieldMatch, bits: int) -> list[tuple[int, int]]:
    """All (value, mask) ternary encodings of one field predicate."""
    if isinstance(predicate, WildcardMatch):
        return [(0, 0)]
    if isinstance(predicate, ExactMatch):
        return [(predicate.value, mask_of(bits))]
    if isinstance(predicate, PrefixMatch):
        mask = prefix_mask(predicate.length, bits)
        return [(predicate.value & mask, mask)]
    if isinstance(predicate, MaskedMatch):
        return [(predicate.value, predicate.mask)]
    if isinstance(predicate, RangeMatch):
        return [
            (value, prefix_mask(length, bits))
            for value, length in range_to_prefixes(predicate.low, predicate.high, bits)
        ]
    raise TypeError(f"unsupported predicate {type(predicate).__name__}")


class Tcam:
    """A priority-ordered TCAM over the concatenation of a field schema."""

    def __init__(self, field_names: Iterable[str]):
        self.field_names = tuple(field_names)
        self.field_bits = {name: REGISTRY[name].bits for name in self.field_names}
        self.word_bits = sum(self.field_bits.values())
        self._entries: list[TcamEntry] = []
        self._rules: list[Rule] = []

    @classmethod
    def from_rule_set(cls, rule_set: RuleSet) -> "Tcam":
        """Load a rule set, highest priority first (= physical order)."""
        tcam = cls(rule_set.field_names)
        for rule in sorted(rule_set, key=lambda r: -r.priority):
            tcam.add_rule(rule)
        return tcam

    def add_rule(self, rule: Rule) -> int:
        """Append a rule after any already-stored (higher-priority) rules.

        Returns the number of TCAM words the rule occupies — the
        cross-product of its per-field range-to-prefix expansions.
        """
        rule_index = len(self._rules)
        self._rules.append(rule)
        words: list[tuple[int, int]] = [(0, 0)]
        for name in self.field_names:
            bits = self.field_bits[name]
            forms = _ternary_forms(rule.predicate(name, bits), bits)
            words = [
                ((value << bits) | form_value, (mask << bits) | form_mask)
                for value, mask in words
                for form_value, form_mask in forms
            ]
        for value, mask in words:
            self._entries.append(
                TcamEntry(value=value, mask=mask, rule_index=rule_index)
            )
        return len(words)

    def _concat_key(self, packet_fields: Mapping[str, int]) -> int | None:
        key = 0
        for name in self.field_names:
            value = packet_fields.get(name)
            if value is None:
                return None
            key = (key << self.field_bits[name]) | value
        return key

    def lookup(self, packet_fields: Mapping[str, int]) -> Rule | None:
        """First-matching-entry semantics (physical order = priority)."""
        key = self._concat_key(packet_fields)
        if key is None:
            return None
        for entry in self._entries:
            if entry.matches(key):
                return self._rules[entry.rule_index]
        return None

    def __len__(self) -> int:
        """Number of occupied TCAM words (after range expansion)."""
        return len(self._entries)

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    @property
    def expansion_factor(self) -> float:
        """TCAM words per rule (1.0 when no range expansion occurred)."""
        return len(self._entries) / len(self._rules) if self._rules else 0.0

    def size(self) -> StructureSize:
        """SRAM-equivalent bits: words x word width x the TCAM cell factor."""
        return StructureSize(
            entries=len(self._entries),
            bits=len(self._entries) * self.word_bits * TCAM_CELL_FACTOR,
        )
