"""Common interface of single-field search structures."""

from __future__ import annotations

from dataclasses import dataclass

#: The reserved label meaning "no stored entry matched" — equivalently the
#: wildcard label a rule gets for a partition it leaves unconstrained.
NO_LABEL = 0


@dataclass(frozen=True)
class StructureSize:
    """Storage accounting for one search structure.

    ``entries`` counts stored records/slots; ``bits`` is the raw memory
    footprint under the active cost model.  The memory package refines
    this to per-level granularity for tries.
    """

    entries: int
    bits: int


class FieldSearchAlgorithm:
    """A one-dimensional search structure mapping field values to labels.

    Implementations store ``(key, label)`` associations where the key kind
    depends on the structure (exact value, prefix, range) and ``lookup``
    returns the label of the best match — plus, via
    :meth:`lookup_all`, every matching label, which the index calculation
    needs for correct decomposition (see :mod:`repro.core.index`).
    """

    #: width in bits of the keys this structure searches.
    key_bits: int

    def lookup(self, value: int) -> int:
        """Label of the most specific match for ``value`` (NO_LABEL if none)."""
        raise NotImplementedError

    def lookup_all(self, value: int) -> tuple[int, ...]:
        """All matching labels, most specific first (empty if none)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of stored (unique) entries."""
        raise NotImplementedError
