"""Tuple Space Search (the hashing-based baseline of Table I).

TSS (Srinivasan et al., SIGCOMM'99 — the paper's reference [12]) groups
rules by their *tuple*: the vector of prefix lengths they use per field.
All rules of one tuple can live in a single hash table keyed by the
masked field concatenation, so lookup probes one hash table per occupied
tuple.  Fast when few tuples exist; memory and probe count explode as
tuple diversity grows — the trade-off Table I summarises as "Fast Lookup
/ Collision issue, Memory explosion".

Range predicates are loaded via range-to-prefix expansion, the standard
trick (each expanded prefix becomes a separate tuple member).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.algorithms.base import StructureSize
from repro.algorithms.tcam import range_to_prefixes
from repro.filters.rule import Rule, RuleSet
from repro.openflow.fields import REGISTRY
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import prefix_mask


def _prefix_forms(predicate: FieldMatch, bits: int) -> list[tuple[int, int]]:
    """Express one predicate as canonical prefixes (range-expanded)."""
    if isinstance(predicate, WildcardMatch):
        return [(0, 0)]
    if isinstance(predicate, ExactMatch):
        return [(predicate.value, bits)]
    if isinstance(predicate, PrefixMatch):
        return [(predicate.value, predicate.length)]
    if isinstance(predicate, RangeMatch):
        # range_to_prefixes yields canonical (aligned) prefix values.
        return range_to_prefixes(predicate.low, predicate.high, bits)
    raise TypeError(f"unsupported predicate {type(predicate).__name__}")


class TupleSpaceSearch:
    """Tuple Space Search classifier over a fixed field schema."""

    def __init__(self, field_names: tuple[str, ...]):
        self.field_names = field_names
        self.field_bits = tuple(REGISTRY[name].bits for name in field_names)
        #: tuple (lengths vector) -> hash table: masked key -> best rule
        self._tables: dict[tuple[int, ...], dict[tuple[int, ...], Rule]] = {}
        self._rule_count = 0
        self._entry_count = 0

    @classmethod
    def from_rule_set(cls, rule_set: RuleSet) -> "TupleSpaceSearch":
        tss = cls(tuple(rule_set.field_names))
        for rule in rule_set:
            tss.add_rule(rule)
        return tss

    def add_rule(self, rule: Rule) -> int:
        """Insert a rule; returns the number of hash entries created."""
        self._rule_count += 1
        created = 0
        # Cross-product of per-field prefix forms (ranges may expand).
        combos: list[tuple[tuple[int, ...], tuple[int, ...]]] = [((), ())]
        for name, bits in zip(self.field_names, self.field_bits):
            forms = _prefix_forms(rule.predicate(name, bits), bits)
            combos = [
                (lengths + (length,), values + (value,))
                for lengths, values in combos
                for value, length in forms
            ]
        for lengths, values in combos:
            table = self._tables.setdefault(lengths, {})
            existing = table.get(values)
            # Keep only the best rule per masked key: the higher priority
            # wins, which preserves lookup semantics with fewer entries.
            if existing is None or rule.priority > existing.priority:
                if existing is None:
                    created += 1
                    self._entry_count += 1
                table[values] = rule
        return created

    def lookup(self, packet_fields: Mapping[str, int]) -> Rule | None:
        """Probe every occupied tuple; return the best-priority hit."""
        best: Rule | None = None
        for lengths, table in self._tables.items():
            key = []
            for name, bits, length in zip(
                self.field_names, self.field_bits, lengths
            ):
                value = packet_fields.get(name)
                if value is None:
                    break
                key.append(value & prefix_mask(length, bits))
            else:
                rule = table.get(tuple(key))
                if rule is not None and (best is None or rule.priority > best.priority):
                    best = rule
        return best

    @property
    def tuple_count(self) -> int:
        """Occupied tuples = hash probes per lookup."""
        return len(self._tables)

    @property
    def entry_count(self) -> int:
        return self._entry_count

    def __len__(self) -> int:
        return self._rule_count

    def size(self, occupancy: float = 0.75) -> StructureSize:
        """Memory: provisioned hash slots x (masked key + pointer) bits."""
        import math

        key_bits = sum(self.field_bits)
        pointer_bits = 32
        slots = sum(
            math.ceil(len(table) / occupancy) for table in self._tables.values()
        )
        return StructureSize(
            entries=self._entry_count,
            bits=slots * (key_bits + pointer_bits),
        )
