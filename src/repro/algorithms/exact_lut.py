"""Hash-based exact-match lookup table (EM fields).

The paper handles exact-matching fields (VLAN ID, ingress port, ...) with
"a simple hash-based Lookup table (LUT)" — Section IV.B.  Tables III/IV
show these fields have very few unique values (at most 209, the gozb VLAN
IDs), so a LUT storing one ``(value, label)`` slot per unique value is
tiny.

The memory model mirrors that: ``slot_bits = key_bits + label_bits``, one
slot per stored value, plus a configurable hash-occupancy factor (real
hash tables cannot run at 100 % load; the default 0.75 matches a
conventional open-addressing dimensioning).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from repro.algorithms.base import NO_LABEL, FieldSearchAlgorithm, StructureSize
from repro.util.bits import bits_needed, mask_of


class ExactMatchLut(FieldSearchAlgorithm):
    """Exact-value -> label lookup table."""

    def __init__(self, key_bits: int, occupancy: float = 0.75):
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        if not 0.0 < occupancy <= 1.0:
            raise ValueError(f"occupancy {occupancy} outside (0, 1]")
        self.key_bits = key_bits
        self.occupancy = occupancy
        self._slots: dict[int, int] = {}

    def insert(self, value: int, label: int) -> None:
        """Associate ``value`` with ``label`` (idempotent per value)."""
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(
                f"value {value:#x} does not fit in {self.key_bits} bits"
            )
        if label == NO_LABEL:
            raise ValueError("cannot insert the reserved NO_LABEL")
        existing = self._slots.get(value)
        if existing is not None and existing != label:
            raise ValueError(
                f"value {value:#x} already stored with label {existing}"
            )
        self._slots[value] = label

    def remove(self, value: int) -> bool:
        """Delete a stored value; True if it was present."""
        return self._slots.pop(value, None) is not None

    def lookup(self, value: int) -> int:
        return self._slots.get(value, NO_LABEL)

    def lookup_all(self, value: int) -> tuple[int, ...]:
        label = self.lookup(value)
        return (label,) if label != NO_LABEL else ()

    def __len__(self) -> int:
        return len(self._slots)

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate stored ``(value, label)`` pairs (sealing support)."""
        yield from self._slots.items()

    @property
    def label_bits(self) -> int:
        return bits_needed(len(self._slots) + 1)

    def size(self, label_bits: int | None = None) -> StructureSize:
        """Memory footprint: provisioned slots x (key + label) bits."""
        label_width = self.label_bits if label_bits is None else label_bits
        slots = math.ceil(len(self._slots) / self.occupancy) if self._slots else 0
        return StructureSize(
            entries=len(self._slots),
            bits=slots * (self.key_bits + label_width),
        )
