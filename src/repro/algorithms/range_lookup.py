"""Range-match lookup (RM fields — the transport ports of Table II).

Ranges do not decompose into prefixes without expansion cost, so the
architecture searches them with an elementary-interval structure: the
stored ranges' endpoints cut the value axis into disjoint elementary
intervals, each annotated with the labels of every range covering it.
A lookup is one binary search — constant memory accesses, as the parallel
single-field engines require.

The structure is built lazily: inserts/removals invalidate a cached
interval table which is rebuilt on the next lookup (updates in rule sets
arrive in batches, so amortised rebuilds model the update process well).
"""

from __future__ import annotations

import bisect

from repro.algorithms.base import NO_LABEL, FieldSearchAlgorithm, StructureSize
from repro.util.bits import bits_needed, mask_of


class RangeLookup(FieldSearchAlgorithm):
    """Inclusive-range -> label structure with stabbing queries."""

    def __init__(self, key_bits: int):
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        self.key_bits = key_bits
        self._ranges: dict[tuple[int, int], int] = {}
        self._bounds: list[int] | None = None
        self._interval_labels: list[tuple[int, ...]] | None = None

    def insert(self, low: int, high: int, label: int) -> None:
        """Store range ``[low, high]`` with ``label`` (idempotent)."""
        if not 0 <= low <= high <= mask_of(self.key_bits):
            raise ValueError(
                f"range [{low}, {high}] invalid for {self.key_bits} bits"
            )
        if label == NO_LABEL:
            raise ValueError("cannot insert the reserved NO_LABEL")
        existing = self._ranges.get((low, high))
        if existing is not None and existing != label:
            raise ValueError(
                f"range [{low}, {high}] already has label {existing}"
            )
        self._ranges[(low, high)] = label
        self._invalidate()

    def remove(self, low: int, high: int) -> bool:
        """Delete a stored range; True if present."""
        removed = self._ranges.pop((low, high), None) is not None
        if removed:
            self._invalidate()
        return removed

    def lookup(self, value: int) -> int:
        """Label of the narrowest stored range containing ``value``.

        The paper's RM definition: "the narrowest range is selected from
        all the ranges of the filter that match" (Section III.A).
        """
        labels = self.lookup_all(value)
        return labels[0] if labels else NO_LABEL

    def lookup_all(self, value: int) -> tuple[int, ...]:
        """Labels of all containing ranges, narrowest first."""
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value} wider than {self.key_bits} bits")
        self._ensure_built()
        assert self._bounds is not None and self._interval_labels is not None
        if not self._bounds:
            return ()
        index = bisect.bisect_right(self._bounds, value) - 1
        if index < 0:
            return ()
        return self._interval_labels[index]

    def __len__(self) -> int:
        return len(self._ranges)

    def elementary_intervals(
        self,
    ) -> tuple[list[int], list[tuple[int, ...]]]:
        """The built interval table: ``(bounds, labels-per-interval)``.

        ``bounds[i]`` starts interval *i*; ``labels[i]`` lists every
        covering range's label narrowest-first — the exact arrays the
        shared read-only runtime state serialises
        (:mod:`repro.runtime.rulestate`).
        """
        self._ensure_built()
        assert self._bounds is not None and self._interval_labels is not None
        return list(self._bounds), list(self._interval_labels)

    def size(self, label_bits: int | None = None) -> StructureSize:
        """Memory: one boundary + label list slot per elementary interval."""
        self._ensure_built()
        assert self._bounds is not None and self._interval_labels is not None
        label_width = (
            bits_needed(len(self._ranges) + 1) if label_bits is None else label_bits
        )
        slot_bits = sum(
            self.key_bits + max(1, len(labels)) * label_width
            for labels in self._interval_labels
        )
        return StructureSize(entries=len(self._ranges), bits=slot_bits)

    def _invalidate(self) -> None:
        self._bounds = None
        self._interval_labels = None

    def _ensure_built(self) -> None:
        if self._bounds is not None:
            return
        if not self._ranges:
            self._bounds, self._interval_labels = [], []
            return
        cuts: set[int] = set()
        for low, high in self._ranges:
            cuts.add(low)
            cuts.add(high + 1)
        bounds = sorted(cuts)
        if bounds[-1] > mask_of(self.key_bits):
            bounds.pop()
        intervals: list[tuple[int, ...]] = []
        # Sort by width so each elementary interval lists narrowest first.
        by_width = sorted(
            self._ranges.items(), key=lambda item: item[0][1] - item[0][0]
        )
        for start in bounds:
            covering = tuple(
                label for (low, high), label in by_width if low <= start <= high
            )
            intervals.append(covering)
        self._bounds = bounds
        self._interval_labels = intervals
