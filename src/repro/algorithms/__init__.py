"""Single-field search algorithms.

The decomposition architecture (paper Section IV) searches every header
field with an independent one-dimensional algorithm and combines the
resulting *labels*:

- :mod:`repro.algorithms.labels` — the label method: one small integer
  per unique field value (label 0 is reserved for "no match/wildcard").
- :mod:`repro.algorithms.exact_lut` — hash lookup table for EM fields.
- :mod:`repro.algorithms.multibit_trie` — the 3-level 16-bit multi-bit
  trie used for LPM partitions, with controlled prefix expansion, sparse
  record storage and per-level memory enumeration.
- :mod:`repro.algorithms.binary_trie` — unibit reference trie (baseline
  and differential-test oracle for the MBT).
- :mod:`repro.algorithms.range_lookup` — elementary-interval structure
  for RM (port) fields.
- :mod:`repro.algorithms.tcam` / :mod:`repro.algorithms.tss` — the
  hardware and hashing baselines of the paper's Table I.
"""

from repro.algorithms.base import (
    NO_LABEL,
    FieldSearchAlgorithm,
    StructureSize,
)
from repro.algorithms.binary_trie import BinaryTrie
from repro.algorithms.exact_lut import ExactMatchLut
from repro.algorithms.labels import LabelAllocator
from repro.algorithms.multibit_trie import MultibitTrie, TrieLevelStats
from repro.algorithms.range_lookup import RangeLookup
from repro.algorithms.tcam import Tcam, TcamEntry, range_to_prefixes
from repro.algorithms.tss import TupleSpaceSearch

__all__ = [
    "BinaryTrie",
    "ExactMatchLut",
    "FieldSearchAlgorithm",
    "LabelAllocator",
    "MultibitTrie",
    "NO_LABEL",
    "RangeLookup",
    "StructureSize",
    "Tcam",
    "TcamEntry",
    "TrieLevelStats",
    "TupleSpaceSearch",
    "range_to_prefixes",
]
