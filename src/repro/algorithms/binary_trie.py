"""Unibit (binary) trie.

The one-bit-per-level reference structure for longest-prefix matching.
It plays two roles in the reproduction:

1. **Oracle** — its lookup semantics are obviously correct, so the
   multi-bit trie is differential-tested against it;
2. **Baseline** — node counts per level let the ablation benches show
   what multi-bit strides buy (fewer memory accesses for more storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.base import NO_LABEL, FieldSearchAlgorithm
from repro.util.bits import mask_of


@dataclass
class _Node:
    label: int = NO_LABEL
    prefix_len: int = -1  # length of the prefix whose label is stored here
    children: list["_Node | None"] = field(default_factory=lambda: [None, None])


class BinaryTrie(FieldSearchAlgorithm):
    """Prefix -> label unibit trie over ``key_bits``-wide keys."""

    def __init__(self, key_bits: int):
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        self.key_bits = key_bits
        self._root = _Node()
        self._entry_count = 0

    def insert(self, value: int, length: int, label: int) -> None:
        """Store prefix ``value/length`` with ``label``.

        Re-inserting an existing prefix with the same label is a no-op;
        with a different label it is an error (labels identify unique
        values, so one prefix has exactly one label).
        """
        if not 0 <= length <= self.key_bits:
            raise ValueError(f"prefix length {length} outside [0, {self.key_bits}]")
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"value {value:#x} wider than {self.key_bits} bits")
        if label == NO_LABEL:
            raise ValueError("cannot insert the reserved NO_LABEL")
        node = self._root
        for depth in range(length):
            bit = (value >> (self.key_bits - 1 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]  # type: ignore[assignment]
        if node.label != NO_LABEL:
            if node.label != label:
                raise ValueError(
                    f"prefix {value:#x}/{length} already has label {node.label}"
                )
            return
        node.label = label
        node.prefix_len = length
        self._entry_count += 1

    def lookup(self, value: int) -> int:
        return (self.lookup_all(value) or (NO_LABEL,))[0]

    def lookup_all(self, value: int) -> tuple[int, ...]:
        """Labels of every stored prefix covering ``value``, longest first."""
        labels: list[int] = []
        node = self._root
        if node.label != NO_LABEL:
            labels.append(node.label)
        for depth in range(self.key_bits):
            bit = (value >> (self.key_bits - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.label != NO_LABEL:
                labels.append(node.label)
        return tuple(reversed(labels))

    def __len__(self) -> int:
        return self._entry_count

    def node_count(self) -> int:
        """Total allocated trie nodes (including pure path nodes)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(c for c in node.children if c is not None)
        return count

    def nodes_per_depth(self) -> list[int]:
        """Node counts indexed by depth (0 = root)."""
        counts: list[int] = []
        layer = [self._root]
        while layer:
            counts.append(len(layer))
            layer = [c for n in layer for c in n.children if c is not None]
        return counts
