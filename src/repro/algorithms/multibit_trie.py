"""The multi-bit trie (MBT) — the paper's LPM workhorse.

Each 16-bit partition of an address field is searched by a multi-bit trie
"distributed with three levels" (paper Section V.A, citing its reference
[22] for the 3-level trade-off).  This implementation:

- uses configurable strides, default ``(5, 5, 6)`` over 16-bit keys.  The
  5-bit first stride is calibrated to the paper's stated worst case
  ("the maximum stored nodes in L1 are 32 ... 832 bits");
- stores prefixes by **controlled prefix expansion**: a prefix whose
  length falls inside a level's span is expanded to every record of that
  level it covers, with the longest prefix winning shared records;
- keeps records **sparsely** (only allocated paths occupy storage), with
  per-record child reference counts so removals shrink the structure —
  the incremental-update ability the paper lists among its lookup
  efficiency criteria;
- exposes per-level record statistics, which the memory cost model turns
  into the paper's Fig. 2 (stored nodes) and Figs. 3/4 (Kbits per level).

Each stored record models the hardware trie node of Section V.A: "the
trie node data is composed of the child pointer, the label and a flag
bit".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.algorithms.base import NO_LABEL, FieldSearchAlgorithm
from repro.util.bits import mask_of, prefix_mask

#: Default stride distribution: 3 levels over 16 bits with a 32-record L1.
DEFAULT_STRIDES: tuple[int, ...] = (5, 5, 6)


@dataclass
class _Record:
    """One stored trie record (a hardware memory word)."""

    label: int = NO_LABEL
    label_plen: int = -1  # prefix length that owns `label` (-1 = none)
    child_count: int = 0  # number of existing records in the next level
    #: labels of every expanded prefix covering this record, by length;
    #: kept so removals can demote to the next-longest prefix.
    owners: dict[int, int] | None = None

    @property
    def has_child(self) -> bool:
        return self.child_count > 0

    @property
    def occupied(self) -> bool:
        return self.label != NO_LABEL or self.child_count > 0


@dataclass(frozen=True)
class TrieLevelStats:
    """Per-level occupancy of a multi-bit trie."""

    level: int  # 1-based, as in the paper's L1/L2/L3
    stride: int
    boundary: int  # cumulative bits consumed up to this level
    records: int  # stored (sparse) records
    with_label: int
    with_child: int


class MultibitTrie(FieldSearchAlgorithm):
    """Prefix -> label multi-bit trie with controlled prefix expansion."""

    def __init__(self, key_bits: int = 16, strides: Sequence[int] = DEFAULT_STRIDES):
        strides = tuple(strides)
        if not strides or any(s <= 0 for s in strides):
            raise ValueError(f"invalid strides {strides}")
        if sum(strides) != key_bits:
            raise ValueError(
                f"strides {strides} sum to {sum(strides)}, key is {key_bits} bits"
            )
        self.key_bits = key_bits
        self.strides = strides
        self.boundaries: tuple[int, ...] = tuple(
            sum(strides[: i + 1]) for i in range(len(strides))
        )
        self._levels: list[dict[int, _Record]] = [{} for _ in strides]
        self._entries: dict[tuple[int, int], int] = {}
        self._default_label = NO_LABEL

    # ------------------------------------------------------------------
    # insertion / removal
    # ------------------------------------------------------------------

    def insert(self, value: int, length: int, label: int) -> None:
        """Store canonical prefix ``value/length`` with ``label``.

        ``length = 0`` stores the default (match-everything) entry.
        Re-inserting an existing prefix with its existing label is a
        no-op; with a different label it is an error.
        """
        self._check_prefix(value, length)
        if label == NO_LABEL:
            raise ValueError("cannot insert the reserved NO_LABEL")
        existing = self._entries.get((value, length))
        if existing is not None:
            if existing != label:
                raise ValueError(
                    f"prefix {value:#x}/{length} already has label {existing}"
                )
            return
        if length == 0:
            if self._default_label not in (NO_LABEL, label):
                raise ValueError(
                    f"default entry already has label {self._default_label}"
                )
            self._default_label = label
            self._entries[(value, length)] = label
            return

        level = self._level_of(length)
        boundary = self.boundaries[level]
        self._ensure_path(value, level)
        expand_bits = boundary - length
        base = (value >> (self.key_bits - length)) << expand_bits
        for suffix in range(1 << expand_bits):
            path = base | suffix
            record = self._get_or_create(level, path)
            if record.owners is None:
                record.owners = {}
            record.owners[length] = label
            if length > record.label_plen:
                record.label = label
                record.label_plen = length
        self._entries[(value, length)] = label

    def remove(self, value: int, length: int) -> bool:
        """Delete a stored prefix; returns True if it was present.

        Records owned solely by the removed prefix are demoted to the
        next-longest covering prefix or garbage-collected, cascading up
        through now-empty path records.
        """
        self._check_prefix(value, length)
        if (value, length) not in self._entries:
            return False
        del self._entries[(value, length)]
        if length == 0:
            self._default_label = NO_LABEL
            return True

        level = self._level_of(length)
        boundary = self.boundaries[level]
        expand_bits = boundary - length
        base = (value >> (self.key_bits - length)) << expand_bits
        for suffix in range(1 << expand_bits):
            path = base | suffix
            record = self._levels[level][path]
            assert record.owners is not None
            record.owners.pop(length, None)
            if record.label_plen == length:
                if record.owners:
                    best_len = max(record.owners)
                    record.label = record.owners[best_len]
                    record.label_plen = best_len
                else:
                    record.label = NO_LABEL
                    record.label_plen = -1
            self._maybe_collect(level, path)
        self._collect_path(value, level)
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, value: int) -> int:
        """Label of the longest stored prefix covering ``value``."""
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value:#x} wider than {self.key_bits} bits")
        best = self._default_label
        for level, boundary in enumerate(self.boundaries):
            path = value >> (self.key_bits - boundary)
            record = self._levels[level].get(path)
            if record is None:
                break
            if record.label != NO_LABEL:
                best = record.label
            if not record.has_child:
                break
        return best

    def consulted_bits(self, value: int) -> int:
        """Length of the top-bit prefix of ``value`` a lookup consults.

        Any key sharing those top bits probes the same records at every
        visited level and terminates at the same place, so it yields the
        same :meth:`lookup` / :meth:`lookup_all` result — the wildcard
        grain a megaflow-style cache can mask on.  An empty level is
        never probed (its outcome is key-independent), so a trie holding
        only the default ``/0`` entry consults zero bits.
        """
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value:#x} wider than {self.key_bits} bits")
        consulted = 0
        for level, boundary in enumerate(self.boundaries):
            if not self._levels[level]:
                break
            consulted = boundary
            record = self._levels[level].get(value >> (self.key_bits - boundary))
            if record is None or not record.has_child:
                break
        return consulted

    def lookup_all(self, value: int) -> tuple[int, ...]:
        """Labels of every stored prefix covering ``value``, longest first.

        Models the architecture's ancestor unrolling: the hardware returns
        the longest match per level and the label table links each label
        to its containment ancestors; unrolled, that is exactly the set of
        covering stored prefixes.
        """
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value:#x} wider than {self.key_bits} bits")
        labels = []
        for length in range(self.key_bits, 0, -1):
            candidate = value & prefix_mask(length, self.key_bits)
            label = self._entries.get((candidate, length))
            if label is not None:
                labels.append(label)
        if self._default_label != NO_LABEL:
            labels.append(self._default_label)
        return tuple(labels)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: tuple[int, int]) -> bool:
        return prefix in self._entries

    def entries(self) -> Iterator[tuple[int, int, int]]:
        """Iterate stored ``(value, length, label)`` triples."""
        for (value, length), label in self._entries.items():
            yield value, length, label

    @property
    def level_count(self) -> int:
        return len(self.strides)

    def level_records(self, level: int) -> Iterator[tuple[int, bool]]:
        """Iterate one level's stored ``(path, has_child)`` pairs.

        The walk-shape projection of the sparse level maps: exactly what
        :meth:`consulted_bits` probes, and therefore all the shared
        read-only runtime state needs to replicate the trie walk
        (:mod:`repro.runtime.rulestate`).
        """
        for path, record in self._levels[level].items():
            yield path, record.has_child

    def stored_nodes(self) -> int:
        """Total sparse records — the paper's "number of stored nodes"."""
        return sum(len(level) for level in self._levels)

    def level_stats(self) -> list[TrieLevelStats]:
        """Occupancy per level (L1 first)."""
        stats = []
        for index, level in enumerate(self._levels):
            stats.append(
                TrieLevelStats(
                    level=index + 1,
                    stride=self.strides[index],
                    boundary=self.boundaries[index],
                    records=len(level),
                    with_label=sum(1 for r in level.values() if r.label != NO_LABEL),
                    with_child=sum(1 for r in level.values() if r.has_child),
                )
            )
        return stats

    def full_array_records(self) -> list[int]:
        """Per-level record counts under full-array child allocation.

        Level 1 is a single complete ``2^s1`` root array; each deeper
        level allocates a complete ``2^s`` array per parent record with
        children.  This is the alternative (classic) layout the memory
        ablation compares against sparse storage.
        """
        counts = [1 << self.strides[0]]
        for index in range(1, len(self.strides)):
            parents = sum(
                1 for r in self._levels[index - 1].values() if r.has_child
            )
            counts.append(parents * (1 << self.strides[index]))
        return counts

    def max_label(self) -> int:
        """Largest label stored (0 when empty)."""
        if not self._entries:
            return max(self._default_label, NO_LABEL)
        return max(max(self._entries.values()), self._default_label)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_prefix(self, value: int, length: int) -> None:
        if not 0 <= length <= self.key_bits:
            raise ValueError(f"prefix length {length} outside [0, {self.key_bits}]")
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"value {value:#x} wider than {self.key_bits} bits")
        if value & ~prefix_mask(length, self.key_bits):
            raise ValueError(
                f"prefix {value:#x}/{length} is not canonical (host bits set)"
            )

    def _level_of(self, length: int) -> int:
        for index, boundary in enumerate(self.boundaries):
            if length <= boundary:
                return index
        raise AssertionError("unreachable: length validated above")

    def _get_or_create(self, level: int, path: int) -> _Record:
        record = self._levels[level].get(path)
        if record is None:
            record = _Record()
            self._levels[level][path] = record
            if level > 0:
                parent_path = path >> self.strides[level]
                self._levels[level - 1][parent_path].child_count += 1
        return record

    def _ensure_path(self, value: int, level: int) -> None:
        """Create (or reuse) path records at every level above ``level``."""
        for k in range(level):
            path = value >> (self.key_bits - self.boundaries[k])
            self._get_or_create(k, path)

    def _maybe_collect(self, level: int, path: int) -> None:
        record = self._levels[level].get(path)
        if record is None or record.occupied:
            return
        del self._levels[level][path]
        if level > 0:
            parent_path = path >> self.strides[level]
            parent = self._levels[level - 1][parent_path]
            parent.child_count -= 1
            self._maybe_collect(level - 1, parent_path)

    def _collect_path(self, value: int, level: int) -> None:
        for k in range(level - 1, -1, -1):
            path = value >> (self.key_bits - self.boundaries[k])
            self._maybe_collect(k, path)
