"""The label method (paper Section IV.B, after DCFL).

Filter fields repeat values heavily (Tables III/IV), so each *unique*
field value is stored once in its search structure and identified by a
small integer **label**.  Rules are then represented by tuples of labels,
which is what makes the index calculation (and the action-table
addressing) compact.

Label 0 (:data:`~repro.algorithms.base.NO_LABEL`) is reserved for "no
match", which doubles as the wildcard label: a rule that leaves a field
unconstrained carries label 0 for it, and a packet whose lookup misses
the structure also produces label 0 — the two meet in the index table.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from typing import Generic, TypeVar

from repro.algorithms.base import NO_LABEL
from repro.util.bits import bits_needed

K = TypeVar("K", bound=Hashable)


class LabelAllocator(Generic[K]):
    """Assigns consecutive integer labels (from 1) to unique keys.

    >>> alloc = LabelAllocator()
    >>> alloc.label_for((0x0A00, 8))
    1
    >>> alloc.label_for((0x0B00, 8))
    2
    >>> alloc.label_for((0x0A00, 8))  # repeated value: same label
    1
    """

    def __init__(self) -> None:
        self._labels: dict[K, int] = {}
        self._keys: list[K] = []

    def label_for(self, key: K) -> int:
        """Return the key's label, allocating one on first sight."""
        existing = self._labels.get(key)
        if existing is not None:
            return existing
        label = len(self._keys) + 1
        self._labels[key] = label
        self._keys.append(key)
        return label

    def get(self, key: K) -> int:
        """Return the key's label, or NO_LABEL if never allocated."""
        return self._labels.get(key, NO_LABEL)

    def key_of(self, label: int) -> K:
        """Inverse mapping (labels are 1-based)."""
        if not 1 <= label <= len(self._keys):
            raise KeyError(f"label {label} was never allocated")
        return self._keys[label - 1]

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: K) -> bool:
        return key in self._labels

    def __iter__(self) -> Iterator[K]:
        return iter(self._keys)

    @property
    def mapping(self) -> Mapping[K, int]:
        """Read-only view of key -> label."""
        return dict(self._labels)

    @property
    def label_bits(self) -> int:
        """Bits needed to encode any allocated label plus NO_LABEL."""
        return bits_needed(len(self._keys) + 1)
