"""repro — Memory Cost Analysis for OpenFlow Multiple Table Lookup.

A complete, from-scratch reproduction of Guerra Perez, Scott-Hayward,
Yang & Sezer, IEEE SOCC 2015 (DOI 10.1109/SOCC.2015.7406975): the
decomposition-based multiple-table lookup architecture, every substrate
it stands on (OpenFlow v1.3 data model, packet codecs, filter sets,
single-field search algorithms), the embedded-memory cost model, the
update-process simulation, and the baselines it is compared against.

Quick start::

    from repro import filters, core, memory

    mac = filters.mac_sets()["bbra"]                 # calibrated rule set
    table = core.build_lookup_table(mac)             # Fig. 1 architecture
    entry = table.lookup({"vlan_vid": 0x1401, "eth_dst": 0x0A1B2C3D4E5F})
    report = memory.table_memory_report(table)       # Section V.A costs

The experiment harness regenerating every table and figure of the paper
lives in :mod:`repro.experiments` (``python -m repro.experiments``); the
batched, microflow-cached traffic runtime lives in :mod:`repro.runtime`.
"""

from repro import (
    algorithms,
    analysis,
    baselines,
    core,
    filters,
    memory,
    openflow,
    packet,
    runtime,
    update,
    util,
)

__version__ = "1.1.0"

__all__ = [
    "algorithms",
    "analysis",
    "baselines",
    "core",
    "filters",
    "memory",
    "openflow",
    "packet",
    "runtime",
    "update",
    "util",
    "__version__",
]
