"""Filter-set substrate: rule model, file formats, calibrated synthesis.

The paper analyses the Stanford backbone filter sets (16 routers named
``bbra .. yozb``) for three applications: MAC learning, Routing and ACL.
Those files are not redistributable/available offline, so this package
provides, side by side:

- :mod:`repro.filters.rule` — the rule/ruleset data model shared by every
  consumer (analysis, architecture builder, baselines, benchmarks);
- :mod:`repro.filters.paper_data` — the *published statistics* of the
  paper's Tables III and IV, embedded as data;
- :mod:`repro.filters.synthetic` — generators that synthesise rule sets
  whose rule counts and unique-partition-value counts match the published
  statistics exactly (the calibration targets);
- :mod:`repro.filters.stanford` / :mod:`repro.filters.classbench` —
  parsers/writers for the on-disk formats, so the real files can be
  dropped in when available;
- :mod:`repro.filters.partitions` — the 16-bit field partitioning used
  throughout the paper's analysis.
"""

from repro.filters.classbench import (
    load_classbench,
    parse_classbench_line,
    write_classbench,
)
from repro.filters.partitions import (
    FieldPartition,
    partition_entries,
    partition_scheme,
)
from repro.filters.paper_data import (
    FILTER_NAMES,
    MacFilterStats,
    RoutingFilterStats,
    TABLE3_MAC_STATS,
    TABLE4_ROUTING_STATS,
)
from repro.filters.rule import Application, Rule, RuleSet
from repro.filters.stanford import load_stanford, write_stanford
from repro.filters.synthetic import (
    SyntheticAclConfig,
    generate_acl_set,
    generate_mac_set,
    generate_routing_set,
    mac_sets,
    routing_sets,
)

__all__ = [
    "Application",
    "FieldPartition",
    "FILTER_NAMES",
    "MacFilterStats",
    "Rule",
    "RuleSet",
    "RoutingFilterStats",
    "SyntheticAclConfig",
    "TABLE3_MAC_STATS",
    "TABLE4_ROUTING_STATS",
    "generate_acl_set",
    "generate_mac_set",
    "generate_routing_set",
    "load_classbench",
    "load_stanford",
    "mac_sets",
    "parse_classbench_line",
    "partition_entries",
    "partition_scheme",
    "routing_sets",
    "write_classbench",
    "write_stanford",
]
