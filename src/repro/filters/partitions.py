"""16-bit field partitioning.

The paper's analysis (Section III, after its reference [22]) splits long
address fields into 16-bit partitions, each searched by its own trie: a
48-bit Ethernet address becomes (higher, middle, lower) and a 32-bit IPv4
address (higher, lower).  This module defines the partition descriptors
and converts a rule's field predicate into per-partition *entries* — the
prefixes each partition's trie must store, which is also exactly what the
unique-value analysis of Tables III/IV counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    MaskedMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import bit_slice, prefix_mask

#: Conventional partition labels, following the paper's terminology.
_LABELS: dict[int, tuple[str, ...]] = {
    1: ("",),
    2: ("hi", "lo"),
    3: ("hi", "mid", "lo"),
}


@dataclass(frozen=True)
class FieldPartition:
    """One k-bit partition of a (possibly wider) match field.

    Attributes:
        field_name: the OpenFlow field being partitioned.
        index: partition index, 0 = most significant.
        offset: bit offset of the partition from the field's MSB.
        bits: partition width.
        label: human label ("hi"/"mid"/"lo" or "p<i>"; empty when the
            field fits a single partition).
    """

    field_name: str
    index: int
    offset: int
    bits: int
    label: str

    @property
    def name(self) -> str:
        """Qualified name, e.g. ``eth_dst/hi`` or ``vlan_vid``."""
        return f"{self.field_name}/{self.label}" if self.label else self.field_name


#: A partition entry: the prefix a partition's structure must store for one
#: rule — ``None`` when the rule leaves this partition fully wild, else a
#: ``(value, prefix_length)`` pair over the partition's width.
PartitionEntry = tuple[int, int] | None


def partition_scheme(
    field_name: str, bits: int, part_bits: int = 16
) -> tuple[FieldPartition, ...]:
    """Split a field into MSB-first partitions of at most ``part_bits`` bits.

    Fields no wider than ``part_bits`` map to a single partition covering
    the whole field.

    >>> [p.name for p in partition_scheme("eth_dst", 48)]
    ['eth_dst/hi', 'eth_dst/mid', 'eth_dst/lo']
    >>> [p.name for p in partition_scheme("vlan_vid", 13)]
    ['vlan_vid']
    """
    if bits <= 0 or part_bits <= 0:
        raise ValueError("field and partition widths must be positive")
    if bits <= part_bits:
        return (
            FieldPartition(field_name=field_name, index=0, offset=0, bits=bits, label=""),
        )
    if bits % part_bits != 0:
        raise ValueError(
            f"field width {bits} is not a multiple of partition width {part_bits}"
        )
    count = bits // part_bits
    labels = _LABELS.get(count) or tuple(f"p{i}" for i in range(count))
    return tuple(
        FieldPartition(
            field_name=field_name,
            index=i,
            offset=i * part_bits,
            bits=part_bits,
            label=labels[i],
        )
        for i in range(count)
    )


def partition_entries(
    predicate: FieldMatch, scheme: tuple[FieldPartition, ...]
) -> tuple[PartitionEntry, ...]:
    """Convert one field predicate into its per-partition prefix entries.

    Exact values produce a full-width entry in every partition; a prefix of
    length L produces exact entries in partitions entirely above bit L, a
    shortened prefix entry in the partition L falls inside, and ``None``
    (wildcard) below.  Range and masked predicates do not decompose into
    per-partition prefixes and are rejected — the architecture routes such
    fields to range engines instead (see :mod:`repro.core.field_engine`).

    Partition entries keep the canonical left-aligned form: the /8 prefix
    10.0.0.0 becomes the 16-bit entry ``0x0A00`` with length 8.

    >>> from repro.openflow.match import PrefixMatch
    >>> scheme = partition_scheme("ipv4_dst", 32)
    >>> partition_entries(PrefixMatch(0x0A000000, 8, 32), scheme)
    ((2560, 8), None)
    """
    field_bits = sum(p.bits for p in scheme)
    if isinstance(predicate, WildcardMatch):
        return tuple(None for _ in scheme)
    if isinstance(predicate, ExactMatch):
        return tuple(
            (bit_slice(predicate.value, field_bits, p.offset, p.bits), p.bits)
            for p in scheme
        )
    if isinstance(predicate, PrefixMatch):
        entries: list[PartitionEntry] = []
        for part in scheme:
            covered = min(max(predicate.length - part.offset, 0), part.bits)
            if covered == 0:
                entries.append(None)
                continue
            value = bit_slice(predicate.value, field_bits, part.offset, part.bits)
            entries.append((value & prefix_mask(covered, part.bits), covered))
        return tuple(entries)
    if isinstance(predicate, (RangeMatch, MaskedMatch)):
        raise TypeError(
            f"{type(predicate).__name__} does not decompose into prefix "
            "partitions; use a range engine for this field"
        )
    raise TypeError(f"unsupported predicate type {type(predicate).__name__}")


def entry_to_predicate(entry: PartitionEntry, bits: int) -> FieldMatch:
    """Convert a partition entry back into a predicate over the partition.

    Useful for building per-partition tries and for property tests that
    check the round-trip against the original field predicate.
    """
    if entry is None:
        return WildcardMatch(bits=bits)
    value, length = entry
    if length == bits:
        return ExactMatch(value=value, bits=bits)
    return PrefixMatch(value=value, length=length, bits=bits)
