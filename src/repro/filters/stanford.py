"""Stanford-backbone-style MAC and Routing table files.

The paper's filter sets come from the Stanford backbone configuration
dump (its reference [21]).  Those files are not redistributable with this
reproduction, so we define a plain-text equivalent able to carry the same
information; real data can be converted into it with a few lines of awk.

MAC table file — one rule per line::

    <vlan-id> <mac-address> <out-port>        # e.g.  42 00:1b:21:3a:91:04 7

Routing table file — one rule per line::

    <in-port> <a.b.c.d>/<len> <out-port>      # e.g.  3 171.64.0.0/14 12

Comment lines start with ``#``.  Loading produces the same
:class:`~repro.filters.rule.RuleSet` shapes as the calibrated synthetic
generators, so everything downstream (analysis, architecture, benchmarks)
works identically on real data.
"""

from __future__ import annotations

from pathlib import Path

from repro.filters.rule import Application, Rule, RuleSet
from repro.filters.synthetic import VLAN_PRESENT
from repro.openflow.match import ExactMatch, PrefixMatch, WildcardMatch
from repro.util.bits import canonical_prefix


def _parse_mac(text: str) -> int:
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"invalid MAC address {text!r}")
    value = 0
    for part in parts:
        byte = int(part, 16)
        if not 0 <= byte <= 255:
            raise ValueError(f"invalid MAC address {text!r}")
        value = (value << 8) | byte
    return value


def _format_mac(value: int) -> str:
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in range(40, -8, -8))


def _parse_ip(text: str) -> int:
    parts = [int(p) for p in text.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"invalid IPv4 address {text!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def _format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _data_lines(path: Path) -> list[str]:
    return [
        line.strip()
        for line in path.read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]


def load_stanford(
    path: str | Path, application: Application, name: str | None = None
) -> RuleSet:
    """Load a Stanford-style table file for the given application."""
    path = Path(path)
    set_name = name or path.stem
    if application is Application.MAC_LEARNING:
        rule_set = RuleSet(
            name=set_name,
            application=application,
            field_names=("vlan_vid", "eth_dst"),
        )
        for line in _data_lines(path):
            vlan_text, mac_text, port_text = line.split()
            rule_set.add(
                Rule(
                    fields={
                        "vlan_vid": ExactMatch(
                            value=int(vlan_text) | VLAN_PRESENT, bits=13
                        ),
                        "eth_dst": ExactMatch(value=_parse_mac(mac_text), bits=48),
                    },
                    priority=1,
                    action_port=int(port_text),
                )
            )
        return rule_set
    if application is Application.ROUTING:
        rule_set = RuleSet(
            name=set_name,
            application=application,
            field_names=("in_port", "ipv4_dst"),
        )
        for line in _data_lines(path):
            port_text, prefix_text, out_text = line.split()
            address_text, length_text = prefix_text.split("/")
            value, length = canonical_prefix(
                _parse_ip(address_text), int(length_text), 32
            )
            rule_set.add(
                Rule(
                    fields={
                        "in_port": ExactMatch(value=int(port_text), bits=32),
                        "ipv4_dst": PrefixMatch(value=value, length=length, bits=32),
                    },
                    priority=length,
                    action_port=int(out_text),
                )
            )
        return rule_set
    raise ValueError(f"no Stanford file format for application {application}")


def write_stanford(rule_set: RuleSet, path: str | Path) -> Path:
    """Write a MAC or Routing rule set in the Stanford-style format."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [f"# {rule_set.summary()}"]
    if rule_set.application is Application.MAC_LEARNING:
        for rule in rule_set:
            vlan = rule.fields["vlan_vid"]
            mac = rule.fields["eth_dst"]
            assert isinstance(vlan, ExactMatch) and isinstance(mac, ExactMatch)
            lines.append(
                f"{vlan.value & ~VLAN_PRESENT} {_format_mac(mac.value)} "
                f"{rule.action_port}"
            )
    elif rule_set.application is Application.ROUTING:
        for rule in rule_set:
            port = rule.fields["in_port"]
            prefix = rule.fields["ipv4_dst"]
            assert isinstance(port, ExactMatch)
            if isinstance(prefix, WildcardMatch):
                value, length = 0, 0
            else:
                assert isinstance(prefix, PrefixMatch)
                value, length = prefix.value, prefix.length
            lines.append(
                f"{port.value} {_format_ip(value)}/{length} {rule.action_port}"
            )
    else:
        raise ValueError(
            f"no Stanford file format for application {rule_set.application}"
        )
    target.write_text("\n".join(lines) + "\n")
    return target
