"""Calibrated synthetic filter-set generation.

The Stanford backbone filter files the paper analyses are not available
offline, so this module synthesises replacement rule sets that are
**calibrated to the paper's published statistics**: for every router the
generated set has exactly the rule count and the per-partition
unique-value counts of Tables III/IV (embedded in
:mod:`repro.filters.paper_data`).  Those counts are precisely the
quantities the paper's memory and update analysis depends on; only the
concrete value identities (which MAC address, which prefix) are synthetic.

Generation strategy (identical for every constrained component):

1. draw a pool of exactly ``k`` distinct values for a component that must
   show ``k`` unique values;
2. assign pool values to rules *coverage-first* (the first ``k`` rules
   take each pool value once, guaranteeing every value appears) and
   uniformly at random afterwards;
3. repair duplicate rule keys by resampling only the components of rows
   past their coverage region, so coverage is never lost.

All randomness flows from :func:`numpy.random.default_rng` seeded by the
filter name, so every set regenerates byte-identically.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass

import numpy as np

from repro.filters.paper_data import (
    FILTER_NAMES,
    MacFilterStats,
    RoutingFilterStats,
    TABLE3_MAC_STATS,
    TABLE4_ROUTING_STATS,
)
from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import ExactMatch, PrefixMatch, RangeMatch

#: OXM vlan_vid "present" bit (OFPVID_PRESENT).
VLAN_PRESENT = 0x1000

#: Width of one partition, fixed at 16 bits throughout the paper.
PART_BITS = 16

#: Action ports are drawn from this many egress ports.
_EGRESS_PORTS = 64


def _seed_for(kind: str, name: str) -> int:
    """Stable cross-platform seed derived from the filter identity."""
    return zlib.crc32(f"{kind}:{name}".encode())


def _coverage_first(rng: np.random.Generator, pool_size: int, rows: int) -> np.ndarray:
    """Pool-index assignment: each index once, then uniform random."""
    if pool_size > rows:
        raise ValueError(
            f"cannot place {pool_size} unique values into {rows} rows"
        )
    indices = np.empty(rows, dtype=np.int64)
    indices[:pool_size] = np.arange(pool_size, dtype=np.int64)
    if rows > pool_size:
        indices[pool_size:] = rng.integers(0, pool_size, size=rows - pool_size)
    return indices


def _repair_duplicates(
    rng: np.random.Generator,
    columns: list[np.ndarray],
    pool_sizes: list[int],
) -> None:
    """Make row tuples unique without disturbing coverage.

    ``columns[c][i]`` is the pool index of component ``c`` in row ``i``.
    Rows ``i < pool_sizes[c]`` are *pinned* for component ``c`` (they carry
    the coverage guarantee); the repair only resamples unpinned components.
    Rows pinned in every component are mutually distinct by construction,
    so each colliding row has at least one free component.
    """
    seen: set[tuple[int, ...]] = set()
    rows = len(columns[0])
    for i in range(rows):
        key = tuple(int(col[i]) for col in columns)
        attempts = 0
        while key in seen:
            free = [c for c, size in enumerate(pool_sizes) if i >= size]
            if not free:
                raise RuntimeError(
                    "fully pinned row collided; calibration targets are "
                    "mutually inconsistent"
                )
            attempts += 1
            if attempts > 10_000:
                raise RuntimeError(
                    "could not de-duplicate rule keys; combination space "
                    "too small for the requested rule count"
                )
            for c in free:
                columns[c][i] = rng.integers(0, pool_sizes[c])
            key = tuple(int(col[i]) for col in columns)
        seen.add(key)


def generate_mac_set(stats: MacFilterStats, seed: int | None = None) -> RuleSet:
    """Synthesise one MAC-learning rule set calibrated to a Table III row.

    Every rule matches an exact (VLAN ID, destination Ethernet) pair; the
    generated set has exactly ``stats.rules`` rules with distinct Ethernet
    addresses, ``stats.unique_vlan`` distinct VLAN IDs and the published
    number of distinct values in each 16-bit Ethernet partition.
    """
    rng = np.random.default_rng(
        _seed_for("mac", stats.name) if seed is None else seed
    )
    rows = stats.rules
    high, mid, low = stats.unique_eth_partitions

    pool_vlan = rng.choice(np.arange(1, 4095, dtype=np.int64), size=stats.unique_vlan, replace=False)
    pool_high = rng.choice(1 << PART_BITS, size=high, replace=False)
    pool_mid = rng.choice(1 << PART_BITS, size=mid, replace=False)
    pool_low = rng.choice(1 << PART_BITS, size=low, replace=False)

    vlan_idx = _coverage_first(rng, stats.unique_vlan, rows)
    columns = [
        _coverage_first(rng, high, rows),
        _coverage_first(rng, mid, rows),
        _coverage_first(rng, low, rows),
    ]
    _repair_duplicates(rng, columns, [high, mid, low])

    action_ports = rng.integers(0, _EGRESS_PORTS, size=rows)
    rule_set = RuleSet(
        name=stats.name,
        application=Application.MAC_LEARNING,
        field_names=("vlan_vid", "eth_dst"),
    )
    for i in range(rows):
        mac = (
            (int(pool_high[columns[0][i]]) << 32)
            | (int(pool_mid[columns[1][i]]) << 16)
            | int(pool_low[columns[2][i]])
        )
        rule_set.add(
            Rule(
                fields={
                    "vlan_vid": ExactMatch(
                        value=int(pool_vlan[vlan_idx[i]]) | VLAN_PRESENT, bits=13
                    ),
                    "eth_dst": ExactMatch(value=mac, bits=48),
                },
                priority=1,
                action_port=int(action_ports[i]),
            )
        )
    return rule_set


#: Prefix-length mixes.  Short routes (/1../15) skew long-ish; the low
#: 16 bits of long routes skew towards /8 within the partition (i.e. /24
#: total), matching the shape of real routing tables.
_SHORT_LENGTH_WEIGHTS = {
    8: 4.0, 10: 2.0, 11: 2.0, 12: 4.0, 13: 4.0, 14: 6.0, 15: 8.0,
}
_LOW_LENGTH_WEIGHTS = {
    1: 1.0, 2: 1.0, 3: 2.0, 4: 4.0, 5: 6.0, 6: 8.0, 7: 12.0, 8: 30.0,
    9: 6.0, 10: 6.0, 11: 4.0, 12: 4.0, 13: 2.0, 14: 2.0, 15: 2.0, 16: 10.0,
}


def _allocate_per_length(total: int, weights: dict[int, float]) -> dict[int, int]:
    """Split ``total`` distinct prefixes across lengths, capped at 2^len.

    Weighted proportional allocation with per-length capacity caps; any
    remainder spills into the longest lengths, which always have room for
    the calibration targets in Tables III/IV.
    """
    lengths = sorted(weights)
    weight_sum = sum(weights.values())
    allocation = {
        length: min(int(total * weights[length] / weight_sum), 1 << length)
        for length in lengths
    }
    remainder = total - sum(allocation.values())
    for length in sorted(lengths, key=lambda l: -l):
        if remainder <= 0:
            break
        room = (1 << length) - allocation[length]
        take = min(room, remainder)
        allocation[length] += take
        remainder -= take
    if remainder > 0:
        raise ValueError(
            f"cannot allocate {total} distinct prefixes across lengths "
            f"{lengths}: capacity exhausted"
        )
    return {length: count for length, count in allocation.items() if count > 0}


def _distinct_prefix_pool(
    rng: np.random.Generator, total: int, weights: dict[int, float]
) -> list[tuple[int, int]]:
    """Draw ``total`` distinct (value, length) prefixes over PART_BITS bits.

    Values are left-aligned within the partition (host bits zero), which is
    the canonical prefix form used across the project.
    """
    pool: list[tuple[int, int]] = []
    for length, count in _allocate_per_length(total, weights).items():
        values = rng.choice(1 << length, size=count, replace=False)
        shift = PART_BITS - length
        pool.extend((int(v) << shift, length) for v in values)
    order = rng.permutation(len(pool))
    return [pool[i] for i in order]


def generate_routing_set(
    stats: RoutingFilterStats, seed: int | None = None
) -> RuleSet:
    """Synthesise one Routing rule set calibrated to a Table IV row.

    Rules match an exact ingress port plus an IPv4 destination prefix and
    carry priority = prefix length (longest-prefix-match semantics).  The
    generated set contains exactly ``stats.rules`` rules with distinct
    prefixes, including one default route (0.0.0.0/0); the number of
    distinct (value, length) entries stored by the higher and lower 16-bit
    partitions equals the published counts exactly.

    Construction: *short* routes (/1../15) each contribute one distinct
    higher-partition entry and leave the lower partition wild; *long*
    routes (/17../32) share a pool of exact 16-bit higher values and a
    pool of distinct lower-partition prefixes.  /16 routes are not
    generated — their higher entry (value, 16) could silently coincide
    with a long route's and break the exact calibration.
    """
    rng = np.random.default_rng(
        _seed_for("route", stats.name) if seed is None else seed
    )
    rows = stats.rules

    # -- decide the short/long split ------------------------------------
    # Roughly 5 % of the unique higher-partition entries come from short
    # routes, bounded so every pool keeps at least one element and the
    # long-rule combination space stays large enough.
    short_target = max(1, round(0.05 * stats.unique_ip_high))
    max_short = min(
        stats.unique_ip_high - 1,
        rows - 1 - stats.unique_ip_low,  # long rows must cover the low pool
    )
    n_short = max(1, min(short_target, max_short))
    n_high_long = stats.unique_ip_high - n_short
    n_long = rows - n_short - 1  # one row reserved for the default route
    if n_long < max(n_high_long, stats.unique_ip_low):
        raise ValueError(
            f"calibration infeasible for {stats.name}: {n_long} long rows "
            f"cannot cover pools of {n_high_long} and {stats.unique_ip_low}"
        )

    short_pool = _distinct_prefix_pool(rng, n_short, _SHORT_LENGTH_WEIGHTS)
    high_pool = rng.choice(1 << PART_BITS, size=n_high_long, replace=False)
    low_pool = _distinct_prefix_pool(rng, stats.unique_ip_low, _LOW_LENGTH_WEIGHTS)
    port_pool = rng.choice(4096, size=stats.unique_port, replace=False)

    port_idx = _coverage_first(rng, stats.unique_port, rows)
    columns = [
        _coverage_first(rng, n_high_long, n_long),
        _coverage_first(rng, stats.unique_ip_low, n_long),
    ]
    _repair_duplicates(rng, columns, [n_high_long, stats.unique_ip_low])

    action_ports = rng.integers(0, _EGRESS_PORTS, size=rows)
    rule_set = RuleSet(
        name=stats.name,
        application=Application.ROUTING,
        field_names=("in_port", "ipv4_dst"),
    )

    def add_rule(row: int, value32: int, length: int) -> None:
        rule_set.add(
            Rule(
                fields={
                    "in_port": ExactMatch(
                        value=int(port_pool[port_idx[row]]), bits=32
                    ),
                    "ipv4_dst": PrefixMatch(value=value32, length=length, bits=32),
                },
                priority=length,
                action_port=int(action_ports[row]),
            )
        )

    row = 0
    add_rule(row, 0, 0)  # the default route the paper calls out
    row += 1
    for value16, length in short_pool:
        add_rule(row, value16 << PART_BITS, length)
        row += 1
    for i in range(n_long):
        high_value = int(high_pool[columns[0][i]])
        low_value, low_length = low_pool[columns[1][i]]
        add_rule(row, (high_value << PART_BITS) | low_value, PART_BITS + low_length)
        row += 1
    assert row == rows
    return rule_set


@dataclass(frozen=True)
class SyntheticAclConfig:
    """Parameters for the uncalibrated ACL (5-tuple) generator."""

    rules: int = 1000
    seed: int = 0xAC1
    #: probability that a rule pins the protocol to TCP/UDP.
    proto_probability: float = 0.8
    #: probability that a constrained port is a range rather than exact.
    range_probability: float = 0.35
    #: probability that each IP prefix is non-wildcard.
    prefix_probability: float = 0.9


#: Well-known port ranges ACLs commonly use.
_ACL_RANGES: tuple[tuple[int, int], ...] = (
    (0, 1023),
    (1024, 65535),
    (1024, 5000),
    (6000, 6063),
    (49152, 65535),
)


def generate_acl_set(config: SyntheticAclConfig | None = None) -> RuleSet:
    """Generate a ClassBench-style 5-tuple ACL rule set.

    Unlike the MAC/Routing generators this one is not calibrated to a
    published table — the paper's ACL analysis is qualitative — but it
    exercises every predicate kind (prefix, exact, range, wildcard), which
    the correctness property tests rely on.
    """
    if config is None:
        config = SyntheticAclConfig()
    rng = np.random.default_rng(config.seed)
    rule_set = RuleSet(
        name=f"acl-{config.rules}",
        application=Application.ACL,
        field_names=("ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst", "ip_proto"),
    )
    for i in range(config.rules):
        fields = {}
        for ip_field in ("ipv4_src", "ipv4_dst"):
            if rng.random() < config.prefix_probability:
                length = int(rng.choice([8, 16, 24, 28, 32], p=[0.1, 0.2, 0.4, 0.15, 0.15]))
                value = int(rng.integers(0, 1 << length)) << (32 - length)
                fields[ip_field] = PrefixMatch(value=value, length=length, bits=32)
        for port_field in ("tcp_src", "tcp_dst"):
            draw = rng.random()
            if draw < config.range_probability:
                low, high = _ACL_RANGES[int(rng.integers(0, len(_ACL_RANGES)))]
                fields[port_field] = RangeMatch(low=low, high=high, bits=16)
            elif draw < 0.75:
                port = int(rng.integers(0, 1 << 16))
                fields[port_field] = RangeMatch(low=port, high=port, bits=16)
        if rng.random() < config.proto_probability:
            fields["ip_proto"] = ExactMatch(
                value=int(rng.choice([6, 17])), bits=8
            )
        rule_set.add(
            Rule(
                fields=fields,
                priority=config.rules - i,
                action_port=int(rng.integers(0, _EGRESS_PORTS)),
            )
        )
    return rule_set


#: Prefix-length mix for the large builders: production-BGP-shaped
#: (dominated by /24 with a long-prefix tail and a few short aggregates).
_LARGE_LENGTH_WEIGHTS: dict[int, float] = {
    8: 0.005,
    12: 0.01,
    16: 0.035,
    18: 0.04,
    19: 0.06,
    20: 0.09,
    21: 0.10,
    22: 0.14,
    23: 0.13,
    24: 0.33,
    26: 0.02,
    28: 0.02,
    30: 0.01,
    32: 0.01,
}

#: Ingress-port pool for the large builders.
_LARGE_PORTS = 16


def generate_large_routing_set(rules: int, seed: int = 0x105) -> RuleSet:
    """Synthesise a routing-style rule set at 10^5..10^6 scale.

    Unlike :func:`generate_routing_set`, this builder is *not* calibrated
    to a Table IV row — the paper's routers top out at ~4.5k rules, and
    the point here is the other end of the curve: exercising the memory
    model and the shared read-only runtime state
    (:mod:`repro.runtime.rulestate`) at the scale the related IP-lookup
    work (CRAM, TupleChain) operates at.  Shape choices keep generation
    itself O(rules):

    - every rule matches an exact ingress port (from a 16-port pool) plus
      a distinct IPv4 destination prefix, priority = prefix length —
      the same schema as the calibrated routing sets, so every scenario
      builder and example runs unchanged;
    - prefix lengths follow a production-BGP-shaped distribution
      (/24-heavy with a long tail), drawn vectorised and de-duplicated by
      the combined ``(value, length)`` key;
    - one priority-0 table-miss rule (empty match) terminates every
      lookup, so misses exercise the miss path rather than the
      architecture-level default.

    No range-match fields on purpose: the elementary-interval structure
    rebuilds in O(ranges^2) and would dominate build time long before
    10^5 rules.
    """
    if rules < 2:
        raise ValueError(f"need at least 2 rules, got {rules}")
    rng = np.random.default_rng(seed)
    lengths = np.array(sorted(_LARGE_LENGTH_WEIGHTS), dtype=np.int64)
    weights = np.array(
        [_LARGE_LENGTH_WEIGHTS[int(length)] for length in lengths],
        dtype=np.float64,
    )
    weights /= weights.sum()

    needed = rules - 1  # one row reserved for the table-miss rule
    chosen_values = np.empty(0, dtype=np.int64)
    chosen_lengths = np.empty(0, dtype=np.int64)
    while chosen_values.size < needed:
        draw = needed - chosen_values.size
        batch = max(1024, int(draw * 1.2))
        drawn_lengths = rng.choice(lengths, size=batch, p=weights)
        raw = rng.integers(0, 1 << 32, size=batch, dtype=np.int64)
        # Canonicalise to the prefix (host bits cleared), then key the
        # pair as value*64+length so np.unique dedups (value, length).
        shift = (32 - drawn_lengths).astype(np.int64)
        values = (raw >> shift) << shift
        keys = np.unique(values * 64 + drawn_lengths)
        if chosen_values.size:
            keys = np.setdiff1d(
                keys, chosen_values * 64 + chosen_lengths, assume_unique=True
            )
        rng.shuffle(keys)
        keys = keys[:draw]
        chosen_values = np.concatenate([chosen_values, keys // 64])
        chosen_lengths = np.concatenate([chosen_lengths, keys % 64])

    order = rng.permutation(needed)
    chosen_values = chosen_values[order]
    chosen_lengths = chosen_lengths[order]
    ports = rng.integers(0, _LARGE_PORTS, size=needed)
    action_ports = rng.integers(0, _EGRESS_PORTS, size=needed)

    rule_set = RuleSet(
        name=f"large-{rules}",
        application=Application.ROUTING,
        field_names=("in_port", "ipv4_dst"),
    )
    rule_set.add(Rule(fields={}, priority=0, action_port=0))  # table miss
    for row in range(needed):
        rule_set.add(
            Rule(
                fields={
                    "in_port": ExactMatch(value=int(ports[row]), bits=32),
                    "ipv4_dst": PrefixMatch(
                        value=int(chosen_values[row]),
                        length=int(chosen_lengths[row]),
                        bits=32,
                    ),
                },
                priority=int(chosen_lengths[row]),
                action_port=int(action_ports[row]),
            )
        )
    return rule_set


@functools.lru_cache(maxsize=None)
def large_rule_set(rules: int) -> RuleSet:
    """The default-seed large routing-style set (cached per size)."""
    return generate_large_routing_set(rules)


@functools.lru_cache(maxsize=None)
def mac_set(name: str) -> RuleSet:
    """The calibrated MAC-learning set for one router (cached)."""
    return generate_mac_set(TABLE3_MAC_STATS[name])


@functools.lru_cache(maxsize=None)
def routing_set(name: str) -> RuleSet:
    """The calibrated Routing set for one router (cached)."""
    return generate_routing_set(TABLE4_ROUTING_STATS[name])


def mac_sets(names: tuple[str, ...] = FILTER_NAMES) -> dict[str, RuleSet]:
    """All calibrated MAC-learning sets, keyed by router name."""
    return {name: mac_set(name) for name in names}


def routing_sets(names: tuple[str, ...] = FILTER_NAMES) -> dict[str, RuleSet]:
    """All calibrated Routing sets, keyed by router name."""
    return {name: routing_set(name) for name in names}
