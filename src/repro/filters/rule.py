"""Rule and rule-set data model.

A *rule* (the paper uses rule and filter interchangeably) constrains a set
of header fields and carries an action; a *rule set* is a named, typed
collection of rules belonging to one application (MAC learning, Routing,
ACL).  Field constraints reuse the OpenFlow predicate vocabulary from
:mod:`repro.openflow.match`, so converting a rule set into flow entries is
loss-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.openflow.actions import OutputAction
from repro.openflow.fields import REGISTRY, FieldRegistry
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import GotoTable, Instruction, WriteActions
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    Match,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)


def _is_unconstrained(predicate: FieldMatch) -> bool:
    """Predicates that exclude nothing (and are dropped by the OXM form)."""
    if isinstance(predicate, WildcardMatch):
        return True
    if isinstance(predicate, RangeMatch) and predicate.is_full:
        return True
    if isinstance(predicate, PrefixMatch) and predicate.length == 0:
        return True
    return False


class Application(enum.Enum):
    """The flow-set applications studied by the paper (Section III.C)."""

    MAC_LEARNING = "mac"
    ROUTING = "route"
    ACL = "acl"
    ARP = "arp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Rule:
    """One filter rule: field predicates, a priority and an action.

    Attributes:
        fields: mapping of field name -> predicate.  Absent fields are
            wildcards.
        priority: matching precedence, higher wins (for routing rules this
            is the prefix length, giving longest-prefix-match semantics).
        action_port: the output port of the rule's forwarding action.
    """

    fields: Mapping[str, FieldMatch]
    priority: int = 0
    action_port: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))

    def predicate(self, field_name: str, default_bits: int | None = None) -> FieldMatch:
        """Return this rule's predicate for a field (wildcard if absent).

        Args:
            field_name: the field to look up.
            default_bits: width for the implicit wildcard; defaults to the
                registry width of the field.
        """
        existing = self.fields.get(field_name)
        if existing is not None:
            return existing
        bits = default_bits if default_bits is not None else REGISTRY[field_name].bits
        return WildcardMatch(bits=bits)

    def matches(self, packet_fields: Mapping[str, int]) -> bool:
        """True when the packet satisfies every *constraining* predicate.

        Non-constraining predicates (wildcards, length-0 prefixes, full
        ranges) match even when the packet lacks the field — mirroring
        OpenFlow, where such constraints simply are not expressed
        (see :meth:`to_match`).
        """
        for name, predicate in self.fields.items():
            if _is_unconstrained(predicate):
                continue
            value = packet_fields.get(name)
            if value is None or not predicate.matches(value):
                return False
        return True

    def to_match(self, registry: FieldRegistry = REGISTRY) -> Match:
        """Convert to an OpenFlow match (dropping full wildcards)."""
        kept = {
            name: predicate
            for name, predicate in self.fields.items()
            if not _is_unconstrained(predicate)
        }
        return Match(kept, registry)

    def __hash__(self) -> int:
        return hash(
            (frozenset(self.fields.items()), self.priority, self.action_port)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return (
            dict(self.fields) == dict(other.fields)
            and self.priority == other.priority
            and self.action_port == other.action_port
        )


@dataclass
class RuleSet:
    """A named, application-typed collection of rules.

    ``field_names`` fixes the field schema of the set (e.g. the MAC
    learning sets constrain ``vlan_vid`` and ``eth_dst``); rules may only
    constrain schema fields, which the constructor verifies.
    """

    name: str
    application: Application
    field_names: tuple[str, ...]
    rules: list[Rule] = field(default_factory=list)

    def __post_init__(self) -> None:
        schema = set(self.field_names)
        for rule in self.rules:
            stray = set(rule.fields) - schema
            if stray:
                raise ValueError(
                    f"rule constrains fields {sorted(stray)} outside the "
                    f"schema {self.field_names} of rule set {self.name!r}"
                )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def add(self, rule: Rule) -> None:
        stray = set(rule.fields) - set(self.field_names)
        if stray:
            raise ValueError(
                f"rule constrains fields {sorted(stray)} outside the schema"
            )
        self.rules.append(rule)

    def field_predicates(self, field_name: str) -> list[FieldMatch]:
        """All predicates (including implicit wildcards) for one field."""
        return [rule.predicate(field_name) for rule in self.rules]

    def linear_lookup(self, packet_fields: Mapping[str, int]) -> Rule | None:
        """Reference semantics: highest priority matching rule.

        Ties break on declaration order (first installed wins), matching
        :class:`repro.openflow.table.FlowTable`.
        """
        best: Rule | None = None
        for rule in self.rules:
            if rule.matches(packet_fields):
                if best is None or rule.priority > best.priority:
                    best = rule
        return best

    def to_flow_entries(
        self,
        goto_table: int | None = None,
        extra_instructions: Sequence[Instruction] = (),
    ) -> list[FlowEntry]:
        """Render the rule set as OpenFlow flow entries.

        Each rule becomes a flow entry whose instruction set contains a
        Write-Actions with the rule's output action, plus an optional
        Goto-Table — exactly the two instructions the paper's Section IV.C
        attaches to matched packets.
        """
        entries: list[FlowEntry] = []
        for rule in self.rules:
            instructions: list[Instruction] = [
                WriteActions([OutputAction(rule.action_port)])
            ]
            if goto_table is not None:
                instructions.append(GotoTable(goto_table))
            instructions.extend(extra_instructions)
            entries.append(
                FlowEntry.build(
                    match=rule.to_match(),
                    priority=rule.priority,
                    instructions=instructions,
                )
            )
        return entries

    def summary(self) -> str:
        return (
            f"RuleSet({self.name!r}, {self.application.value}, "
            f"{len(self.rules)} rules, fields={list(self.field_names)})"
        )


def exact_rule(
    priority: int = 0, action_port: int = 0, **field_values: int
) -> Rule:
    """Convenience: build an all-exact-match rule from keyword values."""
    fields = {
        name: ExactMatch(value=value, bits=REGISTRY[name].bits)
        for name, value in field_values.items()
    }
    return Rule(fields=fields, priority=priority, action_port=action_port)


def merge_rule_sets(name: str, sets: Iterable[RuleSet]) -> RuleSet:
    """Concatenate rule sets that share an application and schema."""
    sets = list(sets)
    if not sets:
        raise ValueError("cannot merge zero rule sets")
    first = sets[0]
    for other in sets[1:]:
        if other.application != first.application:
            raise ValueError("cannot merge rule sets of different applications")
        if other.field_names != first.field_names:
            raise ValueError("cannot merge rule sets with different schemas")
    merged = RuleSet(
        name=name,
        application=first.application,
        field_names=first.field_names,
    )
    for rule_set in sets:
        for rule in rule_set:
            merged.add(rule)
    return merged
