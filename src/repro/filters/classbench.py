"""ClassBench 5-tuple filter format.

ClassBench is the de-facto interchange format for packet-classification
rule sets (used by the multi-dimensional lookup literature the paper
cites: HyperCuts, HyperSplit, RFC, DCFL...).  One rule per line::

    @<srcIP>/<len> <dstIP>/<len> <lo> : <hi> <lo> : <hi> <proto>/<mask>

e.g.::

    @192.168.0.0/16 10.0.0.0/8 0 : 65535 1024 : 65535 0x06/0xFF

Rules are priority-ordered first-match-wins in the file; we translate
that to descending priorities so our highest-priority-wins model agrees.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.filters.rule import Application, Rule, RuleSet
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.util.bits import canonical_prefix

_LINE_RE = re.compile(
    r"^@(?P<src>\d+\.\d+\.\d+\.\d+)/(?P<srclen>\d+)\s+"
    r"(?P<dst>\d+\.\d+\.\d+\.\d+)/(?P<dstlen>\d+)\s+"
    r"(?P<splo>\d+)\s*:\s*(?P<sphi>\d+)\s+"
    r"(?P<dplo>\d+)\s*:\s*(?P<dphi>\d+)\s+"
    r"(?P<proto>0x[0-9a-fA-F]+|\d+)/(?P<pmask>0x[0-9a-fA-F]+|\d+)"
)

FIELD_NAMES = ("ipv4_src", "ipv4_dst", "tcp_src", "tcp_dst", "ip_proto")


def _parse_ip(dotted: str) -> int:
    parts = [int(p) for p in dotted.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"invalid IPv4 address {dotted!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def _format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def parse_classbench_line(line: str, priority: int = 0) -> Rule:
    """Parse one ClassBench rule line into a :class:`Rule`."""
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise ValueError(f"not a ClassBench rule line: {line!r}")
    fields: dict[str, FieldMatch] = {}

    for ip_field, ip_key, len_key in (
        ("ipv4_src", "src", "srclen"),
        ("ipv4_dst", "dst", "dstlen"),
    ):
        length = int(match[len_key])
        if length > 0:
            value, length = canonical_prefix(_parse_ip(match[ip_key]), length, 32)
            fields[ip_field] = PrefixMatch(value=value, length=length, bits=32)

    for port_field, lo_key, hi_key in (
        ("tcp_src", "splo", "sphi"),
        ("tcp_dst", "dplo", "dphi"),
    ):
        low, high = int(match[lo_key]), int(match[hi_key])
        if (low, high) != (0, 65535):
            fields[port_field] = RangeMatch(low=low, high=high, bits=16)

    proto, proto_mask = _int(match["proto"]), _int(match["pmask"])
    if proto_mask == 0xFF:
        fields["ip_proto"] = ExactMatch(value=proto, bits=8)
    elif proto_mask != 0:
        raise ValueError(f"unsupported protocol mask {proto_mask:#x}")

    return Rule(fields=fields, priority=priority)


def load_classbench(path: str | Path, name: str | None = None) -> RuleSet:
    """Load a ClassBench filter file into an ACL rule set.

    File order is first-match-wins; rule ``i`` of ``n`` receives priority
    ``n - i`` so the highest-priority-match model preserves semantics.
    """
    path = Path(path)
    lines = [
        line
        for line in path.read_text().splitlines()
        if line.strip() and not line.lstrip().startswith("#")
    ]
    rule_set = RuleSet(
        name=name or path.stem,
        application=Application.ACL,
        field_names=FIELD_NAMES,
    )
    for i, line in enumerate(lines):
        rule_set.add(parse_classbench_line(line, priority=len(lines) - i))
    return rule_set


def _render_rule(rule: Rule) -> str:
    def prefix_of(field: str) -> tuple[int, int]:
        predicate = rule.fields.get(field)
        if predicate is None or isinstance(predicate, WildcardMatch):
            return (0, 0)
        assert isinstance(predicate, PrefixMatch)
        return (predicate.value, predicate.length)

    def range_of(field: str) -> tuple[int, int]:
        predicate = rule.fields.get(field)
        if predicate is None or isinstance(predicate, WildcardMatch):
            return (0, 65535)
        assert isinstance(predicate, RangeMatch)
        return (predicate.low, predicate.high)

    src, srclen = prefix_of("ipv4_src")
    dst, dstlen = prefix_of("ipv4_dst")
    splo, sphi = range_of("tcp_src")
    dplo, dphi = range_of("tcp_dst")
    proto = rule.fields.get("ip_proto")
    if proto is None or isinstance(proto, WildcardMatch):
        proto_text = "0x00/0x00"
    else:
        assert isinstance(proto, ExactMatch)
        proto_text = f"0x{proto.value:02X}/0xFF"
    return (
        f"@{_format_ip(src)}/{srclen}\t{_format_ip(dst)}/{dstlen}\t"
        f"{splo} : {sphi}\t{dplo} : {dphi}\t{proto_text}"
    )


def write_classbench(rule_set: RuleSet, path: str | Path) -> Path:
    """Write an ACL rule set as a ClassBench file (priority order)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(rule_set, key=lambda r: -r.priority)
    target.write_text("".join(_render_rule(rule) + "\n" for rule in ordered))
    return target
