"""The paper's published filter statistics, embedded as data.

These are the exact numbers of Tables III and IV of the paper — the rule
count and the number of unique field values per 16-bit partition for each
of the 16 Stanford-backbone routers (``bbra .. yozb``).  They serve two
purposes:

1. **Calibration targets** for :mod:`repro.filters.synthetic`, which
   generates rule sets reproducing these counts exactly; and
2. **Expected values** for the Table III / Table IV experiments, which
   verify the analysis pipeline recovers them from the generated sets.

Additional headline numbers quoted in the paper's Section V (prototype
memory, update saving) live in :data:`PAPER_HEADLINE_RESULTS` for use by
EXPERIMENTS.md generation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MacFilterStats:
    """One row of the paper's Table III (MAC learning application)."""

    name: str
    rules: int
    unique_vlan: int
    unique_eth_high: int
    unique_eth_mid: int
    unique_eth_low: int

    @property
    def unique_eth_partitions(self) -> tuple[int, int, int]:
        return (self.unique_eth_high, self.unique_eth_mid, self.unique_eth_low)

    @property
    def total_unique_entries(self) -> int:
        """Unique values summed over all labelled structures."""
        return (
            self.unique_vlan
            + self.unique_eth_high
            + self.unique_eth_mid
            + self.unique_eth_low
        )


@dataclass(frozen=True)
class RoutingFilterStats:
    """One row of the paper's Table IV (Routing application)."""

    name: str
    rules: int
    unique_port: int
    unique_ip_high: int
    unique_ip_low: int

    @property
    def unique_ip_partitions(self) -> tuple[int, int]:
        return (self.unique_ip_high, self.unique_ip_low)

    @property
    def total_unique_entries(self) -> int:
        return self.unique_port + self.unique_ip_high + self.unique_ip_low

    @property
    def high_exceeds_low(self) -> bool:
        """The paper's highlighted anomaly: coza/cozb/soza/sozb have more
        unique higher-partition than lower-partition values."""
        return self.unique_ip_high > self.unique_ip_low


#: Router names in publication order (shared by Tables III and IV).
FILTER_NAMES: tuple[str, ...] = (
    "bbra",
    "bbrb",
    "boza",
    "bozb",
    "coza",
    "cozb",
    "goza",
    "gozb",
    "poza",
    "pozb",
    "roza",
    "rozb",
    "soza",
    "sozb",
    "yoza",
    "yozb",
)

#: Table III — number of unique field values of flow-based MAC filter.
TABLE3_MAC_STATS: dict[str, MacFilterStats] = {
    s.name: s
    for s in (
        MacFilterStats("bbra", 507, 48, 46, 133, 261),
        MacFilterStats("bbrb", 151, 16, 26, 38, 55),
        MacFilterStats("boza", 3664, 139, 136, 3276, 2664),
        MacFilterStats("bozb", 4454, 139, 137, 1338, 3440),
        MacFilterStats("coza", 3295, 32, 225, 1578, 2824),
        MacFilterStats("cozb", 2129, 32, 194, 1101, 1861),
        MacFilterStats("goza", 6687, 208, 172, 2579, 5480),
        MacFilterStats("gozb", 7370, 209, 159, 1946, 6177),
        MacFilterStats("poza", 4533, 153, 195, 2165, 3786),
        MacFilterStats("pozb", 4999, 155, 169, 1759, 4170),
        MacFilterStats("roza", 3851, 114, 136, 2389, 3264),
        MacFilterStats("rozb", 3711, 113, 140, 1920, 3175),
        MacFilterStats("soza", 3153, 41, 187, 1115, 2682),
        MacFilterStats("sozb", 2399, 39, 161, 821, 2132),
        MacFilterStats("yoza", 3944, 112, 178, 1655, 3180),
        MacFilterStats("yozb", 2944, 101, 162, 1298, 2351),
    )
}

#: Table IV — number of unique field values of flow-based Routing filter.
TABLE4_ROUTING_STATS: dict[str, RoutingFilterStats] = {
    s.name: s
    for s in (
        RoutingFilterStats("bbra", 1835, 40, 82, 1190),
        RoutingFilterStats("bbrb", 1678, 20, 82, 1015),
        RoutingFilterStats("boza", 1614, 26, 53, 1084),
        RoutingFilterStats("bozb", 1455, 26, 53, 952),
        RoutingFilterStats("coza", 184909, 43, 20214, 7062),
        RoutingFilterStats("cozb", 183376, 39, 20212, 5575),
        RoutingFilterStats("goza", 1767, 21, 57, 1216),
        RoutingFilterStats("gozb", 1669, 22, 57, 1138),
        RoutingFilterStats("poza", 1489, 18, 54, 976),
        RoutingFilterStats("pozb", 1434, 20, 54, 932),
        RoutingFilterStats("roza", 1567, 17, 52, 1053),
        RoutingFilterStats("rozb", 1483, 16, 52, 988),
        RoutingFilterStats("soza", 184682, 48, 20212, 6723),
        RoutingFilterStats("sozb", 180944, 36, 20212, 3168),
        RoutingFilterStats("yoza", 4746, 77, 58, 3610),
        RoutingFilterStats("yozb", 2592, 48, 55, 1955),
    )
}

#: The four Routing filters the paper singles out (Fig. 4(b)) because their
#: higher 16-bit partition has more unique values than the lower one.
OUTLIER_ROUTING_FILTERS: tuple[str, ...] = ("coza", "cozb", "soza", "sozb")

#: Headline quantities quoted in the paper's Section V, for
#: paper-vs-measured reporting.
PAPER_HEADLINE_RESULTS: dict[str, float] = {
    # Section V.A prose
    "prototype_total_mbits": 5.0,
    "prototype_mbt_mbits": 2.0,
    "max_lut_entries": 209,  # worst-case unique VLAN IDs (gozb, Table III)
    "max_stored_nodes": 54010,  # MAC gozb, Fig. 2(a)
    "l1_max_nodes": 32,
    "l1_max_bits": 832,
    "eth_lower_trie_max_kbits": 983.7,  # gozb, Fig. 3 (sum of 3 levels)
    "ip_lower_trie_max_kbits": 572.57,  # coza/b, soza/b, Fig. 4
    "ip_higher_trie_outlier_kbits": 706.06,  # coza/b, soza/b higher trie
    "ip_lower_trie_regular_kbits": 321.3,  # non-outlier routing filters
    "routing_max_stored_nodes": 40000,  # "less than 40000" even for >180K rules
    # Section V.B prose
    "update_cycles_per_record": 2,
    "label_update_saving_percent": 56.92,
}
