"""Exception hierarchy for the OpenFlow model."""

from __future__ import annotations


class OpenFlowError(Exception):
    """Base class for every error raised by :mod:`repro.openflow`."""


class UnknownFieldError(OpenFlowError, KeyError):
    """A match or packet referenced a field name absent from the registry."""

    def __init__(self, field_name: str) -> None:
        super().__init__(f"unknown OpenFlow match field: {field_name!r}")
        self.field_name = field_name


class TableFullError(OpenFlowError):
    """A flow table reached its configured capacity."""


class PipelineError(OpenFlowError):
    """The pipeline configuration or a flow entry violates OpenFlow rules.

    Examples: a Goto-Table instruction pointing backwards, or a flow entry
    installed into a table id the pipeline does not have.
    """
