"""The OpenFlow multiple-table pipeline (v1.1+ processing model).

A packet enters at table 0 with an empty action set and zero metadata.
Each table lookup either matches an entry — whose instructions may apply
actions immediately, merge actions into the action set, update metadata
and/or send the packet onwards with Goto-Table — or misses.  On a miss the
table-miss entry (if present) decides; otherwise the configured
:class:`MissPolicy` applies.  The paper's architecture assumes misses go to
the controller ("Send to controller", Section IV.C), so that is the
default policy here.

Processing stops when a matched entry has no Goto-Table instruction; the
accumulated action set is then executed in the OpenFlow-specified order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Protocol

from repro.openflow.actions import (
    Action,
    CONTROLLER_PORT,
    OutputAction,
    SetFieldAction,
    action_set_order,
)
from repro.openflow.errors import PipelineError
from repro.openflow.flow import FlowEntry
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import ConsultSink
from repro.openflow.table import FlowTable


class MaskSink(ConsultSink, Protocol):
    """A consulted-bits sink that also tracks pipeline context: which
    table versions the walk crossed and which fields it rewrote (so
    later consults of rewritten values don't widen the mask).  The
    megaflow recorder is the canonical implementation."""

    def note_table(self, table_id: int, version: int) -> None: ...

    def mark_rewritten(self, field_name: str) -> None: ...


def written_fields(entry: FlowEntry) -> list[str]:
    """Fields an entry's *immediately executed* instructions overwrite.

    Apply-Actions set-fields and Write-Metadata rewrite the packet's
    working header before the next table's lookup; Write-Actions
    set-fields do **not** execute until pipeline end and must not be
    reported here (a premature mark would make megaflow masks unsound by
    suppressing consults of still-original values).
    """
    names: list[str] = []
    apply = entry.instructions.get(ApplyActions)
    if apply is not None:
        assert isinstance(apply, ApplyActions)
        names.extend(
            action.field_name
            for action in apply.actions
            if isinstance(action, SetFieldAction)
        )
    if entry.instructions.get(WriteMetadata) is not None:
        names.append("metadata")
    return names


class MissPolicy(enum.Enum):
    """What to do when a table has no matching entry and no miss entry."""

    SEND_TO_CONTROLLER = "controller"
    DROP = "drop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PipelineResult:
    """Outcome of processing one packet through the pipeline.

    Attributes:
        matched_entries: the entry matched in each visited table (in
            visit order); empty on a first-table miss.
        applied_actions: actions executed in order (Apply-Actions
            immediately, then the final action set).
        output_ports: ports the packet was forwarded to.
        sent_to_controller: True if any executed action (or the miss
            policy) sent the packet to the controller.
        dropped: True when processing finished with no output action.
        metadata: final value of the 64-bit metadata register.
        tables_visited: ids of the tables consulted.
        final_fields: the packet fields after any set-field rewrites.
    """

    matched_entries: list[FlowEntry] = field(default_factory=list)
    applied_actions: list[Action] = field(default_factory=list)
    output_ports: list[int] = field(default_factory=list)
    sent_to_controller: bool = False
    dropped: bool = False
    metadata: int = 0
    tables_visited: list[int] = field(default_factory=list)
    final_fields: dict[str, int] = field(default_factory=dict)

    @property
    def matched(self) -> bool:
        return bool(self.matched_entries)


class OpenFlowPipeline:
    """An ordered sequence of flow tables with OpenFlow v1.3 semantics."""

    def __init__(
        self,
        tables: Sequence[FlowTable] | int = 2,
        miss_policy: MissPolicy = MissPolicy.SEND_TO_CONTROLLER,
    ) -> None:
        if isinstance(tables, int):
            if tables < 1:
                raise PipelineError("pipeline needs at least one table")
            tables = [FlowTable(table_id=i) for i in range(tables)]
        ids = [t.table_id for t in tables]
        if ids != sorted(set(ids)):
            raise PipelineError(f"table ids must be unique and ascending: {ids}")
        self._tables: dict[int, FlowTable] = {t.table_id: t for t in tables}
        self._order: list[int] = ids
        self.miss_policy = miss_policy

    def __len__(self) -> int:
        return len(self._order)

    @property
    def tables(self) -> list[FlowTable]:
        return [self._tables[i] for i in self._order]

    def table(self, table_id: int) -> FlowTable:
        try:
            return self._tables[table_id]
        except KeyError:
            raise PipelineError(f"pipeline has no table {table_id}") from None

    def install(self, table_id: int, entry: FlowEntry) -> None:
        """Install a flow entry, validating any Goto-Table is forward-only."""
        goto = entry.instructions.goto_table
        if goto is not None:
            if goto.table_id not in self._tables:
                raise PipelineError(
                    f"goto_table:{goto.table_id} targets a missing table"
                )
            if goto.table_id <= table_id:
                raise PipelineError(
                    f"goto_table:{goto.table_id} from table {table_id} "
                    "must point to a later table"
                )
        self.table(table_id).add(entry)

    def process(
        self,
        packet_fields: Mapping[str, int],
        mask: MaskSink | None = None,
    ) -> PipelineResult:
        """Run one packet through the pipeline and execute its actions.

        ``mask``, when given, is a traversal recorder (e.g. a
        :class:`~repro.runtime.megaflow.MegaflowRecorder`) threading
        megaflow capture through the scalar path: each visited table is
        tagged with its mutation version, each lookup folds in the bits
        it consulted, and every header rewrite is marked so later
        consults of derived values stop widening the mask over the
        *original* packet.
        """
        result = PipelineResult(final_fields=dict(packet_fields))
        action_set: list[Action] = []
        table_id: int | None = self._order[0]

        while table_id is not None:
            table = self.table(table_id)
            result.tables_visited.append(table_id)
            if mask is None:
                entry = table.lookup(result.final_fields)
            else:
                mask.note_table(table_id, table.version)
                entry = table.lookup(result.final_fields, mask=mask)
            if entry is None:
                self._handle_miss(result)
                return result
            result.matched_entries.append(entry)
            table_id = self._execute_instructions(entry, action_set, result)
            if mask is not None:
                for name in written_fields(entry):
                    mask.mark_rewritten(name)

        self._execute_action_set(action_set, result)
        if mask is not None:
            # Action-set rewrites run after the last lookup; marking them
            # here (never earlier!) keeps the mask sound while letting
            # capture code derive the full set of overwritten fields.
            for action in action_set:
                if isinstance(action, SetFieldAction):
                    mask.mark_rewritten(action.field_name)
        if not result.output_ports and not result.sent_to_controller:
            result.dropped = True
        return result

    def _execute_instructions(
        self,
        entry: FlowEntry,
        action_set: list[Action],
        result: PipelineResult,
    ) -> int | None:
        """Run one entry's instructions; returns the next table id, if any.

        OpenFlow v1.3 §5.9 mandates execution by *type* order — Meter,
        Apply-Actions, Clear-Actions, Write-Actions, Write-Metadata,
        Goto-Table — so instructions are fetched by type rather than
        trusting the order the entry happens to iterate in.  In
        particular, Clear-Actions always empties the action set *before*
        this entry's Write-Actions merges into it.
        """
        # FlowEntry.__post_init__ guarantees a validated InstructionSet.
        instructions = entry.instructions
        # Meter is modelled as a no-op tag.
        apply = instructions.get(ApplyActions)
        if apply is not None:
            assert isinstance(apply, ApplyActions)
            for action in apply.actions:
                self._execute_action(action, result)
        if instructions.get(ClearActions) is not None:
            action_set.clear()
        write = instructions.get(WriteActions)
        if write is not None:
            assert isinstance(write, WriteActions)
            action_set.extend(write.actions)
        metadata = instructions.get(WriteMetadata)
        if metadata is not None:
            assert isinstance(metadata, WriteMetadata)
            result.metadata = metadata.apply(result.metadata)
            result.final_fields["metadata"] = result.metadata
        goto = instructions.goto_table
        return goto.table_id if goto is not None else None

    def _execute_action_set(
        self, action_set: list[Action], result: PipelineResult
    ) -> None:
        for action in action_set_order(tuple(action_set)):
            self._execute_action(action, result)

    def _execute_action(self, action: Action, result: PipelineResult) -> None:
        result.applied_actions.append(action)
        if isinstance(action, OutputAction):
            result.output_ports.append(action.port)
            if action.to_controller:
                result.sent_to_controller = True
        elif isinstance(action, SetFieldAction):
            action.apply(result.final_fields)

    def _handle_miss(self, result: PipelineResult) -> None:
        if self.miss_policy is MissPolicy.SEND_TO_CONTROLLER:
            action = OutputAction(CONTROLLER_PORT)
            result.applied_actions.append(action)
            result.output_ports.append(CONTROLLER_PORT)
            result.sent_to_controller = True
        else:
            result.dropped = True
