"""OpenFlow actions.

Actions are what a flow entry ultimately does to a packet: forward it,
rewrite a header field, push or pop a VLAN tag, hand it to a group, or send
it to the controller.  The paper's architecture stores these in the action
tables addressed by the index calculation (Section IV.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openflow.errors import OpenFlowError
from repro.openflow.fields import REGISTRY, FieldRegistry

#: Reserved port numbers from the OpenFlow 1.3 specification.
MAX_PORT = 0xFFFFFF00
CONTROLLER_PORT = 0xFFFFFFFD
FLOOD_PORT = 0xFFFFFFFB
ALL_PORT = 0xFFFFFFFC
IN_PORT_PORT = 0xFFFFFFF8


class Action:
    """Base class for all actions.  Immutable value objects."""

    #: Order key within an OpenFlow action *set* (spec §5.10: the action
    #: set is executed in a fixed order regardless of insertion order).
    set_order: int = 50

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward the packet to a port (possibly a reserved port)."""

    port: int
    set_order = 100  # output is always last in the action set

    def __post_init__(self) -> None:
        if self.port < 0:
            raise OpenFlowError(f"invalid output port {self.port}")

    @property
    def to_controller(self) -> bool:
        return self.port == CONTROLLER_PORT

    def describe(self) -> str:
        if self.to_controller:
            return "output:CONTROLLER"
        if self.port == FLOOD_PORT:
            return "output:FLOOD"
        return f"output:{self.port}"


@dataclass(frozen=True)
class GroupAction(Action):
    """Process the packet through the given group."""

    group_id: int
    set_order = 90

    def describe(self) -> str:
        return f"group:{self.group_id}"


@dataclass(frozen=True)
class SetQueueAction(Action):
    """Bind the packet to a transmit queue on the output port."""

    queue_id: int
    set_order = 40

    def describe(self) -> str:
        return f"set_queue:{self.queue_id}"


@dataclass(frozen=True)
class SetFieldAction(Action):
    """Rewrite one header field to a fixed value."""

    field_name: str
    value: int
    registry: FieldRegistry = field(
        default_factory=lambda: REGISTRY, compare=False, repr=False
    )
    set_order = 30

    def __post_init__(self) -> None:
        definition = self.registry[self.field_name]
        if not 0 <= self.value <= definition.max_value:
            raise OpenFlowError(
                f"set-field value {self.value:#x} exceeds "
                f"{self.field_name} width {definition.bits}"
            )

    def apply(self, packet_fields: dict[str, int]) -> None:
        """Apply the rewrite to an extracted-field dict in place."""
        packet_fields[self.field_name] = self.value

    def describe(self) -> str:
        return f"set_field:{self.field_name}={self.value:#x}"


@dataclass(frozen=True)
class PushVlanAction(Action):
    """Push a new outermost 802.1Q tag (ethertype 0x8100 or 0x88a8)."""

    ethertype: int = 0x8100
    set_order = 20

    def __post_init__(self) -> None:
        if self.ethertype not in (0x8100, 0x88A8):
            raise OpenFlowError(
                f"push_vlan ethertype must be 0x8100/0x88a8, got {self.ethertype:#x}"
            )

    def describe(self) -> str:
        return f"push_vlan:{self.ethertype:#x}"


@dataclass(frozen=True)
class PopVlanAction(Action):
    """Pop the outermost 802.1Q tag."""

    set_order = 10

    def describe(self) -> str:
        return "pop_vlan"


def action_set_order(actions: tuple[Action, ...]) -> tuple[Action, ...]:
    """Order actions as an OpenFlow action set would execute them.

    Within an action set, at most one action of each type is kept (the
    most recently written wins — OpenFlow spec §5.10) and execution follows
    the fixed type order, with output always last.
    """
    latest: dict[type, Action] = {}
    set_fields: dict[str, Action] = {}
    for action in actions:
        if isinstance(action, SetFieldAction):
            # set-field is per-field: one per field may live in the set.
            set_fields[action.field_name] = action
        else:
            latest[type(action)] = action
    merged = list(latest.values()) + list(set_fields.values())
    return tuple(sorted(merged, key=lambda a: (a.set_order, a.describe())))
