"""OpenFlow v1.3 OXM match-field registry.

OpenFlow v1.3 defines 39 basic OXM match fields plus the 64-bit metadata
register used to pass state between tables of the pipeline (paper,
Section III.A).  Fifteen of those fields are the "common matching fields"
the paper analyses in Table II; each carries the matching method its
semantics require:

- **EM** (exact match) — every bit compared, e.g. ingress port, VLAN ID;
- **LPM** (longest prefix match) — the wildcard-capable address fields;
- **RM** (range match) — the transport port fields.

The registry is the single source of truth for field names, widths and
matching methods used by the packet model, the rule model, the analysis
code and the lookup architecture.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator, Mapping

from repro.openflow.errors import UnknownFieldError


class MatchMethod(enum.Enum):
    """Matching method a field requires (paper Table II, column 3)."""

    EXACT = "EM"
    PREFIX = "LPM"
    RANGE = "RM"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FieldDef:
    """Definition of one OXM match field.

    Attributes:
        name: canonical snake_case field name (e.g. ``"ipv4_src"``).
        oxm_id: the OFPXMT_OFB_* numeric identifier from the OF 1.3 spec.
        bits: field width in bits.
        method: matching method the field requires.
        common: True for the 15 common fields the paper analyses.
        paper_name: the row label used in the paper's Table II (common
            fields only, empty otherwise).
        maskable: whether OF 1.3 allows a bitmask on this field.
    """

    name: str
    oxm_id: int
    bits: int
    method: MatchMethod
    common: bool = False
    paper_name: str = ""
    maskable: bool = False

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")

    @property
    def max_value(self) -> int:
        """Largest representable value of the field."""
        return (1 << self.bits) - 1


def _f(
    name: str,
    oxm_id: int,
    bits: int,
    method: MatchMethod,
    paper_name: str = "",
    maskable: bool = False,
) -> FieldDef:
    return FieldDef(
        name=name,
        oxm_id=oxm_id,
        bits=bits,
        method=method,
        common=bool(paper_name),
        paper_name=paper_name,
        maskable=maskable,
    )


#: All OpenFlow v1.3 basic OXM fields (OFPXMT_OFB_*), plus metadata.  The
#: ``paper_name`` column marks the 15 common fields of the paper's Table II.
OXM_FIELDS: tuple[FieldDef, ...] = (
    _f("in_port", 0, 32, MatchMethod.EXACT, "Ingress Port"),
    _f("in_phy_port", 1, 32, MatchMethod.EXACT),
    _f("metadata", 2, 64, MatchMethod.EXACT, maskable=True),
    _f("eth_dst", 3, 48, MatchMethod.PREFIX, "Destination Ethernet", maskable=True),
    _f("eth_src", 4, 48, MatchMethod.PREFIX, "Source Ethernet", maskable=True),
    _f("eth_type", 5, 16, MatchMethod.EXACT, "Ethernet Type"),
    _f("vlan_vid", 6, 13, MatchMethod.EXACT, "VLAN ID", maskable=True),
    _f("vlan_pcp", 7, 3, MatchMethod.EXACT, "VLAN Priority"),
    _f("ip_dscp", 8, 6, MatchMethod.EXACT, "IPv4 ToS"),
    _f("ip_ecn", 9, 2, MatchMethod.EXACT),
    _f("ip_proto", 10, 8, MatchMethod.EXACT, "IPv4 Protocol"),
    _f("ipv4_src", 11, 32, MatchMethod.PREFIX, "Source IPv4", maskable=True),
    _f("ipv4_dst", 12, 32, MatchMethod.PREFIX, "Destination IPv4", maskable=True),
    _f("tcp_src", 13, 16, MatchMethod.RANGE, "Source Port"),
    _f("tcp_dst", 14, 16, MatchMethod.RANGE, "Destination Port"),
    _f("udp_src", 15, 16, MatchMethod.RANGE),
    _f("udp_dst", 16, 16, MatchMethod.RANGE),
    _f("sctp_src", 17, 16, MatchMethod.RANGE),
    _f("sctp_dst", 18, 16, MatchMethod.RANGE),
    _f("icmpv4_type", 19, 8, MatchMethod.EXACT),
    _f("icmpv4_code", 20, 8, MatchMethod.EXACT),
    _f("arp_op", 21, 16, MatchMethod.EXACT),
    _f("arp_spa", 22, 32, MatchMethod.PREFIX, maskable=True),
    _f("arp_tpa", 23, 32, MatchMethod.PREFIX, maskable=True),
    _f("arp_sha", 24, 48, MatchMethod.PREFIX, maskable=True),
    _f("arp_tha", 25, 48, MatchMethod.PREFIX, maskable=True),
    _f("ipv6_src", 26, 128, MatchMethod.PREFIX, "Source IPv6", maskable=True),
    _f("ipv6_dst", 27, 128, MatchMethod.PREFIX, "Destination IPv6", maskable=True),
    _f("ipv6_flabel", 28, 20, MatchMethod.EXACT, maskable=True),
    _f("icmpv6_type", 29, 8, MatchMethod.EXACT),
    _f("icmpv6_code", 30, 8, MatchMethod.EXACT),
    _f("ipv6_nd_target", 31, 128, MatchMethod.EXACT),
    _f("ipv6_nd_sll", 32, 48, MatchMethod.EXACT),
    _f("ipv6_nd_tll", 33, 48, MatchMethod.EXACT),
    _f("mpls_label", 34, 20, MatchMethod.EXACT, "MPLS Label"),
    _f("mpls_tc", 35, 3, MatchMethod.EXACT),
    _f("mpls_bos", 36, 1, MatchMethod.EXACT),
    _f("pbb_isid", 37, 24, MatchMethod.EXACT, maskable=True),
    _f("tunnel_id", 38, 64, MatchMethod.EXACT, maskable=True),
    _f("ipv6_exthdr", 39, 9, MatchMethod.EXACT, maskable=True),
)


class FieldRegistry(Mapping[str, FieldDef]):
    """Immutable name-indexed view over a set of field definitions."""

    def __init__(self, fields: tuple[FieldDef, ...] = OXM_FIELDS) -> None:
        self._by_name = {f.name: f for f in fields}
        if len(self._by_name) != len(fields):
            raise ValueError("duplicate field names in registry")

    def __getitem__(self, name: str) -> FieldDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownFieldError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def width(self, name: str) -> int:
        """Width in bits of the named field."""
        return self[name].bits

    def method(self, name: str) -> MatchMethod:
        """Matching method of the named field."""
        return self[name].method

    def common_fields(self) -> tuple[FieldDef, ...]:
        """The 15 common matching fields of the paper's Table II."""
        return tuple(f for f in self._by_name.values() if f.common)

    def match_field_count(self, exclude_metadata: bool = True) -> int:
        """Number of match fields (paper: "39 excluding metadata")."""
        count = len(self._by_name)
        if exclude_metadata and "metadata" in self._by_name:
            count -= 1
        return count


#: The process-wide default registry.
REGISTRY = FieldRegistry()


def paper_table2_fields() -> tuple[FieldDef, ...]:
    """The rows of the paper's Table II, in publication order."""
    order = (
        "in_port",
        "eth_src",
        "eth_dst",
        "eth_type",
        "vlan_vid",
        "vlan_pcp",
        "mpls_label",
        "ipv4_src",
        "ipv4_dst",
        "ipv6_src",
        "ipv6_dst",
        "ip_proto",
        "ip_dscp",
        "tcp_src",
        "tcp_dst",
    )
    return tuple(REGISTRY[name] for name in order)
