"""OpenFlow instructions.

Instructions are attached to flow entries and direct pipeline processing.
They were introduced together with multiple tables in OpenFlow v1.1; the
two the paper relies on (Section IV.C) are **Goto-Table** (forward the
packet to a later table) and **Write-Actions** (merge actions into the
accumulated action set).  The remaining v1.3 instructions are implemented
for completeness: Apply-Actions, Clear-Actions, Write-Metadata and Meter.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.openflow.actions import Action
from repro.openflow.errors import PipelineError
from repro.util.bits import mask_of

METADATA_BITS = 64


class Instruction:
    """Base class for all instructions.  Immutable value objects."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class GotoTable(Instruction):
    """Continue processing at a later table of the pipeline."""

    table_id: int

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise PipelineError(f"invalid table id {self.table_id}")

    def describe(self) -> str:
        return f"goto_table:{self.table_id}"


@dataclass(frozen=True)
class WriteActions(Instruction):
    """Merge actions into the packet's accumulated action set."""

    actions: tuple[Action, ...]

    def __init__(self, actions: Iterable[Action]) -> None:
        object.__setattr__(self, "actions", tuple(actions))

    def describe(self) -> str:
        inner = ",".join(a.describe() for a in self.actions)
        return f"write_actions({inner})"


@dataclass(frozen=True)
class ApplyActions(Instruction):
    """Execute actions immediately, in order, while pipeline continues."""

    actions: tuple[Action, ...]

    def __init__(self, actions: Iterable[Action]) -> None:
        object.__setattr__(self, "actions", tuple(actions))

    def describe(self) -> str:
        inner = ",".join(a.describe() for a in self.actions)
        return f"apply_actions({inner})"


@dataclass(frozen=True)
class ClearActions(Instruction):
    """Empty the accumulated action set."""

    def describe(self) -> str:
        return "clear_actions"


@dataclass(frozen=True)
class WriteMetadata(Instruction):
    """Update the 64-bit metadata register: ``meta = meta & ~mask | value``."""

    value: int
    mask: int = mask_of(METADATA_BITS)

    def __post_init__(self) -> None:
        if self.value & ~mask_of(METADATA_BITS) or self.mask & ~mask_of(METADATA_BITS):
            raise PipelineError("metadata value/mask exceed 64 bits")
        if self.value & ~self.mask:
            raise PipelineError("metadata value has bits outside the mask")

    def apply(self, metadata: int) -> int:
        return (metadata & ~self.mask) | self.value

    def describe(self) -> str:
        return f"write_metadata:{self.value:#x}/{self.mask:#x}"


@dataclass(frozen=True)
class Meter(Instruction):
    """Direct the packet to a meter (rate limiting); modelled as a tag."""

    meter_id: int

    def describe(self) -> str:
        return f"meter:{self.meter_id}"


class InstructionSet:
    """The validated, ordered instruction list of one flow entry.

    OpenFlow allows at most one instruction of each type per entry and
    defines a fixed execution order: Meter, Apply-Actions, Clear-Actions,
    Write-Actions, Write-Metadata, Goto-Table.  This class enforces both.
    """

    _ORDER: tuple[type, ...] = (
        Meter,
        ApplyActions,
        ClearActions,
        WriteActions,
        WriteMetadata,
        GotoTable,
    )

    __slots__ = ("_by_type",)

    def __init__(self, instructions: Iterable[Instruction] = ()) -> None:
        self._by_type: dict[type, Instruction] = {}
        for instruction in instructions:
            kind = type(instruction)
            if kind not in self._ORDER:
                raise PipelineError(f"unknown instruction type {kind.__name__}")
            if kind in self._by_type:
                raise PipelineError(
                    f"duplicate instruction of type {kind.__name__}"
                )
            self._by_type[kind] = instruction

    def __iter__(self) -> Iterator[Instruction]:
        """Iterate in OpenFlow execution order."""
        for kind in self._ORDER:
            if kind in self._by_type:
                yield self._by_type[kind]

    def __len__(self) -> int:
        return len(self._by_type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstructionSet):
            return NotImplemented
        return self._by_type == other._by_type

    def __repr__(self) -> str:
        return f"InstructionSet([{', '.join(i.describe() for i in self)}])"

    def get(self, kind: type) -> Instruction | None:
        """Return the instruction of the given type, if present."""
        return self._by_type.get(kind)

    @property
    def goto_table(self) -> GotoTable | None:
        instruction = self._by_type.get(GotoTable)
        assert instruction is None or isinstance(instruction, GotoTable)
        return instruction

    def describe(self) -> str:
        return "; ".join(i.describe() for i in self)
