"""A single OpenFlow flow table with highest-priority-match semantics.

This is the behavioural reference model: a sorted list searched linearly.
It is deliberately simple — the paper's contribution (the decomposition
architecture in :mod:`repro.core`) is differential-tested against this
table, so its correctness anchors everything else.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

from repro.openflow.errors import TableFullError
from repro.openflow.flow import FlowEntry
from repro.openflow.match import ConsultSink, Match
from repro.packet.headers import frame_length


class FlowTable:
    """An ordered set of flow entries.

    Entries are kept sorted by :attr:`FlowEntry.sort_key`, so
    :meth:`lookup` is a linear scan returning the first hit — exactly the
    OpenFlow "highest priority matching entry" semantics.
    """

    def __init__(self, table_id: int = 0, max_entries: int | None = None) -> None:
        if table_id < 0:
            raise ValueError(f"invalid table id {table_id}")
        self.table_id = table_id
        self.max_entries = max_entries
        self._entries: list[FlowEntry] = []
        self._by_key: dict[tuple[Match, int], FlowEntry] = {}
        self._dirty = False  # entries appended but not yet re-sorted
        self.lookup_count = 0
        self.matched_count = 0
        #: Mutation counter; bumped on every add/remove so lookup caches
        #: (e.g. :class:`repro.runtime.cache.MicroflowCache`) can detect
        #: staleness without wrapping the mutation interface.
        self.version = 0
        self._snapshot: tuple[FlowEntry, ...] = ()
        self._snapshot_version = -1

    def __len__(self) -> int:
        return len(self._entries)

    def entries_snapshot(self) -> tuple[FlowEntry, ...]:
        """The entries in deterministic iteration order, cached per
        :attr:`version`.

        Positions in this tuple are the ``entry_ref`` coordinates the
        sharded runtime's stats-return protocol uses
        (:class:`~repro.runtime.transport.EntryIndex`): a parent table
        and a worker replica at the same mutation-log position agree on
        it, because entries sort on pickle-preserved keys.
        """
        if self._snapshot_version != self.version:
            self._snapshot = tuple(self)
            self._snapshot_version = self.version
        return self._snapshot

    def __iter__(self) -> Iterator[FlowEntry]:
        self._ensure_sorted()
        return iter(self._entries)

    def _ensure_sorted(self) -> None:
        # Adds mark the table dirty and sorting is deferred to the next
        # read, so bulk installation stays O(n log n) overall.
        if self._dirty:
            self._entries.sort(key=lambda e: e.sort_key)
            self._dirty = False

    def add(self, entry: FlowEntry) -> None:
        """Insert an entry, replacing an identical-match same-priority one.

        OpenFlow flow-mod ADD semantics: an entry with the same match and
        priority overwrites the existing entry.
        """
        if (
            self.max_entries is not None
            and len(self._entries) >= self.max_entries
            and self._find(entry.match, entry.priority) is None
        ):
            raise TableFullError(
                f"table {self.table_id} full ({self.max_entries} entries)"
            )
        existing = self._find(entry.match, entry.priority)
        if existing is not None:
            self._entries.remove(existing)
        self._entries.append(entry)
        self._by_key[(entry.match, entry.priority)] = entry
        self._dirty = True
        self.version += 1

    def remove(self, match: Match, priority: int) -> bool:
        """Delete the entry with the exact match and priority; True if found."""
        existing = self._find(match, priority)
        if existing is None:
            return False
        self._entries.remove(existing)
        del self._by_key[(match, priority)]
        self.version += 1
        return True

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        """Delete all entries satisfying ``predicate``; returns count."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        self._by_key = {
            (e.match, e.priority): e for e in self._entries
        }
        if before != len(self._entries):
            self.version += 1
        return before - len(self._entries)

    def lookup(
        self,
        packet_fields: Mapping[str, int],
        mask: ConsultSink | None = None,
    ) -> FlowEntry | None:
        """Return the highest-priority entry matching the packet, if any.

        ``mask``, when given, is a consulted-bits sink (an object with a
        ``consult(field_name, bitmask)`` method): every entry the scan
        evaluates folds its predicates' consulted bits in — a packet
        agreeing on all of them fails (or matches) exactly the same
        entries, so the scan outcome is pinned.  Entries below the first
        hit are never evaluated and contribute nothing.
        """
        self._ensure_sorted()
        self.lookup_count += 1
        for entry in self._entries:
            if mask is not None:
                for name, predicate in entry.match.items():
                    mask.consult(name, predicate.consulted_mask())
            if entry.matches(packet_fields):
                self.matched_count += 1
                entry.stats.record(frame_length(packet_fields))
                return entry
        return None

    def consulted_mask(self, packet_fields: Mapping[str, int]) -> dict[str, int]:
        """The consulted-bits masks a :meth:`lookup` of this packet would
        report, without the lookup's side effects (no counters, no flow
        stats).  Used by caches to backfill masks for entries resolved
        before any mask sink was attached.
        """
        self._ensure_sorted()
        fields: dict[str, int] = {}
        for entry in self._entries:
            for name, predicate in entry.match.items():
                bits = predicate.consulted_mask()
                if bits:
                    fields[name] = fields.get(name, 0) | bits
            if entry.matches(packet_fields):
                break
        return fields

    def _find(self, match: Match, priority: int) -> FlowEntry | None:
        return self._by_key.get((match, priority))

    @property
    def table_miss_entry(self) -> FlowEntry | None:
        """The table-miss entry (priority 0, empty match), if installed."""
        for entry in self._entries:
            if entry.is_table_miss:
                return entry
        return None
