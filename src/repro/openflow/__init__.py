"""OpenFlow v1.3 data-plane model.

This package is a from-scratch implementation of the parts of the OpenFlow
switch model the paper builds on:

- :mod:`repro.openflow.fields` — the OXM match-field registry, including
  the 15 common fields of the paper's Table II with their widths and
  required matching methods (EM / RM / LPM).
- :mod:`repro.openflow.match` — per-field match predicates (exact, masked,
  prefix, range) and the multi-field :class:`Match`.
- :mod:`repro.openflow.flow` / :mod:`repro.openflow.table` — flow entries
  with priorities, counters and timeouts, and the single flow table with
  highest-priority-match semantics.
- :mod:`repro.openflow.instructions` / :mod:`repro.openflow.actions` — the
  instruction set introduced with multiple tables in OpenFlow v1.1
  (Goto-Table, Write-Actions, ...) and the action vocabulary.
- :mod:`repro.openflow.pipeline` — the multiple-table pipeline: action-set
  accumulation, metadata passing, forward-only Goto-Table, table-miss
  handling (send to controller, as in the paper's Section IV.C).
"""

from repro.openflow.actions import (
    Action,
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
    SetQueueAction,
    CONTROLLER_PORT,
)
from repro.openflow.errors import (
    OpenFlowError,
    PipelineError,
    TableFullError,
    UnknownFieldError,
)
from repro.openflow.fields import (
    MatchMethod,
    FieldDef,
    FieldRegistry,
    OXM_FIELDS,
    REGISTRY,
    paper_table2_fields,
)
from repro.openflow.flow import FlowEntry, FlowStats
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    Instruction,
    InstructionSet,
    Meter,
    WriteActions,
    WriteMetadata,
)
from repro.openflow.match import (
    ExactMatch,
    FieldMatch,
    MaskedMatch,
    Match,
    PrefixMatch,
    RangeMatch,
    WildcardMatch,
)
from repro.openflow.pipeline import (
    MissPolicy,
    OpenFlowPipeline,
    PipelineResult,
)
from repro.openflow.table import FlowTable

__all__ = [
    "Action",
    "ApplyActions",
    "ClearActions",
    "CONTROLLER_PORT",
    "ExactMatch",
    "FieldDef",
    "FieldMatch",
    "FieldRegistry",
    "FlowEntry",
    "FlowStats",
    "FlowTable",
    "GotoTable",
    "GroupAction",
    "Instruction",
    "InstructionSet",
    "MaskedMatch",
    "Match",
    "MatchMethod",
    "Meter",
    "MissPolicy",
    "OpenFlowError",
    "OpenFlowPipeline",
    "OutputAction",
    "OXM_FIELDS",
    "PipelineError",
    "PipelineResult",
    "PopVlanAction",
    "PrefixMatch",
    "PushVlanAction",
    "RangeMatch",
    "REGISTRY",
    "SetFieldAction",
    "SetQueueAction",
    "TableFullError",
    "UnknownFieldError",
    "WildcardMatch",
    "WriteActions",
    "WriteMetadata",
    "paper_table2_fields",
]
