"""Per-field match predicates and the multi-field OpenFlow match.

OpenFlow expresses a flow entry's match as a set of (field, value[, mask])
pairs; absent fields are wildcards.  The paper's filter analysis needs the
same vocabulary at a slightly finer grain, so this module models each field
constraint as one of:

- :class:`ExactMatch` — all bits compared (EM);
- :class:`PrefixMatch` — CIDR-style longest-prefix wildcard (LPM syntax);
- :class:`RangeMatch` — inclusive numeric range (RM syntax, port fields);
- :class:`MaskedMatch` — arbitrary bitmask, the general OXM form;
- :class:`WildcardMatch` — matches anything (explicit wildcard).

A :class:`Match` is a mapping from field name to predicate; its
:meth:`Match.matches` evaluates a packet's extracted header fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Mapping
from typing import Protocol

from repro.openflow.errors import OpenFlowError
from repro.openflow.fields import REGISTRY, FieldRegistry
from repro.util.bits import mask_of, prefix_mask


class ConsultSink(Protocol):
    """Anything that records which header bits a lookup consulted.

    :class:`FieldMaskSink` is the plain implementation; the megaflow
    recorder layers rewrite filtering and table tagging on top of the
    same structural protocol.
    """

    def consult(self, field_name: str, bitmask: int) -> None: ...


class FieldMatch:
    """Base class for single-field predicates.

    Subclasses are immutable, hashable value objects so they can key the
    unique-value analysis and the label allocator directly.
    """

    def matches(self, value: int) -> bool:
        raise NotImplementedError

    def specificity(self) -> int:
        """Number of exactly-constrained bits; used to order overlapping
        predicates (an exact match is more specific than a /8 prefix)."""
        raise NotImplementedError

    def consulted_mask(self) -> int:
        """Bitmask of field bits that can influence :meth:`matches`.

        Two values agreeing on every masked bit get identical verdicts
        from this predicate — the soundness contract megaflow-style
        wildcard caches build on.  Range predicates cannot express their
        dependence as a bitmask, so they conservatively claim the whole
        field.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class WildcardMatch(FieldMatch):
    """Matches every value of a ``bits``-wide field."""

    bits: int

    def matches(self, value: int) -> bool:
        return True

    def specificity(self) -> int:
        return 0

    def consulted_mask(self) -> int:
        return 0


@dataclass(frozen=True)
class ExactMatch(FieldMatch):
    """Matches a single value of a ``bits``-wide field."""

    value: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= mask_of(self.bits):
            raise OpenFlowError(
                f"exact value {self.value:#x} does not fit in {self.bits} bits"
            )

    def matches(self, value: int) -> bool:
        return value == self.value

    def specificity(self) -> int:
        return self.bits

    def consulted_mask(self) -> int:
        return mask_of(self.bits)


@dataclass(frozen=True)
class PrefixMatch(FieldMatch):
    """CIDR prefix predicate: top ``length`` bits of ``value`` must match.

    ``PrefixMatch(value, length=0, bits=w)`` is the full wildcard (the
    paper's ``0.0.0.0/0`` routing entries).
    """

    value: int
    length: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= self.bits:
            raise OpenFlowError(
                f"prefix length {self.length} outside [0, {self.bits}]"
            )
        if self.value & ~prefix_mask(self.length, self.bits) & mask_of(self.bits):
            raise OpenFlowError(
                f"prefix value {self.value:#x}/{self.length} has host bits set"
            )

    def matches(self, value: int) -> bool:
        mask = prefix_mask(self.length, self.bits)
        return (value & mask) == self.value

    def specificity(self) -> int:
        return self.length

    def consulted_mask(self) -> int:
        return prefix_mask(self.length, self.bits)

    @property
    def key(self) -> tuple[int, int]:
        """The ``(value, length)`` pair identifying this prefix."""
        return (self.value, self.length)


@dataclass(frozen=True)
class RangeMatch(FieldMatch):
    """Inclusive numeric range predicate (transport port fields)."""

    low: int
    high: int
    bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high <= mask_of(self.bits):
            raise OpenFlowError(
                f"range [{self.low}, {self.high}] invalid for {self.bits} bits"
            )

    def matches(self, value: int) -> bool:
        return self.low <= value <= self.high

    def specificity(self) -> int:
        # A degenerate range is as specific as an exact match; the full
        # range is a wildcard.  Intermediate ranges are ranked by how much
        # of the value space they exclude, quantised to bit granularity.
        span = self.high - self.low + 1
        return self.bits - (span - 1).bit_length() if span > 1 else self.bits

    def consulted_mask(self) -> int:
        # A range boundary is not bit-aligned; only the full range is
        # value-independent.
        return 0 if self.is_full else mask_of(self.bits)

    @property
    def is_full(self) -> bool:
        """True when the range covers the whole field (wildcard)."""
        return self.low == 0 and self.high == mask_of(self.bits)


@dataclass(frozen=True)
class MaskedMatch(FieldMatch):
    """General OXM masked predicate: ``value & mask`` must equal ``value``."""

    value: int
    mask: int
    bits: int

    def __post_init__(self) -> None:
        if self.mask & ~mask_of(self.bits):
            raise OpenFlowError(f"mask {self.mask:#x} wider than {self.bits} bits")
        if self.value & ~self.mask:
            raise OpenFlowError("masked match has value bits outside the mask")

    def matches(self, value: int) -> bool:
        return (value & self.mask) == self.value

    def specificity(self) -> int:
        return bin(self.mask).count("1")

    def consulted_mask(self) -> int:
        return self.mask


class FieldMaskSink:
    """Minimal consulted-bits accumulator (field name -> OR'd bitmask).

    The common sink passed as ``mask=`` to the lookup paths when only
    the raw per-field masks are wanted — e.g. microflow-cache capture
    and :meth:`OpenFlowLookupTable.consulted_mask` backfill.  The
    megaflow recorder layers rewrite filtering and table tagging on top
    of the same ``consult`` protocol.
    """

    __slots__ = ("fields",)

    def __init__(self) -> None:
        self.fields: dict[str, int] = {}

    def consult(self, field_name: str, bitmask: int) -> None:
        if bitmask:
            self.fields[field_name] = self.fields.get(field_name, 0) | bitmask


class Match(Mapping[str, FieldMatch]):
    """A multi-field OpenFlow match (field name -> predicate).

    Fields not present are wildcards, as in the OXM encoding.  The match
    validates field names and value widths against a registry at
    construction, so downstream code never sees malformed predicates.

    Zero-bit predicates — ``WildcardMatch``, ``PrefixMatch(length=0)``,
    a full ``RangeMatch``, a zero-mask ``MaskedMatch`` — constrain
    nothing and have no OXM encoding (an all-wild field is simply
    omitted from the TLV list), so they are **canonicalised away** here:
    a match constructed with one equals (and hashes as) the match
    without it.  This also keeps the scan and decomposition paths
    observationally identical — the decomposition's engines treat
    zero-bit predicates as unconstrained (``NO_LABEL``), so the
    behavioural model must too, *including* for packets lacking the
    field entirely (found by the differential property harness: a
    ``/0`` route previously failed the scan path on a field-less packet
    but matched through the engines).
    """

    __slots__ = ("_fields", "_registry")

    def __init__(
        self,
        fields: Mapping[str, FieldMatch] | None = None,
        registry: FieldRegistry = REGISTRY,
    ) -> None:
        self._registry = registry
        validated: dict[str, FieldMatch] = {}
        for name, predicate in (fields or {}).items():
            definition = registry[name]
            if predicate.bits != definition.bits:  # type: ignore[attr-defined]
                raise OpenFlowError(
                    f"predicate for {name!r} is {predicate.bits} bits, "  # type: ignore[attr-defined]
                    f"field is {definition.bits}"
                )
            if predicate.consulted_mask() == 0:
                continue  # zero-bit predicate: OXM would omit the field
            validated[name] = predicate
        self._fields = validated

    @classmethod
    def exact(
        cls, registry: FieldRegistry = REGISTRY, **values: int
    ) -> Match:
        """Build an all-exact match from keyword field values.

        >>> m = Match.exact(in_port=3, eth_type=0x0800)
        >>> m.matches({"in_port": 3, "eth_type": 0x0800})
        True
        """
        fields = {
            name: ExactMatch(value, registry[name].bits)
            for name, value in values.items()
        }
        return cls(fields, registry)

    def __getitem__(self, name: str) -> FieldMatch:
        return self._fields[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._fields.items()))
        return f"Match({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._fields == other._fields

    def __reduce__(self) -> tuple[object, ...]:
        # The default registry is a process-global singleton; pickled by
        # value it copies the whole field schema into every serialised
        # match (~2.4 KB each), which dominates sealed entry blobs,
        # mutation-log submits, and transport payloads.  Ship the fields
        # alone and re-attach the global on load; matches built against
        # a custom registry still travel by value.
        if self._registry is REGISTRY:
            return (_rebuild_match, (self._fields,))
        return (Match, (self._fields, self._registry))

    def __hash__(self) -> int:
        return hash(frozenset(self._fields.items()))

    def matches(self, packet_fields: Mapping[str, int]) -> bool:
        """Evaluate against extracted packet fields.

        A constrained field missing from the packet (e.g. matching
        ``ipv4_src`` on a non-IP packet) fails the match, per the OpenFlow
        prerequisite model.
        """
        for name, predicate in self._fields.items():
            value = packet_fields.get(name)
            if value is None or not predicate.matches(value):
                return False
        return True

    def specificity(self) -> int:
        """Total constrained bits, used as a default priority tiebreak."""
        return sum(p.specificity() for p in self._fields.values())

    @property
    def is_table_miss(self) -> bool:
        """True for the empty match, which OpenFlow uses for table-miss."""
        return not self._fields


def _rebuild_match(fields: Mapping[str, FieldMatch]) -> Match:
    """Unpickle a :class:`Match` against the process-global default
    registry (see ``Match.__reduce__``); ``__init__`` re-validates."""
    return Match(fields, REGISTRY)
