"""Flow entries.

A flow entry binds a match to an instruction set at a priority, with the
bookkeeping OpenFlow switches keep per entry (cookie, timeouts, counters).
Entries are ordered by (priority desc, specificity desc, insertion order)
— priority decides, the rest make lookup deterministic for equal-priority
overlapping entries, which the OpenFlow spec leaves undefined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.openflow.instructions import Instruction, InstructionSet
from repro.openflow.match import Match

_sequence = itertools.count()


@dataclass
class FlowStats:
    """Per-entry counters maintained by the switch."""

    packet_count: int = 0
    byte_count: int = 0

    def record(self, byte_count: int = 0) -> None:
        self.packet_count += 1
        self.byte_count += byte_count

    def add(self, packets: int, byte_count: int = 0) -> None:
        """Fold an aggregated delta in (e.g. a sharded worker's
        :class:`~repro.runtime.transport.FlowStatsDelta` report)."""
        self.packet_count += packets
        self.byte_count += byte_count


@dataclass(frozen=True)
class FlowEntry:
    """One OpenFlow flow entry.

    Attributes:
        match: the multi-field match.
        priority: matching precedence (higher wins).
        instructions: the validated instruction set.
        cookie: opaque controller-chosen identifier.
        idle_timeout / hard_timeout: seconds, 0 = permanent.
        stats: mutable counters (excluded from equality).
    """

    match: Match
    priority: int = 0
    instructions: InstructionSet = field(default_factory=InstructionSet)
    cookie: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    stats: FlowStats = field(default_factory=FlowStats, compare=False, repr=False)
    _seq: int = field(default_factory=lambda: next(_sequence), compare=False, repr=False)

    def __post_init__(self) -> None:
        # Canonicalize raw instruction iterables so every entry carries a
        # validated InstructionSet and executes in OpenFlow type order
        # (v1.3 §5.9), regardless of the order the caller listed them in.
        if not isinstance(self.instructions, InstructionSet):
            object.__setattr__(
                self, "instructions", InstructionSet(self.instructions)
            )

    @classmethod
    def build(
        cls,
        match: Match,
        priority: int = 0,
        instructions: Iterable[Instruction] = (),
        cookie: int = 0,
    ) -> FlowEntry:
        """Convenience constructor accepting a plain instruction iterable."""
        return cls(
            match=match,
            priority=priority,
            instructions=InstructionSet(instructions),
            cookie=cookie,
        )

    def matches(self, packet_fields: Mapping[str, int]) -> bool:
        return self.match.matches(packet_fields)

    @property
    def sort_key(self) -> tuple[int, int, int]:
        """Descending-priority sort key with deterministic tiebreaks."""
        return (-self.priority, -self.match.specificity(), self._seq)

    @property
    def is_table_miss(self) -> bool:
        """OpenFlow table-miss = priority-0 entry with the empty match."""
        return self.priority == 0 and self.match.is_table_miss
