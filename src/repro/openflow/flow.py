"""Flow entries.

A flow entry binds a match to an instruction set at a priority, with the
bookkeeping OpenFlow switches keep per entry (cookie, timeouts, counters).
Entries are ordered by (priority desc, specificity desc, insertion order)
— priority decides, the rest make lookup deterministic for equal-priority
overlapping entries, which the OpenFlow spec leaves undefined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.openflow.instructions import Instruction, InstructionSet
from repro.openflow.match import Match

_sequence = itertools.count()

#: Sentinel for lifecycle timestamps that have not been stamped yet.
#: The lifecycle sweeper stamps them lazily: the virtual clock only
#: moves at sweep boundaries, so every event between two sweeps happened
#: at the clock value the previous sweep ended on, and stamping at the
#: *next* sweep is exact (see :mod:`repro.runtime.lifecycle`).
UNSTAMPED = -1


@dataclass
class FlowStats:
    """Per-entry counters maintained by the switch.

    Mirrors the POX ``TableEntry.counters`` dict: traffic counters plus
    the two lifecycle timestamps (``installed_at`` ~ POX ``created``,
    ``last_touched``).  Timestamps are virtual-clock ticks, never wall
    time.  ``swept_packets`` is lifecycle-sweeper bookkeeping — the
    packet count as of the entry's last expiry sweep — kept here so it
    survives the sweeper's per-table lane rebuilds.
    """

    packet_count: int = 0
    byte_count: int = 0
    installed_at: int = UNSTAMPED
    last_touched: int = UNSTAMPED
    swept_packets: int = 0

    def record(self, byte_count: int = 0) -> None:
        self.packet_count += 1
        self.byte_count += byte_count

    def add(self, packets: int, byte_count: int = 0) -> None:
        """Fold an aggregated delta in (e.g. a sharded worker's
        :class:`~repro.runtime.transport.FlowStatsDelta` report)."""
        self.packet_count += packets
        self.byte_count += byte_count


@dataclass(frozen=True)
class FlowEntry:
    """One OpenFlow flow entry.

    Attributes:
        match: the multi-field match.
        priority: matching precedence (higher wins).
        instructions: the validated instruction set.
        cookie: opaque controller-chosen identifier.
        idle_timeout / hard_timeout: virtual-clock ticks, 0 = permanent.
        stats: mutable counters (excluded from equality).
    """

    match: Match
    priority: int = 0
    instructions: InstructionSet = field(default_factory=InstructionSet)
    cookie: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    stats: FlowStats = field(default_factory=FlowStats, compare=False, repr=False)
    _seq: int = field(default_factory=lambda: next(_sequence), compare=False, repr=False)

    def __post_init__(self) -> None:
        # Canonicalize raw instruction iterables so every entry carries a
        # validated InstructionSet and executes in OpenFlow type order
        # (v1.3 §5.9), regardless of the order the caller listed them in.
        if not isinstance(self.instructions, InstructionSet):
            object.__setattr__(
                self, "instructions", InstructionSet(self.instructions)
            )

    @classmethod
    def build(
        cls,
        match: Match,
        priority: int = 0,
        instructions: Iterable[Instruction] = (),
        cookie: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
    ) -> FlowEntry:
        """Convenience constructor accepting a plain instruction iterable."""
        return cls(
            match=match,
            priority=priority,
            instructions=InstructionSet(instructions),
            cookie=cookie,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
        )

    def matches(self, packet_fields: Mapping[str, int]) -> bool:
        return self.match.matches(packet_fields)

    @property
    def installed_at(self) -> int:
        """Virtual-clock tick the entry was installed at
        (:data:`UNSTAMPED` until the first lifecycle sweep sees it)."""
        return self.stats.installed_at

    @property
    def last_touched(self) -> int:
        """Virtual-clock tick of the entry's last credited packet, as of
        the most recent lifecycle sweep (the sweeper detects touches
        from packet-count deltas, so this lags live traffic by at most
        one sweep; :data:`UNSTAMPED` before the first sweep)."""
        return self.stats.last_touched

    def touch_packet(self, byte_count: int = 0, now: int = 0) -> None:
        """Credit one packet and refresh the idle timer — the POX
        ``TableEntry.touch_packet`` semantics (bytes += byte_count,
        packets += 1, last_touched = now) for scalar callers that manage
        time themselves.  The batched runners never call this: they
        credit through :meth:`FlowStats.record` / ``add`` and leave the
        idle timer to the sweep's count-delta detection."""
        self.stats.record(byte_count)
        self.stats.last_touched = now

    def is_expired(self, now: int) -> bool:
        """POX ``TableEntry.is_expired``: strict ``>`` comparisons, hard
        deadline measured from install, idle from the last touch; a zero
        timeout never expires.  Hard is checked first, which is also the
        removal-reason precedence when both deadlines have passed."""
        if self.hard_timeout > 0 and now > self.stats.installed_at + self.hard_timeout:
            return True
        return (
            self.idle_timeout > 0
            and now > self.stats.last_touched + self.idle_timeout
        )

    @property
    def sort_key(self) -> tuple[int, int, int]:
        """Descending-priority sort key with deterministic tiebreaks."""
        return (-self.priority, -self.match.specificity(), self._seq)

    @property
    def is_table_miss(self) -> bool:
        """OpenFlow table-miss = priority-0 entry with the empty match."""
        return self.priority == 0 and self.match.is_table_miss
