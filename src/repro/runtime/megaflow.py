"""Pipeline-level megaflow (wildcard) cache — the second OVS cache tier.

The microflow cache (:mod:`repro.runtime.cache`) is exact-match on a
table's full field tuple, so it only pays off when the *same* header
recurs.  Open vSwitch's answer to wide traffic is the **megaflow**: one
cached entry keyed only by the bits the lookup actually consulted, so a
single entry covers an entire traffic aggregate — every packet that
agrees with the original on the consulted bits provably classifies
identically, whole-pipeline.

Capture works by threading a :class:`MegaflowRecorder` through a full
multi-table traversal:

- every visited table is tagged ``(table_id, version)`` — the table's
  mutation counter at lookup time;
- every table lookup folds in a per-field bitmask of the bits the
  search outcome depended on.  The decomposition path reports per
  *partition engine* (an empty LUT/range structure consults nothing, a
  trie consults down to the level its walk terminates at — see
  ``PartitionEngine.consulted_mask``); the behavioural scan reports each
  evaluated entry's predicate masks;
- header rewrites (Apply-Actions set-field, Write-Metadata) are marked
  as *derived*: consulting a derived value adds nothing to the mask
  over the original packet, because the rewrite itself is pinned by the
  bits already in the mask.

A hit replays the captured :class:`PipelineResult` against the new
packet: original fields, plus the recorded final values of every
rewritten field.

**Invalidation is incremental.**  Each entry carries its visited-table
version tags and is revalidated lazily on hit: a flow-mod on table *t*
bumps only ``t.version``, so entries whose traversal never consulted
*t* keep hitting — no whole-cache flush, unlike the PR-1 microflow
rule.  (An entry that never *reached* a mutated table is unaffected by
it: its aggregate's traversal is fully determined by the tables it did
visit.)

Lookup is tuple-space search over the distinct masks in the cache
(typically a handful — one per table-combination a traversal can
touch); any matching entry is sound, so the first hit wins.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence

import numpy as np

from repro.openflow.pipeline import OpenFlowPipeline, PipelineResult
from repro.packet.batch import PacketBatch, packed_masked_key
from repro.packet.headers import frame_length

#: Mask signature: ``((field_name, bitmask), ...)`` sorted by field.
MaskSig = tuple[tuple[str, int], ...]

DEFAULT_MEGAFLOW_CAPACITY = 4096


class MegaflowRecorder:
    """Accumulates one traversal's consulted bits, rewrites and tables.

    Duck-typed as the ``mask`` sink accepted by ``FlowTable.lookup``,
    ``OpenFlowLookupTable.search`` and ``OpenFlowPipeline.process``.
    """

    __slots__ = ("fields", "rewritten", "tables")

    def __init__(self) -> None:
        #: Consulted bits per *original* packet field.
        self.fields: dict[str, int] = {}
        #: Fields overwritten so far (their values are traversal-derived).
        self.rewritten: set[str] = set()
        #: ``(table_id, version)`` per visited table, in visit order.
        self.tables: list[tuple[int, int]] = []

    def consult(self, field_name: str, bitmask: int) -> None:
        if bitmask and field_name not in self.rewritten:
            self.fields[field_name] = self.fields.get(field_name, 0) | bitmask

    def mark_rewritten(self, field_name: str) -> None:
        self.rewritten.add(field_name)

    def note_table(self, table_id: int, version: int) -> None:
        self.tables.append((table_id, version))

    def mask_signature(self) -> MaskSig:
        return tuple(sorted(self.fields.items()))


class MegaflowEntry:
    """One cached aggregate: mask, masked key, and the result template."""

    __slots__ = (
        "mask",
        "key",
        "packed",
        "template",
        "overrides",
        "table_versions",
        "version_checks",
        "hits",
    )

    def __init__(
        self,
        mask: MaskSig,
        key: tuple,
        template: PipelineResult,
        overrides: dict[str, int],
        table_versions: tuple[tuple[int, int], ...],
        version_checks: tuple,
    ) -> None:
        self.mask = mask
        self.key = key
        #: The key again, packed as the columnar probe's exact byte
        #: string (:func:`repro.packet.batch.packed_masked_key`).
        self.packed = b""
        self.template = template
        self.overrides = overrides
        self.table_versions = table_versions
        #: ``(table_object, version)`` pairs — the hot-path validity
        #: check dereferences the table directly instead of resolving
        #: ids through the pipeline on every hit.
        self.version_checks = version_checks
        self.hits = 0


def masked_key(mask: MaskSig, packet_fields: Mapping[str, int]) -> tuple:
    """The packet's key under a mask; ``None`` encodes field absence."""
    key = []
    for name, bits in mask:
        value = packet_fields.get(name)
        key.append(None if value is None else value & bits)
    return tuple(key)


def replay_template(
    template: PipelineResult, final_fields: dict[str, int]
) -> PipelineResult:
    """Clone a cached traversal template onto one packet's final fields.

    The single definition of replay materialisation, shared by the
    dict-path hit (:meth:`MegaflowCache._replay`) and the deferred
    columnar hit (:meth:`repro.runtime.batch.ColumnarOutcomes.results`)
    — direct construction (no ``__init__`` dispatch, no default
    factories): this is the hottest allocation in the runtime.
    """
    result = PipelineResult.__new__(PipelineResult)
    result.matched_entries = list(template.matched_entries)
    result.applied_actions = list(template.applied_actions)
    result.output_ports = list(template.output_ports)
    result.sent_to_controller = template.sent_to_controller
    result.dropped = template.dropped
    result.metadata = template.metadata
    result.tables_visited = list(template.tables_visited)
    result.final_fields = final_fields
    return result


class MegaflowCache:
    """LRU wildcard cache over whole-pipeline results.

    Args:
        pipeline: the pipeline whose tables' ``version`` counters drive
            incremental invalidation.
        capacity: maximum cached aggregates across all masks.
    """

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        capacity: int = DEFAULT_MEGAFLOW_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.pipeline = pipeline
        self.capacity = capacity
        self._by_mask: dict[MaskSig, dict[tuple, MegaflowEntry]] = {}
        #: Columnar sidecar: per mask, packed-byte key -> entry (the
        #: same entry objects; :meth:`probe_batch` probes this index
        #: with vectorized ``lanes & mask`` keys).
        self._packed: dict[MaskSig, dict[bytes, MegaflowEntry]] = {}
        #: Probe snapshot of ``_by_mask.items()`` — rebuilt only when the
        #: mask *set* changes, so the per-packet lookup loop allocates
        #: nothing.  (Per-mask entry dicts are mutated in place.)
        self._probe: tuple[tuple[MaskSig, dict[tuple, MegaflowEntry]], ...] = ()
        self._lru: OrderedDict[tuple[MaskSig, tuple], MegaflowEntry] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.invalidated = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def mask_count(self) -> int:
        """Distinct masks probed per lookup (the tuple-space width)."""
        return len(self._by_mask)

    def mask_fields(self) -> tuple[str, ...]:
        """Union of fields any cached mask constrains (sorted).

        This is the sharding hint :class:`~repro.runtime.shard.ShardedBatchPipeline`
        uses: hashing on exactly these fields sends every packet of an
        aggregate to the same worker.
        """
        fields: set[str] = set()
        for mask in self._by_mask:
            fields.update(name for name, _ in mask)
        return tuple(sorted(fields))

    def lookup(self, packet_fields: Mapping[str, int]) -> PipelineResult | None:
        """Replayed result for the packet's aggregate, or ``None``.

        Stale entries (a visited table's version moved) are dropped on
        probe — the incremental-invalidation path.
        """
        return self.lookup_batch((packet_fields,))[0]

    def lookup_batch(
        self, batch: Sequence[Mapping[str, int]]
    ) -> list[PipelineResult | None]:
        """Per-packet :meth:`lookup` over a batch, with the probe state
        hoisted out of the loop (this is the runtime's hot path)."""
        probe = self._probe
        lru = self._lru
        hits = 0
        misses = 0
        out: list[PipelineResult | None] = []
        for packet_fields in batch:
            get_field = packet_fields.get
            hit: MegaflowEntry | None = None
            for mask, entries in probe:
                key = tuple(
                    [
                        None if (value := get_field(name)) is None
                        else value & bits
                        for name, bits in mask
                    ]
                )
                entry = entries.get(key)
                if entry is None:
                    continue
                for table, version in entry.version_checks:
                    if table.version != version:
                        # Drop immediately: later packets of this batch
                        # must not resolve (or shadow-install) through a
                        # stale aggregate.
                        self._drop(mask, key)
                        self.invalidated += 1
                        probe = self._probe
                        entry = None
                        break
                if entry is not None:
                    hit = entry
                    break
            if hit is None:
                misses += 1
                out.append(None)
                continue
            hits += 1
            hit.hits += 1
            lru.move_to_end((hit.mask, hit.key))
            out.append(self._replay(hit, packet_fields))
        self.hits += hits
        self.misses += misses
        return out

    def probe_rows(
        self, batch: PacketBatch, rows: Sequence[int] | None = None
    ) -> dict[int, MegaflowEntry]:
        """Vectorized tuple-space probe: valid aggregate per hit *row*.

        For each cached mask, the whole store's masked keys are computed
        in one numpy pass (``lanes & mask`` per distinct row, packed to
        exact byte keys, memoized across sliced views) and probed
        against the packed sidecar index — the columnar twin of
        :meth:`lookup_batch`'s per-packet loop, first hit per row
        winning in the same mask order.  Stale entries drop on probe
        exactly like the dict path.  No bookkeeping happens here; pair
        with :meth:`credit_rows` (or use :meth:`probe_batch`).
        ``rows``, when given, is the view's distinct row list (saves the
        caller's ``np.unique`` from running twice).
        """
        rows_in_use = (
            rows if rows is not None else np.unique(batch.pick).tolist()
        )
        row_entry: dict[int, MegaflowEntry] = {}
        valid: dict[int, bool] = {}
        for mask, _ in self._probe:
            if len(row_entry) == len(rows_in_use):
                break
            packed_entries = self._packed.get(mask)
            if not packed_entries:
                continue
            keys = batch.masked_packed_keys(mask)
            get_entry = packed_entries.get
            for row in rows_in_use:
                if row in row_entry:
                    continue
                entry = get_entry(keys[row])
                if entry is None:
                    continue
                fresh = valid.get(id(entry))
                if fresh is None:
                    fresh = all(
                        table.version == version
                        for table, version in entry.version_checks
                    )
                    valid[id(entry)] = fresh
                    if not fresh:
                        self._drop(entry.mask, entry.key)
                        self.invalidated += 1
                if fresh:
                    row_entry[row] = entry
        return row_entry

    def credit_rows(
        self,
        row_entry: Mapping[int, MegaflowEntry],
        counts: Mapping[int, int],
        byte_sums: Mapping[int, float],
        total_positions: int,
    ) -> list[list]:
        """Fold one batch's hit bookkeeping in, aggregated per entry.

        ``counts`` / ``byte_sums`` map each distinct row to its position
        count and frame-byte sum within the view.  Updates
        hit/miss counters, per-entry hit counts, LRU recency and the
        matched flow entries' packet/byte stats — identical totals to
        the dict path's per-packet ``_replay`` bumps.  Returns the
        ``[entry, positions, bytes]`` buckets so callers can aggregate
        their own counters without another per-packet pass.
        """
        hits = 0
        agg: dict[int, list] = {}
        for row, entry in row_entry.items():
            count = counts[row]
            if not count:
                continue  # row exists in the store but not in this view
            hits += count
            bucket = agg.get(id(entry))
            if bucket is None:
                agg[id(entry)] = [entry, count, int(byte_sums[row])]
            else:
                bucket[1] += count
                bucket[2] += int(byte_sums[row])
        self.hits += hits
        self.misses += total_positions - hits
        lru = self._lru
        buckets = list(agg.values())
        for entry, count, byte_count in buckets:
            entry.hits += count
            lru.move_to_end((entry.mask, entry.key))
            for matched in entry.template.matched_entries:
                matched.stats.add(count, byte_count)
        return buckets

    def probe_batch(self, batch: PacketBatch) -> list[MegaflowEntry | None]:
        """Probe + credit in one call: the valid aggregate per batch
        *position* (``None`` on miss), bookkeeping done.  Replay
        materialisation is deferred to the caller (see
        :meth:`repro.runtime.batch.ColumnarOutcomes.results`); the
        decode-free sharded worker encodes the templates directly.
        """
        return self.probe_credit(batch)[0]

    def probe_credit(
        self, batch: PacketBatch
    ) -> tuple[list[MegaflowEntry | None], list[list]]:
        """:meth:`probe_batch` plus the per-entry ``[entry, positions,
        bytes]`` buckets from :meth:`credit_rows`, so callers (the
        columnar :class:`~repro.runtime.batch.BatchPipeline`) can fold
        their own counters without another per-packet pass."""
        pick = batch.pick
        uniq, inverse = np.unique(pick, return_inverse=True)
        rows = uniq.tolist()
        row_entry = self.probe_rows(batch, rows)
        if not row_entry:
            self.misses += len(pick)
            return [None] * len(pick), []
        counts = np.bincount(inverse, minlength=len(rows)).tolist()
        byte_sums = np.bincount(
            inverse, weights=batch.frame_lengths(), minlength=len(rows)
        ).tolist()
        buckets = self.credit_rows(
            row_entry,
            dict(zip(rows, counts)),
            dict(zip(rows, byte_sums)),
            len(pick),
        )
        entry_of = [row_entry.get(row) for row in rows]
        return [entry_of[local] for local in inverse.tolist()], buckets

    def install(
        self,
        packet_fields: Mapping[str, int],
        recorder: MegaflowRecorder,
        result: PipelineResult,
    ) -> MegaflowEntry:
        """Cache one captured traversal for its whole aggregate.

        ``packet_fields`` must be the *original* packet (pre-rewrite);
        ``result`` the finished pipeline outcome for it.
        """
        mask = recorder.mask_signature()
        key = masked_key(mask, packet_fields)
        # The template is a defensive copy: callers own (and may mutate)
        # the result object they were handed.
        template = PipelineResult(
            matched_entries=list(result.matched_entries),
            applied_actions=list(result.applied_actions),
            output_ports=list(result.output_ports),
            sent_to_controller=result.sent_to_controller,
            dropped=result.dropped,
            metadata=result.metadata,
            tables_visited=list(result.tables_visited),
            final_fields=dict(result.final_fields),
        )
        overrides = {
            name: result.final_fields[name]
            for name in recorder.rewritten
            if name in result.final_fields
        }
        table_versions = tuple(recorder.tables)
        entry = MegaflowEntry(
            mask=mask,
            key=key,
            template=template,
            overrides=overrides,
            table_versions=table_versions,
            version_checks=tuple(
                (self.pipeline.table(table_id), version)
                for table_id, version in table_versions
            ),
        )
        entries = self._by_mask.get(mask)
        if entries is None:
            entries = self._by_mask[mask] = {}
            self._probe = tuple(self._by_mask.items())
        entries[key] = entry
        entry.packed = packed_masked_key(mask, packet_fields)
        self._packed.setdefault(mask, {})[entry.packed] = entry
        self._lru[(mask, key)] = entry
        self._lru.move_to_end((mask, key))
        self.installs += 1
        while len(self._lru) > self.capacity:
            (old_mask, old_key), _ = self._lru.popitem(last=False)
            self._drop(old_mask, old_key, lru=False)
            self.evicted += 1
        return entry

    def flush(self) -> None:
        """Drop every cached aggregate (explicit only; never automatic)."""
        self._by_mask.clear()
        self._packed.clear()
        self._probe = ()
        self._lru.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _drop(self, mask: MaskSig, key: tuple, lru: bool = True) -> None:
        entries = self._by_mask.get(mask)
        if entries is None:
            return
        dropped = entries.pop(key, None)
        if dropped is not None:
            packed_entries = self._packed.get(mask)
            if packed_entries is not None:
                packed_entries.pop(dropped.packed, None)
                if not packed_entries:
                    del self._packed[mask]
        if not entries:
            del self._by_mask[mask]
            self._probe = tuple(self._by_mask.items())
        if lru:
            self._lru.pop((mask, key), None)

    def _replay(
        self, entry: MegaflowEntry, packet_fields: Mapping[str, int]
    ) -> PipelineResult:
        template = entry.template
        final_fields = dict(packet_fields)
        final_fields.update(entry.overrides)
        frame_len = frame_length(packet_fields)
        for matched in template.matched_entries:
            # Inlined FlowStats.record(frame_len): once per hit packet,
            # with the *hitting* packet's frame length (aggregates span
            # packets of many lengths).
            matched.stats.packet_count += 1
            matched.stats.byte_count += frame_len
        return replay_template(template, final_fields)
