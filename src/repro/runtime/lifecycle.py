"""Deterministic flow-entry lifecycle: virtual clock + vectorized expiry.

Real OpenFlow switches expire entries against wall time; replaying the
same trace twice then removes different entries and every cross-runner
comparison in this repo (scan == cached == megaflow == columnar ==
sharded, the whole differential harness) would dissolve.  Time here is
therefore *virtual*: a :class:`VirtualClock` that only moves when a
workload says so (``("advance", dt)`` events), so every runner path
observes the identical tick sequence and lifecycle behaviour is a pure
function of the trace.

The clock moving only at sweep boundaries buys a second, bigger
invariant: every packet credited between two sweeps was credited at one
single virtual time — the tick the previous sweep ended on.  The
sweeper exploits that to detect idle-timer touches from *packet-count
deltas* instead of stamping ``last_touched`` on the hot path: no credit
site (scalar ``stats.record``, columnar ``stats.add``, worker-side
delta merges) changes at all, which is what keeps aggregated and
per-packet crediting bitwise-identical.  For the same reason
``installed_at`` is stamped lazily: an entry installed anywhere between
two sweeps was installed at the previous sweep's tick, so the sweep
stamps :data:`~repro.openflow.flow.UNSTAMPED` entries with exactly that
tick when it first sees them.

The sweep itself is vectorized: per-table numpy lanes (idle/hard
timeouts, ``installed_at``, ``last_touched``, packets-at-last-sweep)
are rebuilt only when the table's ``version`` moved, and each sweep is
one fused packet-count gather plus pure-lane compares — touched mask,
idle/hard deadline tests — with Python-level work only for the entries
actually expiring (which leave the table anyway).  Expired entries are
removed through a caller-supplied callback, so the single-process
runner removes directly (bumping the table version exactly like an
explicit uninstall — microflow/megaflow tiers revalidate through the
machinery they already have) while the sharded runner routes removals
through its mutation log; workers never consult a clock.

Expiry semantics are POX ``flow_table.py`` parity: strict ``>``
deadline comparisons, hard timeout measured from install, idle from the
last touch, zero timeout = permanent, and hard-before-idle precedence
for the removal reason.  Each removal emits a :class:`FlowRemoved`
event carrying the entry's *final* packet/byte counters (the
``ofp_flow_removed`` the POX exemplar's ``process_flow_removed``
consumes) into the sweeper's ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Any, Protocol

import numpy as np

from repro.openflow.flow import FlowEntry, UNSTAMPED
from repro.openflow.match import Match

#: int64 stand-in for "no deadline" — ``now`` never exceeds it.
_NEVER = np.iinfo(np.int64).max

#: ``remove(table_id, match, priority)`` callback expiring one entry.
RemoveCallback = Callable[[int, Match, int], None]


class SweptTable(Protocol):
    """The table surface a sweep reads — ``FlowTable`` and
    ``OpenFlowLookupTable`` both satisfy it structurally."""

    table_id: int
    version: int

    def entries_snapshot(self) -> tuple[FlowEntry, ...]: ...


class SweptPipeline(Protocol):
    """The pipeline surface :meth:`LifecycleSweeper.advance` walks."""

    @property
    def tables(self) -> Sequence[SweptTable]: ...

    def table(self, table_id: int) -> Any: ...


class VirtualClock:
    """Monotonic integer clock that only moves via :meth:`advance`.

    No wall-clock source anywhere (the ``wall-clock-ban`` lint rule
    enforces that for the whole runtime layer): ticks are abstract
    "seconds" whose meaning a workload defines by where it places its
    ``("advance", dt)`` events.
    """

    def __init__(self, now: int = 0) -> None:
        self.now = now

    def advance(self, dt: int) -> tuple[int, int]:
        """Move time forward by ``dt`` ticks; returns ``(prev, now)``.

        ``dt == 0`` is allowed (sweep without moving time); negative
        ``dt`` is rejected — virtual time never rewinds, replay depends
        on it.
        """
        if dt < 0:
            raise ValueError(f"virtual clock cannot rewind (dt={dt})")
        prev = self.now
        self.now = prev + dt
        return prev, self.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self.now})"


@dataclass(frozen=True)
class FlowRemoved:
    """One expiry's ``ofp_flow_removed``: identity, reason and final
    counters, POX-style.  Frozen and fully value-comparable so the
    differential harness can assert whole ledgers equal across runner
    paths."""

    table_id: int
    match: Match
    priority: int
    cookie: int
    #: ``"hard"`` or ``"idle"`` — hard wins when both deadlines passed.
    reason: str
    idle_timeout: int
    hard_timeout: int
    installed_at: int
    removed_at: int
    #: Final traffic counters at removal time.
    packet_count: int
    byte_count: int

    @property
    def duration(self) -> int:
        """Ticks the entry lived, install to removal."""
        return self.removed_at - self.installed_at


class _TableLanes:
    """One table's lifecycle lanes, cached against its ``version``.

    The lanes buffer ``last_touched`` / packets-at-last-sweep between
    sweeps; they are flushed back to the entries'
    :class:`~repro.openflow.flow.FlowStats` before every rebuild (and on
    :meth:`LifecycleSweeper.sync`), so lane rebuilds triggered by
    unrelated mutations never lose idle-timer state.
    """

    def __init__(self) -> None:
        self.version = -1
        self.entries: tuple[FlowEntry, ...] = ()
        self.idle = np.zeros(0, dtype=np.int64)
        self.hard = np.zeros(0, dtype=np.int64)
        self.installed = np.zeros(0, dtype=np.int64)
        self.last_touched = np.zeros(0, dtype=np.int64)
        self.swept = np.zeros(0, dtype=np.int64)

    def flush(self) -> None:
        """Write buffered lifecycle state back to the entry objects."""
        last = self.last_touched
        swept = self.swept
        for i, entry in enumerate(self.entries):
            entry.stats.last_touched = int(last[i])
            entry.stats.swept_packets = int(swept[i])

    def _rebuild(self, table: SweptTable, prev: int) -> None:
        self.flush()
        snapshot: tuple[FlowEntry, ...] = table.entries_snapshot()
        self.version = table.version
        self.entries = snapshot
        count = len(snapshot)
        # Lazy stamping: anything installed since the last sweep was
        # installed while the clock sat at ``prev``, so that tick is the
        # exact install time (and initial touch) for unstamped entries.
        for entry in snapshot:
            if entry.stats.installed_at == UNSTAMPED:
                entry.stats.installed_at = prev
                entry.stats.last_touched = prev
        self.idle = np.fromiter(
            (e.idle_timeout for e in snapshot), dtype=np.int64, count=count
        )
        self.hard = np.fromiter(
            (e.hard_timeout for e in snapshot), dtype=np.int64, count=count
        )
        self.installed = np.fromiter(
            (e.stats.installed_at for e in snapshot),
            dtype=np.int64,
            count=count,
        )
        self.last_touched = np.fromiter(
            (e.stats.last_touched for e in snapshot),
            dtype=np.int64,
            count=count,
        )
        self.swept = np.fromiter(
            (e.stats.swept_packets for e in snapshot),
            dtype=np.int64,
            count=count,
        )

    def sweep(
        self, table: SweptTable, prev: int, now: int, remove: RemoveCallback
    ) -> list[FlowRemoved]:
        if table.version != self.version:
            self._rebuild(table, prev)
        entries = self.entries
        if not entries:
            return []
        # Count-delta touch detection: every credit since the last sweep
        # happened at tick ``prev`` (the clock never moved in between).
        counts = np.fromiter(
            (e.stats.packet_count for e in entries),
            dtype=np.int64,
            count=len(entries),
        )
        touched = counts > self.swept
        if touched.any():
            self.last_touched[touched] = prev
        self.swept = counts
        idle_deadline = np.where(
            self.idle > 0, self.last_touched + self.idle, _NEVER
        )
        hard_deadline = np.where(
            self.hard > 0, self.installed + self.hard, _NEVER
        )
        hard_hit = now > hard_deadline
        expired = hard_hit | (now > idle_deadline)
        if not expired.any():
            return []
        events: list[FlowRemoved] = []
        last = self.last_touched
        for i in np.nonzero(expired)[0].tolist():
            entry = entries[i]
            entry.stats.last_touched = int(last[i])
            entry.stats.swept_packets = int(counts[i])
            events.append(
                FlowRemoved(
                    table_id=table.table_id,
                    match=entry.match,
                    priority=entry.priority,
                    cookie=entry.cookie,
                    reason="hard" if hard_hit[i] else "idle",
                    idle_timeout=entry.idle_timeout,
                    hard_timeout=entry.hard_timeout,
                    installed_at=int(self.installed[i]),
                    removed_at=now,
                    packet_count=entry.stats.packet_count,
                    byte_count=entry.stats.byte_count,
                )
            )
            remove(table.table_id, entry.match, entry.priority)
        return events


@dataclass
class LifecycleStats:
    """Sweeper-side counters (the runner stats report them)."""

    advances: int = 0
    sweeps: int = 0
    #: Total entry lanes examined across all sweeps — the work measure
    #: the throughput experiment reports as sweep cost.
    entries_scanned: int = 0
    expired_idle: int = 0
    expired_hard: int = 0

    @property
    def expired(self) -> int:
        return self.expired_idle + self.expired_hard


class LifecycleSweeper:
    """Drives expiry for one runner: owns the clock, the per-table
    lanes and the flow-removed ledger.

    ``advance`` walks the pipeline's tables in id order and sweeps each
    against the new tick; removals go through the supplied callback so
    the sharded parent can log them as mutations.  The ledger preserves
    (table order, snapshot order) — deterministic, hence comparable
    across runner paths.
    """

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.ledger: list[FlowRemoved] = []
        self.stats = LifecycleStats()
        self._lanes: dict[int, _TableLanes] = {}

    def advance(
        self, pipeline: SweptPipeline, dt: int, remove: RemoveCallback | None = None
    ) -> list[FlowRemoved]:
        """Advance the clock by ``dt`` and sweep every table; returns
        (and appends to the ledger) the expiries this advance caused."""
        expire: RemoveCallback
        if remove is not None:
            expire = remove
        else:
            def _remove_from_pipeline(
                table_id: int, match: Match, priority: int
            ) -> None:
                pipeline.table(table_id).remove(match, priority)

            expire = _remove_from_pipeline
        prev, now = self.clock.advance(dt)
        self.stats.advances += 1
        removed: list[FlowRemoved] = []
        for table in pipeline.tables:
            lanes = self._lanes.get(table.table_id)
            if lanes is None:
                lanes = self._lanes[table.table_id] = _TableLanes()
            self.stats.sweeps += 1
            self.stats.entries_scanned += len(table.entries_snapshot())
            removed.extend(lanes.sweep(table, prev, now, expire))
        for event in removed:
            if event.reason == "hard":
                self.stats.expired_hard += 1
            else:
                self.stats.expired_idle += 1
        self.ledger.extend(removed)
        return removed

    def sync(self) -> None:
        """Flush buffered ``last_touched`` / swept counters back to the
        entry objects (tests read :attr:`FlowEntry.last_touched` through
        this; the hot path never needs it)."""
        for lanes in self._lanes.values():
            lanes.flush()
