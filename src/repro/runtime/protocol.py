"""The parent ↔ worker wire protocol, as named message types.

Every message crossing a shard pipe is one of the :class:`NamedTuple`
shapes below, so the protocol is statically checked: a parent-side
``send`` and the worker-side destructuring compile against the same
schema, and adding a field is a one-place change mypy traces to every
construction and unpacking site.

``NamedTuple`` (rather than ``TypedDict``/dataclass) is deliberate:
messages stay *tuples* on the wire — same pickle cost, same positional
indexing (``message[0]`` tag dispatch, ``message[1:]`` unpacking) the
transport has always used — so typed and historical call sites
interoperate and the pickled frames are byte-compatible with plain
tuples of the same shape.

Tag conventions:

- requests (parent → worker): ``"batch"`` (pickle transport), ``"shm"``
  (shared-memory transport), ``"close"`` (orderly shutdown);
- replies (worker → parent): ``"ok"`` with transport-specific payload,
  ``"block"`` announcing a response-ring segment the worker is about
  to create (the parent's crash registry), ``"bye"`` acknowledging
  close;
- parent-internal: ``"inline"`` — a reply shape for sub-batches the
  parent classified in-process (degraded mode); it never crosses a
  pipe but shares the reply buffer with real worker replies.

Work requests carry their batch ``seq`` explicitly: a respawned worker
replays lost batches from the same request messages (re-sent, not
re-encoded), and its fault plan matches faults on the seq the parent
assigned, not on however many messages the replacement has seen.

Mutation-log entries ride inside requests as :data:`Mutation` tuples —
``("add", table_id, entry)`` / ``("remove", table_id, match, priority)``
/ ``("expire", table_id, match, priority)`` — the exact shapes
:class:`~repro.runtime.shard.ShardedPipeline`'s log records.

``docs/architecture.md`` ("Sharded shm transport") situates this wire
protocol in the runtime layer stack.
"""

from __future__ import annotations

from typing import Literal, NamedTuple

from repro.openflow.actions import Action
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.pipeline import PipelineResult
from repro.runtime.batch import BatchStats
from repro.runtime.transport import (
    FlowStatsDelta,
    PacketBlockLayout,
    ResultBlockLayout,
    Segment,
)


class AddMutation(NamedTuple):
    """One ``add_flow`` recorded in the mutation log."""

    kind: Literal["add"]
    table_id: int
    entry: FlowEntry


class RemoveMutation(NamedTuple):
    """One ``remove_flow`` recorded in the mutation log."""

    kind: Literal["remove"]
    table_id: int
    match: Match
    priority: int


class ExpireMutation(NamedTuple):
    """One timeout expiry recorded in the mutation log.

    Decided *only* by the parent's lifecycle sweep — workers never
    consult a clock, they just apply it as a removal — so replayed
    batches and respawned workers reconstruct the identical table state
    without any notion of time crossing the pipe."""

    kind: Literal["expire"]
    table_id: int
    match: Match
    priority: int


Mutation = AddMutation | RemoveMutation | ExpireMutation


class BatchRequest(NamedTuple):
    """Pickle-transport work item: log suffix + this worker's packets.

    ``bypass`` asks the worker to skip its megaflow tier for this batch
    (the streaming ladder's rung 2); it rides in the request template,
    so a replayed batch degrades exactly as the original did."""

    kind: Literal["batch"]
    seq: int
    mutations: tuple[Mutation, ...]
    packets: list[dict[str, int]]
    bypass: bool


class ShmRequest(NamedTuple):
    """Shared-memory work item: the batch travels as a block the worker
    attaches to; ``members_key`` names this worker's position array
    inside it, ``slot`` the response-ring slot to reply through."""

    kind: Literal["shm"]
    seq: int
    slot: int
    mutations: tuple[Mutation, ...]
    block_name: str
    segments: tuple[Segment, ...]
    layout: PacketBlockLayout
    members_key: str
    columnar: bool
    bypass: bool


class CloseRequest(NamedTuple):
    """Orderly shutdown; the worker unmaps its blocks and replies
    :class:`ByeReply`."""

    kind: Literal["close"]


class PickleReply(NamedTuple):
    """Pickle-transport reply: materialised results plus the worker's
    learned mask fields, stats snapshot and flow-stats delta."""

    kind: Literal["ok"]
    results: list[PipelineResult]
    mask_fields: tuple[str, ...]
    stats: BatchStats
    delta: FlowStatsDelta


class ShmReply(NamedTuple):
    """Shared-memory reply: results stay columnar in the worker's
    response block; the parent decodes them against its own pinned
    tables via the layout + action vocabulary."""

    kind: Literal["ok"]
    block_name: str
    segments: tuple[Segment, ...]
    result_layout: ResultBlockLayout
    vocabulary: list[Action]
    mask_fields: tuple[str, ...]
    stats: BatchStats
    delta: FlowStatsDelta


class BlockAnnounce(NamedTuple):
    """Worker → parent: the response ring is about to (re)create a
    segment under this name.

    Sent *before* the creation, so the parent's crash-recovery block
    registry covers even a worker that dies mid-create — unlinking a
    name that was never created is a no-op, while the reverse gap (a
    segment created but never announced) would strand it."""

    kind: Literal["block"]
    slot: int
    name: str


class InlineReply(NamedTuple):
    """Parent-internal reply for a sub-batch classified in-process
    (degraded mode or a poison-batch replay).

    Never crosses a pipe: the parent parks it straight into its reply
    buffer so the collect path handles degraded shards through the
    same ``(seq, worker)`` machinery as live ones.  Results are already
    materialised, so no mask-fields/columnar payload rides along."""

    kind: Literal["inline"]
    results: list[PipelineResult]
    stats: BatchStats
    delta: FlowStatsDelta


class ByeReply(NamedTuple):
    """Shutdown acknowledgement; the pipe closes after it."""

    kind: Literal["bye"]


Request = BatchRequest | ShmRequest | CloseRequest
Reply = PickleReply | ShmReply | BlockAnnounce | ByeReply
