"""Traffic-scenario catalog for the throughput runtime.

Each builder turns a rule set into a replayable :class:`Workload` — a
sequence of packet batches, optionally interleaved with flow-table
mutations — with a deterministic seed, so throughput comparisons across
lookup paths see byte-identical traffic.

Catalog (see :data:`SCENARIOS`):

- ``uniform`` — i.i.d. packets over a flow pool, every flow equally
  likely; the worst case for any cache.
- ``zipf`` — flow popularity follows a zipf law (heavy-tailed, like real
  traffic mixes); a small working set dominates, so microflow caches and
  per-batch memoization shine.
- ``bursty`` — back-to-back per-flow packet trains (geometric run
  lengths); locality is temporal rather than global.
- ``churn`` — zipf traffic interleaved with rule uninstall/reinstall
  cycles; exercises cache invalidation and incremental-update paths
  under load.
"""

from __future__ import annotations

import numpy as np

from repro.filters.rule import RuleSet
from repro.packet.generator import PacketGenerator, TraceConfig
from repro.runtime.batch import Workload

DEFAULT_SEED = 0x7AFF
DEFAULT_FLOWS = 128


def zipf_weights(n: int, s: float = 1.2) -> np.ndarray:
    """Unnormalized zipf popularity weights: rank ``k`` gets ``1 / k**s``."""
    if n < 1:
        raise ValueError("need at least one flow")
    ranks = np.arange(1, n + 1, dtype=float)
    return 1.0 / ranks**s


def _flow_pool(
    rule_set: RuleSet,
    flow_count: int,
    seed: int,
) -> tuple[PacketGenerator, list[dict[str, int]]]:
    generator = PacketGenerator(TraceConfig(seed=seed))
    matches = [rule.to_match() for rule in rule_set.rules[:flow_count]]
    flows = generator.flow_pool(matches, fill_fields=rule_set.field_names)
    return generator, flows


def uniform_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Uniform i.i.d. traffic over the flow pool."""
    generator, flows = _flow_pool(rule_set, flow_count, seed)
    trace = generator.sample_trace(flows, packet_count)
    return Workload(
        name="uniform",
        description=f"{packet_count} pkts uniform over {len(flows)} flows",
        events=(("packets", trace),),
    )


def zipf_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    s: float = 1.2,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Zipf-skewed traffic: a few heavy flows dominate the trace."""
    generator, flows = _flow_pool(rule_set, flow_count, seed)
    trace = generator.sample_trace(flows, packet_count, zipf_weights(len(flows), s))
    return Workload(
        name="zipf",
        description=(
            f"{packet_count} pkts zipf(s={s}) over {len(flows)} flows"
        ),
        events=(("packets", trace),),
    )


def bursty_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    mean_burst: float = 16.0,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Packet-train traffic: geometric per-flow bursts."""
    generator, flows = _flow_pool(rule_set, flow_count, seed)
    trace = generator.bursty_trace(flows, packet_count, mean_burst=mean_burst)
    return Workload(
        name="bursty",
        description=(
            f"{packet_count} pkts in ~{mean_burst:.0f}-pkt bursts "
            f"over {len(flows)} flows"
        ),
        events=(("packets", trace),),
    )


def churn_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    churn_rules: int = 8,
    rounds: int = 8,
    table_id: int = 0,
    seed: int = DEFAULT_SEED,
) -> Workload:
    """Zipf traffic interleaved with rule uninstall/reinstall cycles.

    Each round classifies a slice of the trace, then removes and
    immediately reinstalls ``churn_rules`` random entries of table
    ``table_id`` — the flow-mod pattern a controller produces — before
    the next slice.  Caches must flush on every mutation; action tables
    must not grow.

    The mutation events carry the rule set's own flow entries, so table
    ``table_id`` must use the rule set's full schema — i.e. a pipeline
    whose first table comes from
    :func:`~repro.core.builder.build_lookup_table`, not the per-field
    split (whose tables each match a different sub-schema).
    """
    generator, flows = _flow_pool(rule_set, flow_count, seed)
    trace = generator.sample_trace(
        flows, packet_count, zipf_weights(len(flows))
    )
    entries = list(rule_set.to_flow_entries())
    rng = np.random.default_rng(seed ^ 0xC4)
    events: list[tuple] = []
    slice_len = max(1, packet_count // rounds)
    cursor = 0
    for _ in range(rounds):
        chunk = trace[cursor : cursor + slice_len]
        if chunk:
            events.append(("packets", chunk))
        cursor += slice_len
        for pick in rng.choice(len(entries), size=min(churn_rules, len(entries)), replace=False):
            entry = entries[int(pick)]
            events.append(("uninstall", table_id, entry.match, entry.priority))
            events.append(("install", table_id, entry))
    if cursor < packet_count:
        events.append(("packets", trace[cursor:]))
    return Workload(
        name="churn",
        description=(
            f"{packet_count} pkts zipf + {rounds}x{churn_rules} "
            f"rule uninstall/reinstall on table {table_id}"
        ),
        events=tuple(events),
    )


#: The scenario catalog: name -> builder(rule_set, **kwargs) -> Workload.
SCENARIOS = {
    "uniform": uniform_workload,
    "zipf": zipf_workload,
    "bursty": bursty_workload,
    "churn": churn_workload,
}
