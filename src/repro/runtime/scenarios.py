"""Traffic-scenario catalog for the throughput runtime.

Each builder turns a rule set into a replayable :class:`Workload` — a
sequence of packet batches, optionally interleaved with flow-table
mutations — with a deterministic seed, so throughput comparisons across
lookup paths see byte-identical traffic.

Catalog (see :data:`SCENARIOS`):

- ``uniform`` — i.i.d. packets over a flow pool, every flow equally
  likely; the worst case for any cache.
- ``zipf`` — flow popularity follows a zipf law (heavy-tailed, like real
  traffic mixes); a small working set dominates, so microflow caches and
  per-batch memoization shine.
- ``bursty`` — back-to-back per-flow packet trains (geometric run
  lengths); locality is temporal rather than global.
- ``churn`` — zipf traffic interleaved with rule uninstall/reinstall
  cycles; exercises cache invalidation and incremental-update paths
  under load.
- ``uniform-wide`` — uniform flow draw with per-packet high-entropy
  noise in a schema field no rule constrains: every header is (nearly)
  unique, so exact-match microflow caching collapses to ~0 % hits while
  a megaflow cache — whose masks exclude the unconsulted noise field —
  still aggregates the trace into one entry per flow.
- ``timeout-churn`` — short-lived mice flows (idle/hard timeouts) cycled
  through the table under long-lived elephant traffic, with the virtual
  clock advanced every round so the expiry sweep — not explicit
  uninstalls — drives the invalidation pressure.

Every builder takes a ``frame_len`` knob controlling the on-wire frame
lengths stamped into the trace (``"fixed"``/int, ``"imix"``,
``"pareto"``, or ``None`` for length-less packets); lengths drive the
per-entry byte counters and the bits/sec numbers the benchmarks report,
and never affect classification (no rule matches on
:data:`~repro.packet.headers.FRAME_LEN_FIELD`).

Every builder also takes an ``advance=`` knob: when set, each packet
event is followed by an ``("advance", dt)`` virtual-clock event
(:func:`with_clock_advances`), so any scenario can exercise the
lifecycle sweep without changing its traffic shape.  Time in a workload
passes *only* through these events — that is what keeps every runner
path on the identical tick sequence.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.filters.rule import RuleSet
from repro.openflow.fields import REGISTRY
from repro.openflow.flow import FlowEntry
from repro.packet.batch import PacketBatch
from repro.packet.generator import PacketGenerator, TraceConfig, frame_lengths
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime.batch import Workload

DEFAULT_SEED = 0x7AFF
DEFAULT_FLOWS = 128

#: Default frame-length knob: every scenario ships MTU-sized frames
#: unless told otherwise, so byte counters are nonzero out of the box.
DEFAULT_FRAME_DIST = "fixed"


def stamp_frame_lengths(
    trace: list[dict[str, int]],
    frame_len: str | int | None,
    seed: int,
) -> list[dict[str, int]]:
    """Attach on-wire frame lengths to a built trace.

    ``None`` leaves the trace length-less (byte counters stay zero).  A
    fixed length (an ``int`` or ``"fixed"``) stamps each *distinct* dict
    once, preserving the flow-pool aliasing the codec dedup and caches
    exploit.  Per-packet distributions (``"imix"`` / ``"pareto"``)
    rebuild every packet dict with its own length — aliasing is gone by
    construction, because two packets of one flow genuinely differ on
    the wire.  Either way the length rides in the field dict under
    :data:`~repro.packet.headers.FRAME_LEN_FIELD`, which no rule matches
    and no cache keys on.
    """
    if frame_len is None:
        return trace
    rng = np.random.default_rng(seed ^ 0xF7A3)
    if isinstance(frame_len, int) or frame_len == "fixed":
        value = frame_lengths(rng, 1, frame_len)[0]
        for fields in {id(f): f for f in trace}.values():
            fields[FRAME_LEN_FIELD] = value
        return trace
    lengths = frame_lengths(rng, len(trace), frame_len)
    return [
        dict(fields, **{FRAME_LEN_FIELD: length})
        for fields, length in zip(trace, lengths)
    ]


def columnar_workload(workload: Workload) -> Workload:
    """Re-emit a workload's packet events as columnar
    :class:`~repro.packet.batch.PacketBatch` containers.

    Each packet event becomes one batch (flow-pool aliasing turns into
    shared rows); :func:`~repro.runtime.batch.run_workload` then slices
    it into pipeline-sized views that share the event's column store, so
    vectorized key work is done once per event, not once per chunk.
    Mutation events pass through untouched.  Every builder below takes a
    ``columnar=`` knob that applies this conversion.
    """
    events = tuple(
        ("packets", PacketBatch.from_dicts(event[1]))
        if event[0] == "packets" and not isinstance(event[1], PacketBatch)
        else event
        for event in workload.events
    )
    return Workload(
        name=workload.name,
        description=f"{workload.description} (columnar)",
        events=events,
    )


def with_clock_advances(workload: Workload, dt: int) -> Workload:
    """Follow every packet event with an ``("advance", dt)`` clock event.

    The uniform cadence ("one sweep per burst") is how the plain
    scenarios opt into lifecycle pressure; scenarios that need a bespoke
    advance schedule (``timeout_churn_workload``) emit their own advance
    events instead.  ``dt`` must be positive — a zero advance would
    sweep without moving time, which no cadence caller wants.
    """
    if dt < 1:
        raise ValueError(f"advance must be a positive tick count, got {dt}")
    events: list[tuple] = []
    for event in workload.events:
        events.append(event)
        if event[0] == "packets":
            events.append(("advance", dt))
    return Workload(
        name=workload.name,
        description=f"{workload.description} (advance {dt}/burst)",
        events=tuple(events),
    )


def _finish(
    workload: Workload, columnar: bool, advance: int | None
) -> Workload:
    """Shared builder epilogue: optional clock cadence, then columnar
    conversion (advance events pass through untouched either way)."""
    if advance is not None:
        workload = with_clock_advances(workload, advance)
    return columnar_workload(workload) if columnar else workload


def zipf_weights(n: int, s: float = 1.2) -> np.ndarray:
    """Unnormalized zipf popularity weights: rank ``k`` gets ``1 / k**s``."""
    if n < 1:
        raise ValueError("need at least one flow")
    ranks = np.arange(1, n + 1, dtype=float)
    return 1.0 / ranks**s


def flow_pool(
    rule_set: RuleSet,
    flow_count: int,
    seed: int,
) -> tuple[PacketGenerator, list[dict[str, int]]]:
    """Seeded flow pool over the rule set's first ``flow_count`` rules.

    Shared by every scenario builder here and by the open-loop arrival
    builders in :mod:`repro.runtime.streaming`, so a closed-loop
    workload and an arrival schedule built from the same (rule set,
    flow_count, seed) draw from byte-identical flows.
    """
    generator = PacketGenerator(TraceConfig(seed=seed))
    matches = [rule.to_match() for rule in rule_set.rules[:flow_count]]
    flows = generator.flow_pool(matches, fill_fields=rule_set.field_names)
    return generator, flows


def uniform_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
    advance: int | None = None,
) -> Workload:
    """Uniform i.i.d. traffic over the flow pool."""
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.sample_trace(flows, packet_count), frame_len, seed
    )
    workload = Workload(
        name="uniform",
        description=f"{packet_count} pkts uniform over {len(flows)} flows",
        events=(("packets", trace),),
    )
    return _finish(workload, columnar, advance)


def zipf_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    s: float = 1.2,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
    advance: int | None = None,
) -> Workload:
    """Zipf-skewed traffic: a few heavy flows dominate the trace."""
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.sample_trace(flows, packet_count, zipf_weights(len(flows), s)),
        frame_len,
        seed,
    )
    workload = Workload(
        name="zipf",
        description=(
            f"{packet_count} pkts zipf(s={s}) over {len(flows)} flows"
        ),
        events=(("packets", trace),),
    )
    return _finish(workload, columnar, advance)


def widen_rule_set(rule_set: RuleSet, noise_field: str = "tcp_src") -> RuleSet:
    """Extend a rule set's schema with a field no rule constrains.

    The widened schema makes lookup tables built from the set carry an
    (empty) engine for ``noise_field`` — the setting where exact-match
    microflow caches key on bits the classification never consults, and
    a wildcard (megaflow) cache wins.  Returns ``rule_set`` unchanged if
    the field is already in the schema.
    """
    if noise_field in rule_set.field_names:
        return rule_set
    widened = RuleSet(
        name=f"{rule_set.name}+{noise_field}",
        application=rule_set.application,
        field_names=(*rule_set.field_names, noise_field),
    )
    for rule in rule_set:
        widened.add(rule)
    return widened


def uniform_wide_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    noise_field: str = "tcp_src",
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
    advance: int | None = None,
) -> Workload:
    """Uniform traffic whose every packet carries fresh noise bits.

    Each packet is a uniform flow-pool draw with ``noise_field``
    overwritten by a fresh random value, so full-tuple working sets are
    ~``packet_count`` microflows wide.  Pair with :func:`widen_rule_set`
    so the noise field sits *inside* the table schema (outside it, the
    noise never reaches a cache key and the scenario degenerates to
    plain ``uniform``).
    """
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = generator.sample_trace(flows, packet_count)
    rng = np.random.default_rng(seed ^ 0x51DE)
    bits = min(REGISTRY[noise_field].bits, 30)
    noise = rng.integers(0, 1 << bits, size=packet_count)
    trace = [
        dict(fields, **{noise_field: int(value)})
        for fields, value in zip(trace, noise)
    ]
    trace = stamp_frame_lengths(trace, frame_len, seed)
    workload = Workload(
        name="uniform-wide",
        description=(
            f"{packet_count} pkts uniform over {len(flows)} flows, "
            f"per-packet random {noise_field}"
        ),
        events=(("packets", trace),),
    )
    return _finish(workload, columnar, advance)


def bursty_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    mean_burst: float = 16.0,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
    advance: int | None = None,
) -> Workload:
    """Packet-train traffic: geometric per-flow bursts."""
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.bursty_trace(flows, packet_count, mean_burst=mean_burst),
        frame_len,
        seed,
    )
    workload = Workload(
        name="bursty",
        description=(
            f"{packet_count} pkts in ~{mean_burst:.0f}-pkt bursts "
            f"over {len(flows)} flows"
        ),
        events=(("packets", trace),),
    )
    return _finish(workload, columnar, advance)


def churn_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    churn_rules: int = 8,
    rounds: int = 8,
    table_id: int = 0,
    seed: int = DEFAULT_SEED,
    entries: Sequence[FlowEntry] | None = None,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
    advance: int | None = None,
) -> Workload:
    """Zipf traffic interleaved with rule uninstall/reinstall cycles.

    Each round classifies a slice of the trace, then removes and
    immediately reinstalls ``churn_rules`` random entries of table
    ``table_id`` — the flow-mod pattern a controller produces — before
    the next slice.  Caches must flush on every mutation; action tables
    must not grow.

    The mutation events carry the rule set's own flow entries, so table
    ``table_id`` must use the rule set's full schema — i.e. a pipeline
    whose first table comes from
    :func:`~repro.core.builder.build_lookup_table`, not the per-field
    split (whose tables each match a different sub-schema).

    ``entries``, when given, supplies the exact
    :class:`~repro.openflow.flow.FlowEntry` objects the mutation events
    reference (instead of a fresh ``rule_set.to_flow_entries()``
    materialisation).  Pass the same objects the pipeline under test was
    built from and per-entry flow-stats counters survive churn — the
    reinstall puts the *same* object back, so conservation laws over
    entry counters stay exact.
    """
    generator, flows = flow_pool(rule_set, flow_count, seed)
    trace = stamp_frame_lengths(
        generator.sample_trace(flows, packet_count, zipf_weights(len(flows))),
        frame_len,
        seed,
    )
    entries = (
        list(entries) if entries is not None
        else list(rule_set.to_flow_entries())
    )
    rng = np.random.default_rng(seed ^ 0xC4)
    events: list[tuple] = []
    slice_len = max(1, packet_count // rounds)
    cursor = 0
    for _ in range(rounds):
        chunk = trace[cursor : cursor + slice_len]
        if chunk:
            events.append(("packets", chunk))
        cursor += slice_len
        for pick in rng.choice(len(entries), size=min(churn_rules, len(entries)), replace=False):
            entry = entries[int(pick)]
            events.append(("uninstall", table_id, entry.match, entry.priority))
            events.append(("install", table_id, entry))
    if cursor < packet_count:
        events.append(("packets", trace[cursor:]))
    workload = Workload(
        name="churn",
        description=(
            f"{packet_count} pkts zipf + {rounds}x{churn_rules} "
            f"rule uninstall/reinstall on table {table_id}"
        ),
        events=tuple(events),
    )
    return _finish(workload, columnar, advance)


def timeout_churn_workload(
    rule_set: RuleSet,
    packet_count: int = 10_000,
    flow_count: int = DEFAULT_FLOWS,
    elephant_count: int = 8,
    mice_per_round: int = 8,
    rounds: int = 8,
    mice_idle: int = 1,
    advance: int | None = 2,
    table_id: int = 0,
    seed: int = DEFAULT_SEED,
    frame_len: str | int | None = DEFAULT_FRAME_DIST,
    columnar: bool = False,
) -> Workload:
    """Mice/elephant mix where the expiry sweep does the churning.

    The flow pool splits into ``elephant_count`` long-lived elephants
    (no timeouts, traffic every round) and a rotating cast of mice: each
    round replaces ``mice_per_round`` pool rules with fresh short-lived
    twins — alternating ``idle_timeout=mice_idle`` and
    ``hard_timeout=mice_idle`` so both removal reasons appear — serves
    them one round of zipf-mixed traffic, then advances the virtual
    clock past their deadlines.  Every round therefore ends in a mass
    expiry (flow-removed events, version bumps, cache revalidation) the
    way real OpenFlow deployments shed their short flows, without a
    single explicit uninstall carrying the churn.

    Each reincarnation of a mouse rule is a *fresh*
    :class:`~repro.openflow.flow.FlowEntry` twin (new counters, new
    lifecycle), never a reused object — a reused twin would keep its
    original install tick and final counters, double-counting against
    the flow-removed ledger.  The same rule makes the *workload* object
    single-use per runner: the twins ride inside the install events, so
    replaying one built workload through two runners would hand the
    second runner twins already carrying the first run's counters —
    rebuild with the same seed instead (traffic is byte-identical
    either way).  The default ``advance=2`` with
    ``mice_idle=1`` expires a round's mice at that round's closing
    sweep; pass a larger ``advance`` ratio to let mice linger across
    rounds.  ``advance=None`` disables the clock events entirely
    (degenerates to install-only churn; mice never expire).
    """
    if elephant_count < 1 or mice_per_round < 1:
        raise ValueError("need at least one elephant and one mouse per round")
    generator, flows = flow_pool(rule_set, flow_count, seed)
    if len(flows) <= elephant_count:
        raise ValueError(
            f"flow pool ({len(flows)}) must exceed elephant_count "
            f"({elephant_count}) to leave room for mice"
        )
    entries = list(rule_set.to_flow_entries())[: len(flows)]
    mice_pool = list(range(elephant_count, len(flows)))
    events: list[tuple] = []
    slice_len = max(1, packet_count // rounds)
    sent = 0
    for round_index in range(rounds):
        picks = [
            mice_pool[(round_index * mice_per_round + k) % len(mice_pool)]
            for k in range(min(mice_per_round, len(mice_pool)))
        ]
        round_flows = [flows[i] for i in range(elephant_count)]
        for slot, pool_index in enumerate(picks):
            original = entries[pool_index]
            twin = FlowEntry(
                match=original.match,
                priority=original.priority,
                instructions=original.instructions,
                cookie=original.cookie,
                idle_timeout=mice_idle if slot % 2 == 0 else 0,
                hard_timeout=0 if slot % 2 == 0 else mice_idle,
            )
            events.append(("uninstall", table_id, twin.match, twin.priority))
            events.append(("install", table_id, twin))
            round_flows.append(flows[pool_index])
        count = (
            slice_len if round_index < rounds - 1 else packet_count - sent
        )
        if count > 0:
            trace = generator.sample_trace(
                round_flows, count, zipf_weights(len(round_flows))
            )
            events.append(
                ("packets", stamp_frame_lengths(trace, frame_len, seed))
            )
            sent += count
        if advance is not None:
            events.append(("advance", advance))
    workload = Workload(
        name="timeout-churn",
        description=(
            f"{packet_count} pkts, {elephant_count} elephants + "
            f"{rounds}x{mice_per_round} mice expiring via "
            f"idle/hard={mice_idle} sweeps (advance={advance})"
        ),
        events=tuple(events),
    )
    return columnar_workload(workload) if columnar else workload


#: The scenario catalog: name -> builder(rule_set, **kwargs) -> Workload.
SCENARIOS = {
    "uniform": uniform_workload,
    "uniform-wide": uniform_wide_workload,
    "zipf": zipf_workload,
    "bursty": bursty_workload,
    "churn": churn_workload,
    "timeout-churn": timeout_churn_workload,
}
