"""Batched execution of the OpenFlow multi-table pipeline.

:class:`BatchPipeline` drives packet *batches* through an
:class:`~repro.openflow.pipeline.OpenFlowPipeline` (or the decomposition
:class:`~repro.core.architecture.MultiTableLookupArchitecture`) instead of
one packet at a time, behind a two-tier cache hierarchy:

1. a pipeline-level :class:`~repro.runtime.megaflow.MegaflowCache`
   (opt-in via ``megaflow_capacity``): a wildcard-cache hit replays the
   complete traversal — every table is skipped;
2. per-table :class:`~repro.runtime.cache.MicroflowCache` exact-match
   caches fronting each table's lookup on the megaflow-miss path.

Megaflow misses advance through the pipeline in waves: all packets
currently at the same table are looked up together — through the table's
microflow cache when one is attached, then through the table's batched
search path — and only the cheap per-packet instruction execution runs
individually.  Because Goto-Table is forward-only, each table is visited
at most once per batch.  During the waves each packet carries a
:class:`~repro.runtime.megaflow.MegaflowRecorder` accumulating the
consulted-bits mask, visited-table version tags and header rewrites;
the finished traversal installs one megaflow entry covering its whole
aggregate.

The semantics are exactly those of ``OpenFlowPipeline.process``: the
per-entry instruction execution, action-set ordering and miss handling
are *reused* from the pipeline (not re-implemented), so every behavioural
property of the scalar path carries over to the batched path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence
from typing import Any, Protocol

import numpy as np

from repro.openflow.actions import SetFieldAction
from repro.openflow.flow import FlowEntry
from repro.openflow.pipeline import (
    OpenFlowPipeline,
    PipelineResult,
    written_fields,
)
from repro.packet.batch import PacketBatch
from repro.packet.headers import frame_length
from repro.runtime.cache import DEFAULT_CAPACITY, MicroflowCache
from repro.runtime.lifecycle import (
    FlowRemoved,
    LifecycleSweeper,
    VirtualClock,
)
from repro.runtime.megaflow import (
    MegaflowCache,
    MegaflowEntry,
    MegaflowRecorder,
    replay_template,
)


@dataclass
class BatchStats:
    """Aggregate counters over everything a runner has processed."""

    packets: int = 0
    batches: int = 0
    matched: int = 0
    sent_to_controller: int = 0
    dropped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    megaflow_hits: int = 0
    megaflow_misses: int = 0
    waves: int = 0
    #: Per-entry flow-stats increments attributable to this runner's
    #: traffic: one per (packet, matched table entry) pair.  For the
    #: sharded runner these are the worker deltas merged back into the
    #: parent's :class:`~repro.openflow.flow.FlowStats` counters.
    flow_packets: int = 0
    flow_bytes: int = 0
    #: Lifecycle counters: virtual-clock advances observed and entries
    #: the expiry sweeps removed (idle + hard).
    advances: int = 0
    expired: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def megaflow_hit_rate(self) -> float:
        total = self.megaflow_hits + self.megaflow_misses
        return self.megaflow_hits / total if total else 0.0

    @property
    def waves_per_batch(self) -> float:
        return self.waves / self.batches if self.batches else 0.0


class BatchPipeline:
    """Batch-oriented runtime over an OpenFlow pipeline.

    Args:
        pipeline: the pipeline to drive; its tables may be behavioural
            ``FlowTable``s or decomposition ``OpenFlowLookupTable``s.
        cache_capacity: per-table microflow-cache size; ``0`` / ``None``
            disables caching.  Caches are only attached to tables that
            expose a match schema (``field_names``); others fall back to
            their plain (batched, if available) lookup path.
        megaflow_capacity: pipeline-level wildcard-cache size; ``0`` /
            ``None`` (the default) disables the megaflow tier.
    """

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        cache_capacity: int | None = DEFAULT_CAPACITY,
        megaflow_capacity: int | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.caches: dict[int, MicroflowCache] = {}
        if cache_capacity:
            for table in pipeline.tables:
                if getattr(table, "field_names", None) is not None:
                    self.caches[table.table_id] = MicroflowCache(
                        table, capacity=cache_capacity
                    )
        self.megaflow: MegaflowCache | None = (
            MegaflowCache(pipeline, capacity=megaflow_capacity)
            if megaflow_capacity
            else None
        )
        #: When True, batches skip the megaflow tier entirely — no
        #: probe, no recorder capture, no install (rung 2 of the
        #: streaming degradation ladder sets this under sustained
        #: overload).  Observationally invisible: the megaflow replays
        #: traversals it has already seen, so bypassing it changes
        #: per-packet results never, only cache stats and cost.
        self.megaflow_bypass = False
        self.packets = 0
        self.batches = 0
        self.matched = 0
        self.sent_to_controller = 0
        self.dropped = 0
        self.waves = 0
        self.flow_packets = 0
        self.flow_bytes = 0
        self.lifecycle = LifecycleSweeper()

    @property
    def clock(self) -> VirtualClock:
        """The runner's virtual clock (moves only via
        :meth:`advance_clock`)."""
        return self.lifecycle.clock

    @property
    def flow_removed(self) -> list[FlowRemoved]:
        """Ledger of every expiry this runner has swept, in order."""
        return self.lifecycle.ledger

    def advance_clock(self, dt: int) -> list[FlowRemoved]:
        """Advance virtual time and expire timed-out entries.

        Removals go through the tables' ordinary ``remove`` path, so
        version counters bump and the microflow/megaflow tiers
        revalidate exactly as they do for explicit uninstalls.  Returns
        the flow-removed events this advance caused (also appended to
        :attr:`flow_removed`).
        """
        return self.lifecycle.advance(self.pipeline, dt)

    def process(self, packet_fields: Mapping[str, int]) -> PipelineResult:
        """Single-packet convenience wrapper over :meth:`process_batch`."""
        return self.process_batch([packet_fields])[0]

    def process_batch(
        self, batch: Sequence[Mapping[str, int]] | PacketBatch
    ) -> list[PipelineResult]:
        """Run a batch of packets through the pipeline.

        ``batch`` is a dict sequence or a columnar
        :class:`~repro.packet.batch.PacketBatch` (routed through
        :meth:`classify_columnar`).  Returns one :class:`PipelineResult`
        per packet, in input order — identical to mapping
        ``pipeline.process`` over the batch either way.
        """
        if isinstance(batch, PacketBatch):
            return self.classify_columnar(batch).results()
        pipeline = self.pipeline
        self.packets += len(batch)
        self.batches += 1
        results: list[PipelineResult] = [None] * len(batch)  # type: ignore[list-item]

        # Tier 1: megaflow probe — a hit replays the whole traversal.
        megaflow = None if self.megaflow_bypass else self.megaflow
        if megaflow is not None:
            missed: list[int] = []
            for i, replayed in enumerate(megaflow.lookup_batch(batch)):
                if replayed is None:
                    missed.append(i)
                else:
                    results[i] = replayed
            recorders: dict[int, MegaflowRecorder] | None = {
                i: MegaflowRecorder() for i in missed
            }
        else:
            missed = list(range(len(batch)))
            recorders = None
        for i in missed:
            results[i] = PipelineResult(final_fields=dict(batch[i]))

        self._run_waves(results, missed, recorders)
        if megaflow is not None and recorders is not None:
            for i in missed:
                megaflow.install(batch[i], recorders[i], results[i])
        for result in results:
            # frame_len is never rewritten, so final_fields carries the
            # same length every stats.record() saw mid-pipeline.
            self._credit_result(result, frame_length(result.final_fields))
        return results

    def _credit_result(self, result: PipelineResult, frame_len: int) -> None:
        """Fold one packet's outcome into the runner counters — the
        single definition shared by the dict path's tail and the
        columnar miss loop (the columnar hit side runs the same
        arithmetic aggregated per megaflow bucket)."""
        matched_entries = len(result.matched_entries)
        self.matched += bool(matched_entries)
        self.flow_packets += matched_entries
        if matched_entries:
            self.flow_bytes += matched_entries * frame_len
        self.sent_to_controller += result.sent_to_controller
        self.dropped += result.dropped

    def classify_columnar(self, batch: PacketBatch) -> ColumnarOutcomes:
        """Classify a columnar batch without leaving the columns.

        The megaflow tier is probed with vectorized masked-key compares
        (:meth:`~repro.runtime.megaflow.MegaflowCache.probe_batch`);
        residual misses materialise their row dicts lazily — one row at
        a time, aliased across duplicates — and walk the existing wave
        machinery (through the first table's vectorized microflow probe
        when no mask capture is active).  The returned
        :class:`ColumnarOutcomes` defers replay materialisation: local
        callers build :class:`PipelineResult` lists from it
        (:meth:`ColumnarOutcomes.results`, bitwise-identical to the dict
        path), the decode-free sharded worker encodes the cached
        templates directly.
        """
        self.packets += len(batch)
        self.batches += 1
        frame = batch.frame_lengths()
        megaflow = None if self.megaflow_bypass else self.megaflow
        if megaflow is not None:
            entries: list[MegaflowEntry | None]
            entries, buckets = megaflow.probe_credit(batch)
            # Hit counters aggregated per entry — one pass over the few
            # distinct aggregates instead of every packet.
            for entry, count, byte_count in buckets:
                template = entry.template
                matched_entries = len(template.matched_entries)
                if matched_entries:
                    self.matched += count
                    self.flow_packets += matched_entries * count
                    self.flow_bytes += matched_entries * byte_count
                self.sent_to_controller += template.sent_to_controller * count
                self.dropped += template.dropped * count
            missed = [i for i, entry in enumerate(entries) if entry is None]
            recorders: dict[int, MegaflowRecorder] | None = {
                i: MegaflowRecorder() for i in missed
            }
        else:
            entries = [None] * len(batch)
            missed = list(range(len(batch)))
            recorders = None
        wave_results: dict[int, PipelineResult] = {
            i: PipelineResult(final_fields=dict(batch.fields_at(i)))
            for i in missed
        }
        if missed:
            self._run_waves(
                wave_results,
                missed,
                recorders,
                columnar_first=batch if recorders is None else None,
            )
            if megaflow is not None and recorders is not None:
                for i in missed:
                    megaflow.install(
                        batch.fields_at(i), recorders[i], wave_results[i]
                    )
            frame_list = frame.tolist()
            for i in missed:
                self._credit_result(wave_results[i], frame_list[i])
        return ColumnarOutcomes(
            batch=batch, entries=entries, wave_results=wave_results, frame=frame
        )

    def _run_waves(
        self,
        results: list[PipelineResult | None],
        missed: Sequence[int],
        recorders: dict[int, MegaflowRecorder] | None,
        columnar_first: PacketBatch | None = None,
    ) -> None:
        """The shared wave machinery: advance the megaflow-missed packets
        table by table until every one completes.

        ``results`` maps packet position to its in-flight
        :class:`PipelineResult` (a list on the dict path, a dict on the
        columnar path).  ``columnar_first``, when given, must cover
        exactly the first wave's members in position order; the first
        table's microflow cache is then probed columnar (only valid
        without mask capture, where miss resolution is batched anyway).
        """
        pipeline = self.pipeline
        action_sets: dict[int, list] = {i: [] for i in missed}
        #: Packets still in flight, grouped by the table they sit at.
        pending: dict[int, list[int]] = {}
        if missed:
            pending[pipeline.tables[0].table_id] = list(missed)
        #: Packets whose processing ended with a match (no Goto-Table);
        #: their accumulated action sets execute after the waves finish.
        completed: list[int] = []

        while pending:
            # Goto-Table is forward-only, so the smallest pending table id
            # is never re-entered once drained.
            self.waves += 1
            table_id = min(pending)
            members = pending.pop(table_id)
            table = pipeline.table(table_id)
            if recorders is not None:
                for i in members:
                    recorders[i].note_table(table_id, table.version)
            cache = self.caches.get(table_id)
            if (
                columnar_first is not None
                and recorders is None
                and cache is not None
                and len(columnar_first) == len(members)
            ):
                entries = cache.lookup_batch_columnar(columnar_first)
            else:
                fields_batch = [results[i].final_fields for i in members]
                masks = (
                    [recorders[i] for i in members]
                    if recorders is not None
                    else None
                )
                entries = self._lookup_batch(
                    table_id, table, fields_batch, masks
                )
            columnar_first = None  # only ever valid for the first wave
            for i, entry in zip(members, entries):
                result = results[i]
                result.tables_visited.append(table_id)
                if entry is None:
                    # Miss: the policy acts immediately and the packet's
                    # accumulated action set is discarded, exactly as in
                    # the scalar path.
                    pipeline._handle_miss(result)
                    continue
                result.matched_entries.append(entry)
                next_table = pipeline._execute_instructions(
                    entry, action_sets[i], result
                )
                if recorders is not None:
                    for name in written_fields(entry):
                        recorders[i].mark_rewritten(name)
                if next_table is None:
                    completed.append(i)
                else:
                    pending.setdefault(next_table, []).append(i)

        for i in completed:
            result = results[i]
            pipeline._execute_action_set(action_sets[i], result)
            if recorders is not None:
                for action in action_sets[i]:
                    if isinstance(action, SetFieldAction):
                        recorders[i].mark_rewritten(action.field_name)
            if not result.output_ports and not result.sent_to_controller:
                result.dropped = True

    def _lookup_batch(
        self,
        table_id: int,
        table: Any,
        fields_batch: Sequence[Mapping[str, int]],
        masks: Sequence[MegaflowRecorder] | None = None,
    ) -> list[FlowEntry | None]:
        cache = self.caches.get(table_id)
        if cache is not None:
            return cache.lookup_batch(fields_batch, masks=masks)
        if masks is not None:
            return [
                table.lookup(fields, mask=mask)
                for fields, mask in zip(fields_batch, masks)
            ]
        if hasattr(table, "lookup_batch"):
            return table.lookup_batch(fields_batch)
        return [table.lookup(fields) for fields in fields_batch]

    def cache_stats(self) -> dict[int, MicroflowCache]:
        """The per-table caches, keyed by table id (empty when disabled)."""
        return dict(self.caches)

    def stats_snapshot(self) -> BatchStats:
        stats = BatchStats(
            packets=self.packets,
            batches=self.batches,
            matched=self.matched,
            sent_to_controller=self.sent_to_controller,
            dropped=self.dropped,
            waves=self.waves,
            flow_packets=self.flow_packets,
            flow_bytes=self.flow_bytes,
            advances=self.lifecycle.stats.advances,
            expired=self.lifecycle.stats.expired,
        )
        for cache in self.caches.values():
            stats.cache_hits += cache.hits
            stats.cache_misses += cache.misses
        if self.megaflow is not None:
            stats.megaflow_hits = self.megaflow.hits
            stats.megaflow_misses = self.megaflow.misses
        return stats


@dataclass
class ColumnarOutcomes:
    """One columnar batch's classification, replay not yet materialised.

    ``entries[i]`` is the megaflow aggregate position ``i`` hit (its
    template already carries everything but ``final_fields``), or
    ``None`` for positions classified by the wave machinery (whose full
    :class:`PipelineResult` sits in ``wave_results``).  ``frame`` is the
    per-position ``frame_len`` lane.  The split is what makes the
    sharded worker decode-free: :func:`~repro.runtime.transport.encode_outcomes`
    ships hits straight from the templates, so their rows are never
    materialised as dicts.
    """

    batch: PacketBatch
    entries: list[MegaflowEntry | None]
    wave_results: dict[int, PipelineResult]
    frame: np.ndarray

    def results(self) -> list[PipelineResult]:
        """Materialise the per-packet results, in position order —
        bitwise-identical to the dict path (megaflow hits rebuild
        ``final_fields`` as packet fields plus the recorded rewrite
        overrides, exactly like
        :meth:`~repro.runtime.megaflow.MegaflowCache` replay; stats were
        already credited at probe time)."""
        out: list[PipelineResult] = []
        batch = self.batch
        for i, entry in enumerate(self.entries):
            if entry is None:
                out.append(self.wave_results[i])
                continue
            final_fields = dict(batch.fields_at(i))
            if entry.overrides:
                final_fields.update(entry.overrides)
            out.append(replay_template(entry.template, final_fields))
        return out


@dataclass(frozen=True)
class Workload:
    """A replayable traffic scenario: packet batches interleaved with
    flow-table mutations.

    Events are tuples tagged by kind:

    - ``("packets", [fields, ...])`` — a burst of packets to classify;
    - ``("install", table_id, flow_entry)`` — add a rule mid-trace;
    - ``("uninstall", table_id, match, priority)`` — remove a rule;
    - ``("advance", dt)`` — move the runner's virtual clock forward
      ``dt`` ticks and sweep idle/hard timeouts (the *only* way time
      passes, so every runner path sees the identical tick sequence).
    """

    name: str
    description: str
    events: tuple[tuple, ...]

    @property
    def packet_count(self) -> int:
        return sum(
            len(event[1]) for event in self.events if event[0] == "packets"
        )

    @property
    def byte_count(self) -> int:
        """Total on-wire bytes in the trace (0 when built with
        ``frame_len=None``) — the numerator of bits/sec reporting."""
        total = 0
        for event in self.events:
            if event[0] != "packets":
                continue
            if isinstance(event[1], PacketBatch):
                total += event[1].byte_total
            else:
                total += sum(frame_length(fields) for fields in event[1])
        return total


@dataclass
class WorkloadStats(BatchStats):
    """Workload-replay outcome: traffic counters plus mutation counts."""

    installs: int = 0
    uninstalls: int = 0
    results: list[PipelineResult] = field(default_factory=list, repr=False)
    flow_removed: list[FlowRemoved] = field(default_factory=list, repr=False)


def _chunks(items: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class WorkloadRunner(Protocol):
    """The runner surface workload replay drives.

    :class:`BatchPipeline` and
    :class:`~repro.runtime.shard.ShardedBatchPipeline` both satisfy it;
    optional fast paths (``process_batches``, ``classify_columnar``) are
    discovered dynamically, so they stay off the required surface.
    """

    @property
    def pipeline(self) -> Any: ...

    def process_batch(
        self, batch: Sequence[Mapping[str, int]] | PacketBatch
    ) -> list[PipelineResult]: ...

    def advance_clock(self, dt: int) -> list[FlowRemoved]: ...

    def stats_snapshot(self) -> BatchStats: ...


def run_workload(
    runner: WorkloadRunner,
    workload: Workload,
    batch_size: int = 256,
    keep_results: bool = False,
) -> WorkloadStats:
    """Replay a workload through a :class:`BatchPipeline` (or any runner
    exposing the same ``process_batch`` / ``pipeline`` /
    ``stats_snapshot`` surface, e.g.
    :class:`~repro.runtime.shard.ShardedBatchPipeline`).

    Packet events are classified in ``batch_size`` chunks; mutation events
    apply through ``runner.pipeline`` so sharded runners can log them for
    worker catch-up (caches notice via the tables' version counters and
    revalidate on the next touch).

    Runners exposing ``process_batches`` (the pipelined
    :class:`~repro.runtime.shard.ShardedBatchPipeline` dispatch/collect
    loop) get each packet event's chunks as one pipelined stream, so the
    double-buffered transport overlap is exercised by workload replay;
    mutation events still land between streams, preserving the serial
    event order.

    Columnar workloads (packet events carrying a
    :class:`~repro.packet.batch.PacketBatch`, see
    :func:`~repro.runtime.scenarios.columnar_workload`) replay through
    the vectorized fast path; with ``keep_results=False`` a local
    :class:`BatchPipeline` classifies them via
    :meth:`~BatchPipeline.classify_columnar` and skips materialising
    per-packet :class:`PipelineResult` objects nobody will read —
    counters and flow stats are identical either way.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    stats = WorkloadStats()
    process_batches = getattr(runner, "process_batches", None)
    classify_columnar = (
        getattr(runner, "classify_columnar", None)
        if not keep_results and process_batches is None
        else None
    )
    # All counters come from the runner's stats snapshot as deltas, so a
    # reused runner reports this replay only — and a sharded runner
    # (whose cache/wave counters live in its workers' snapshots) reports
    # truthfully instead of the parent's empty cache dict.
    before = runner.stats_snapshot()
    for event in workload.events:
        kind = event[0]
        if kind == "packets":
            chunks = _chunks(event[1], batch_size)
            if classify_columnar is not None and isinstance(
                event[1], PacketBatch
            ):
                for chunk in chunks:
                    classify_columnar(chunk)
                    stats.batches += 1
                continue
            chunk_stream = (
                process_batches(chunks)
                if process_batches is not None
                else map(runner.process_batch, chunks)
            )
            for chunk_results in chunk_stream:
                if keep_results:
                    stats.results.extend(chunk_results)
                stats.batches += 1
        elif kind == "install":
            _, table_id, entry = event
            runner.pipeline.table(table_id).add(entry)
            stats.installs += 1
        elif kind == "uninstall":
            _, table_id, match, priority = event
            runner.pipeline.table(table_id).remove(match, priority)
            stats.uninstalls += 1
        elif kind == "advance":
            # Time only moves here; every packet event before this one
            # has fully drained (the chunk stream above is exhausted per
            # event), so even the pipelined sharded runner has merged
            # all flow-stats deltas before the sweep reads counters —
            # flow-removed final counts are exact on every path.
            _, delta = event
            stats.flow_removed.extend(runner.advance_clock(delta))
        else:
            raise ValueError(f"unknown workload event kind {kind!r}")
    after = runner.stats_snapshot()
    stats.packets = after.packets - before.packets
    stats.matched = after.matched - before.matched
    stats.sent_to_controller = (
        after.sent_to_controller - before.sent_to_controller
    )
    stats.dropped = after.dropped - before.dropped
    stats.cache_hits = after.cache_hits - before.cache_hits
    stats.cache_misses = after.cache_misses - before.cache_misses
    stats.megaflow_hits = after.megaflow_hits - before.megaflow_hits
    stats.megaflow_misses = after.megaflow_misses - before.megaflow_misses
    stats.waves = after.waves - before.waves
    stats.flow_packets = after.flow_packets - before.flow_packets
    stats.flow_bytes = after.flow_bytes - before.flow_bytes
    stats.advances = after.advances - before.advances
    stats.expired = after.expired - before.expired
    return stats
