"""Shared read-only rule state for million-rule sharded tables.

The sharded runtime's construction-time ``PipelineSpec`` replays every
flow entry into every worker, so each worker pays O(rules) memory and
O(rules) spin-up time for its private replica of structures that never
change between mutations.  At the scale the paper's memory model is
about — 10^5..10^6 rules — that replica dominates both the respawn
latency of the supervision layer and the per-worker RSS.

This module freezes the *static* lookup state of a table at a known
mutation-log position into one numpy-backed shared-memory block (the
``SharedBlock`` machinery from :mod:`repro.runtime.transport`, so the
finalize/unlink lifecycle guards apply unchanged):

- per-partition structures: multibit-trie prefix tables and level
  occupancy maps, exact-match LUT slots, elementary range intervals;
- the index calculation's aggregation network, as sorted hash arrays
  per tuple-prefix depth plus exact label columns and best-rule ranks
  at the final depth;
- the action table, as a slot -> entry-position array;
- the flow entries themselves, pickled into one packed byte lane with
  an offset column (entries rehydrate lazily, on first match).

Workers *attach*: :class:`FrozenLookupTable` subclasses the eager
:class:`~repro.core.lookup_table.OpenFlowLookupTable`, builds the cheap
empty shell, then grafts frozen twins over the partition engines' search
structures, the index, and the action table.  All inherited search paths
(``search``, ``search_batch``, ``consulted_mask`` capture, microflow and
megaflow caching) run unchanged over the grafted structures, which is
what keeps sharded results bitwise-identical to the single-process
paths.  Per-worker incremental memory for the static state is the page
tables, not the data — O(1) in rules.

Mutations keep flowing through the mutation log.  The first ``add`` /
``remove`` / ``remove_where`` against a frozen table *thaws* it: the
sealed entries are materialised and replayed into a private eager table
in installation order (entry ``_seq`` values survive pickling, so index
tiebreaks agree with every other path), after which the table behaves
exactly like the replica it replaced.  Unmutated tables stay frozen for
the worker's lifetime; a POSIX unlink of a superseded seal generation
leaves their mappings valid.

See ``docs/architecture.md`` (layer stack and invariants) and
``docs/memory-model.md`` (what each frozen array corresponds to in the
paper's cost model).
"""

from __future__ import annotations

import itertools
import os
import pickle
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.algorithms.base import NO_LABEL
from repro.core.field_engine import (
    LutPartitionEngine,
    RangePartitionEngine,
    TriePartitionEngine,
)
from repro.core.lookup_table import OpenFlowLookupTable
from repro.runtime.transport import (
    BlockAttachments,
    BlockReader,
    BlockWriter,
    Segment,
    SharedBlock,
)
from repro.util.bits import mask_of, prefix_mask

_MASK64 = (1 << 64) - 1
#: FNV-1a offset basis / prime, the incremental tuple-hash backbone.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
#: Golden-ratio odd multiplier; spreads small consecutive labels before
#: the FNV fold (an odd multiplier is bijective mod 2^64, so distinct
#: labels stay distinct going into the mix).
_LABEL_SPREAD = 0x9E3779B97F4A7C15


#: Per-process seal sequence; see the naming note in ``seal``.
_SEAL_IDS = itertools.count(1)


def _extend_hash(h: int, label: int) -> int:
    """Fold one more label into an incremental tuple hash."""
    h ^= (label * _LABEL_SPREAD + 1) & _MASK64
    return (h * _FNV_PRIME) & _MASK64


def _tuple_hash(labels: tuple[int, ...]) -> int:
    h = _FNV_OFFSET
    for label in labels:
        h = _extend_hash(h, label)
    return h


def _readonly(reader: BlockReader, key: str) -> np.ndarray:
    """A zero-copy view with the write flag dropped.

    ``BlockReader.get`` inherits writability from the mapping; sealed
    state must not be mutable through an attached replica, so every
    frozen structure goes through this helper (the attach-after-seal
    immutability contract the lifecycle tests pin down).
    """
    array = reader.get(key)
    array.setflags(write=False)
    return array


# ----------------------------------------------------------------------
# layout records (picklable, travel inside PipelineSpec)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FrozenTableLayout:
    """Per-table scalars that do not fit in a numpy lane."""

    table_id: int
    entry_count: int
    miss_position: int | None
    #: (partition name, default /0 label, stored-entry count) per trie.
    tries: tuple[tuple[str, int, int], ...]
    #: (partition name, stored-range count) per range structure.
    ranges: tuple[tuple[str, int], ...]
    #: distinct addressable label tuples in the index.
    index_len: int
    #: live action entries (allocated slots minus free slots).
    action_live: int


@dataclass(frozen=True)
class SharedRuleLayout:
    """Everything a worker needs to attach to one seal generation."""

    block_name: str
    segments: tuple[Segment, ...]
    tables: tuple[FrozenTableLayout, ...]

    def table_layout(self, table_id: int) -> FrozenTableLayout | None:
        for layout in self.tables:
            if layout.table_id == table_id:
                return layout
        return None


# ----------------------------------------------------------------------
# frozen structure twins
# ----------------------------------------------------------------------


class FrozenTrie:
    """Read-only multibit-trie twin backed by sorted shared arrays.

    Mirrors :class:`~repro.algorithms.multibit_trie.MultibitTrie`'s
    ``lookup_all`` / ``consulted_bits`` semantics exactly: per-length
    sorted prefix tables replace the entry dict, per-level sorted path
    arrays (with a has-child flag lane) replace the sparse record maps.
    """

    def __init__(
        self,
        reader: BlockReader,
        key: str,
        key_bits: int,
        boundaries: tuple[int, ...],
        default_label: int,
        entry_count: int,
    ) -> None:
        self.key_bits = key_bits
        self.boundaries = boundaries
        self._default_label = default_label
        self._entry_count = entry_count
        self._values = tuple(
            _readonly(reader, f"{key}/trie/len{length}/values")
            for length in range(1, key_bits + 1)
        )
        self._labels = tuple(
            _readonly(reader, f"{key}/trie/len{length}/labels")
            for length in range(1, key_bits + 1)
        )
        self._level_paths = tuple(
            _readonly(reader, f"{key}/trie/lvl{level}/paths")
            for level in range(len(boundaries))
        )
        self._level_child = tuple(
            _readonly(reader, f"{key}/trie/lvl{level}/child")
            for level in range(len(boundaries))
        )

    def _check_key(self, value: int) -> None:
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value:#x} wider than {self.key_bits} bits")

    def lookup_all(self, value: int) -> tuple[int, ...]:
        self._check_key(value)
        labels = []
        for length in range(self.key_bits, 0, -1):
            values = self._values[length - 1]
            if not values.size:
                continue
            candidate = value & prefix_mask(length, self.key_bits)
            slot = int(np.searchsorted(values, np.uint64(candidate)))
            if slot < values.size and int(values[slot]) == candidate:
                labels.append(int(self._labels[length - 1][slot]))
        if self._default_label != NO_LABEL:
            labels.append(self._default_label)
        return tuple(labels)

    def lookup(self, value: int) -> int:
        labels = self.lookup_all(value)
        return labels[0] if labels else NO_LABEL

    def consulted_bits(self, value: int) -> int:
        self._check_key(value)
        consulted = 0
        for level, boundary in enumerate(self.boundaries):
            paths = self._level_paths[level]
            if not paths.size:
                break
            consulted = boundary
            path = value >> (self.key_bits - boundary)
            slot = int(np.searchsorted(paths, np.uint64(path)))
            if slot >= paths.size or int(paths[slot]) != path:
                break
            if not int(self._level_child[level][slot]):
                break
        return consulted

    def __len__(self) -> int:
        return self._entry_count


class FrozenLut:
    """Read-only exact-match LUT twin (sorted keys + label column)."""

    def __init__(self, reader: BlockReader, key: str) -> None:
        self._keys = _readonly(reader, f"{key}/lut/keys")
        self._labels = _readonly(reader, f"{key}/lut/labels")

    def lookup(self, value: int) -> int:
        slot = int(np.searchsorted(self._keys, np.uint64(value)))
        if slot < self._keys.size and int(self._keys[slot]) == value:
            return int(self._labels[slot])
        return NO_LABEL

    def lookup_all(self, value: int) -> tuple[int, ...]:
        label = self.lookup(value)
        return () if label == NO_LABEL else (label,)

    def __len__(self) -> int:
        return int(self._keys.size)


class FrozenRange:
    """Read-only elementary-interval twin (narrowest-first, ragged)."""

    def __init__(
        self, reader: BlockReader, key: str, key_bits: int, range_count: int
    ) -> None:
        self.key_bits = key_bits
        self._range_count = range_count
        self._bounds = _readonly(reader, f"{key}/range/bounds")
        self._offsets = _readonly(reader, f"{key}/range/offsets")
        self._labels = _readonly(reader, f"{key}/range/labels")

    def lookup_all(self, value: int) -> tuple[int, ...]:
        if not 0 <= value <= mask_of(self.key_bits):
            raise ValueError(f"key {value} wider than {self.key_bits} bits")
        if not self._bounds.size:
            return ()
        index = int(np.searchsorted(self._bounds, np.uint64(value), side="right")) - 1
        if index < 0:
            return ()
        low = int(self._offsets[index])
        high = int(self._offsets[index + 1])
        return tuple(int(label) for label in self._labels[low:high])

    def lookup(self, value: int) -> int:
        labels = self.lookup_all(value)
        return labels[0] if labels else NO_LABEL

    def __len__(self) -> int:
        return self._range_count


class FrozenIndex:
    """Read-only index-calculation twin.

    Intermediate aggregation stages are sorted 64-bit hash arrays over
    truncated label tuples — a hash false positive there only widens the
    candidate set the original DCFL pruning would have narrowed, which
    is a performance detail, never a correctness one.  The final depth
    is *exact*: stored tuples keep their full label columns, and a
    candidate only wins after an element-wise label comparison, so the
    frozen lookup returns precisely what
    :meth:`repro.core.index.IndexCalculator.lookup` returns.
    """

    def __init__(self, reader: BlockReader, key: str, depth: int) -> None:
        self._depth = depth
        self._stems = tuple(
            _readonly(reader, f"{key}/index/d{k}") for k in range(depth - 1)
        )
        self._final = _readonly(reader, f"{key}/index/final")
        self._columns = tuple(
            _readonly(reader, f"{key}/index/key{j}") for j in range(depth)
        )
        self._priority = _readonly(reader, f"{key}/index/priority")
        self._specificity = _readonly(reader, f"{key}/index/specificity")
        self._sequence = _readonly(reader, f"{key}/index/sequence")
        self._action = _readonly(reader, f"{key}/index/action")

    def lookup(self, label_sets: tuple[tuple[int, ...], ...]) -> int | None:
        if len(label_sets) != self._depth:
            raise ValueError(
                f"expected {self._depth} label sets, got {len(label_sets)}"
            )
        candidates: list[tuple[int, tuple[int, ...]]] = [(_FNV_OFFSET, ())]
        for k in range(self._depth - 1):
            options = tuple(label_sets[k]) + (NO_LABEL,)
            stems = self._stems[k]
            extended: list[tuple[int, tuple[int, ...]]] = []
            for h, stem in candidates:
                for label in options:
                    h2 = _extend_hash(h, label)
                    slot = int(np.searchsorted(stems, np.uint64(h2)))
                    if slot < stems.size and int(stems[slot]) == h2:
                        extended.append((h2, stem + (label,)))
            if not extended:
                return None
            candidates = extended
        options = tuple(label_sets[self._depth - 1]) + (NO_LABEL,)
        best_rank: tuple[int, int, int] | None = None
        best_action: int | None = None
        for h, stem in candidates:
            for label in options:
                h2 = _extend_hash(h, label)
                target = np.uint64(h2)
                lo = int(np.searchsorted(self._final, target, side="left"))
                hi = int(np.searchsorted(self._final, target, side="right"))
                for row in range(lo, hi):
                    if not self._row_matches(row, stem, label):
                        continue
                    rank = (
                        int(self._priority[row]),
                        int(self._specificity[row]),
                        -int(self._sequence[row]),
                    )
                    if best_rank is None or rank > best_rank:
                        best_rank = rank
                        best_action = int(self._action[row])
                    break  # one stored row per distinct tuple
        return best_action

    def _row_matches(
        self, row: int, stem: tuple[int, ...], last_label: int
    ) -> bool:
        for j, label in enumerate(stem):
            if int(self._columns[j][row]) != label:
                return False
        return int(self._columns[self._depth - 1][row]) == last_label

    def __len__(self) -> int:
        return int(self._final.size)


class FrozenActions:
    """Read-only action-table twin: slot index -> sealed entry position.

    Entries rehydrate lazily through the shared :class:`_EntryStore`, so
    a worker only pays unpickling cost for rules its traffic actually
    hits.
    """

    def __init__(
        self, reader: BlockReader, key: str, store: _EntryStore, live: int
    ) -> None:
        self._positions = _readonly(reader, f"{key}/actions/positions")
        self._store = store
        self._live = live
        self._cache: dict[int, Any] = {}

    def __getitem__(self, index: int) -> Any:
        entry = self._cache.get(index)
        if entry is not None:
            return entry
        if not 0 <= index < self._positions.size:
            raise IndexError(f"action slot {index} out of range")
        position = int(self._positions[index])
        if position < 0:
            raise IndexError(f"action slot {index} is free")
        from repro.core.action_table import ActionTableEntry

        entry = ActionTableEntry(
            index=index, flow_entry=self._store.entry_at(position)
        )
        self._cache[index] = entry
        return entry

    def __iter__(self) -> Any:
        for index in range(self._positions.size):
            if int(self._positions[index]) >= 0:
                yield self[index]

    def __len__(self) -> int:
        return self._live

    @property
    def allocated_slots(self) -> int:
        return int(self._positions.size)


class _EntryStore:
    """Packed pickled flow entries: one byte lane + an offset column.

    Positions are the sealed installation order — the same coordinate
    system as ``entries_snapshot()`` on the parent's authoritative table
    at seal time, which is what lets the stats-return protocol reference
    frozen entries without rebuilding a snapshot.
    """

    def __init__(
        self,
        reader: BlockReader,
        key: str,
        count: int,
        attachments: BlockAttachments,
    ) -> None:
        self._blob = _readonly(reader, f"{key}/entries/blob")
        self._offsets = _readonly(reader, f"{key}/entries/offsets")
        self.count = count
        #: keeps the mapping alive for as long as any entry may rehydrate
        self._attachments = attachments
        self._cache: dict[int, Any] = {}
        self._positions: dict[int, int] = {}
        self._all: tuple[Any, ...] | None = None

    def entry_at(self, position: int) -> Any:
        entry = self._cache.get(position)
        if entry is None:
            low = int(self._offsets[position])
            high = int(self._offsets[position + 1])
            entry = pickle.loads(bytes(self._blob[low:high]))
            self._cache[position] = entry
            self._positions[id(entry)] = position
        return entry

    def position_of(self, entry: Any) -> int | None:
        return self._positions.get(id(entry))

    def all_entries(self) -> tuple[Any, ...]:
        if self._all is None:
            self._all = tuple(self.entry_at(i) for i in range(self.count))
        return self._all


# ----------------------------------------------------------------------
# frozen lookup table
# ----------------------------------------------------------------------


class FrozenLookupTable(OpenFlowLookupTable):
    """An :class:`OpenFlowLookupTable` attached to sealed shared state.

    Construction builds the normal *empty* table (partition engines,
    partitioner, caches — all O(fields), not O(rules)), then grafts the
    frozen twins over each engine's search structure, the index, and the
    action table.  Every inherited lookup path — scalar, batch, masked
    megaflow capture — runs unchanged.

    The first mutation thaws: sealed entries are materialised and
    replayed into a fresh eager table whose ``__dict__`` replaces this
    one's, so post-thaw the object *is* the private replica the worker
    would have built at spawn.  ``version`` stays 0 while frozen and
    jumps to the replay count on thaw, so microflow/megaflow caches
    invalidate exactly as they would across real mutations.
    """

    def __init__(
        self,
        field_names: tuple[str, ...],
        layout: FrozenTableLayout,
        reader: BlockReader,
        attachments: BlockAttachments,
        config: Any,
    ) -> None:
        super().__init__(
            field_names, table_id=layout.table_id, config=config
        )
        prefix = f"t{layout.table_id}"
        self._store = _EntryStore(
            reader, prefix, layout.entry_count, attachments
        )
        trie_meta = {name: (default, count) for name, default, count in layout.tries}
        range_meta = dict(layout.ranges)
        for engine in self._flat_engines:
            engine_any: Any = engine
            key = f"{prefix}/{engine.name}"
            if isinstance(engine, TriePartitionEngine):
                default, count = trie_meta[engine.name]
                engine_any.trie = FrozenTrie(
                    reader,
                    key,
                    key_bits=engine.trie.key_bits,
                    boundaries=engine.trie.boundaries,
                    default_label=default,
                    entry_count=count,
                )
            elif isinstance(engine, LutPartitionEngine):
                engine_any.lut = FrozenLut(reader, key)
            elif isinstance(engine, RangePartitionEngine):
                engine_any.ranges = FrozenRange(
                    reader,
                    key,
                    key_bits=engine.ranges.key_bits,
                    range_count=range_meta[engine.name],
                )
        self.index = FrozenIndex(  # type: ignore[assignment]
            reader, prefix, depth=len(self.partitioner.partition_names)
        )
        self.actions = FrozenActions(  # type: ignore[assignment]
            reader, prefix, self._store, live=layout.action_live
        )
        self._miss_position = layout.miss_position
        self._frozen = True
        # Inserted last on purpose: attribute dicts drop references in
        # insertion order at teardown, so the views above die before the
        # attachment cache (and its SharedMemory handles) do.
        self._attachments = attachments

    # -- read paths ----------------------------------------------------

    def __len__(self) -> int:
        if self._frozen:
            return self._store.count
        return super().__len__()

    def __iter__(self) -> Any:
        if self._frozen:
            return iter(self._store.all_entries())
        return super().__iter__()

    def entries_snapshot(self) -> tuple[Any, ...]:
        if self._frozen:
            return self._store.all_entries()
        return super().entries_snapshot()

    @property
    def table_miss_entry(self) -> Any:
        if self._frozen:
            if self._miss_position is None:
                return None
            return self._store.entry_at(self._miss_position)
        return OpenFlowLookupTable.table_miss_entry.fget(self)  # type: ignore[attr-defined]

    def entry_position(self, entry: Any) -> int | None:
        """Sealed position of a rehydrated entry (None once thawed).

        The stats-return fast path: while frozen, the sealed order *is*
        the parent's pinned ``entries_snapshot()`` order (any mutation
        would have thawed this table first), so entry refs need no
        snapshot rebuild.
        """
        if self._frozen:
            return self._store.position_of(entry)
        return None

    # -- mutation paths (thaw first) -----------------------------------

    def add(self, entry: Any) -> None:
        if self._frozen:
            self._thaw()
        super().add(entry)

    def remove(self, match: Any, priority: int) -> bool:
        if self._frozen:
            self._thaw()
        return super().remove(match, priority)

    def remove_where(self, predicate: Any) -> int:
        if self._frozen:
            self._thaw()
        return super().remove_where(predicate)

    def _thaw(self) -> None:
        """Replace the frozen state with a private eager replica.

        Replaying the sealed entries in installation order reproduces the
        exact table a spec-built worker would hold: entry ``_seq`` values
        survive pickling, so every index tiebreak lands identically.
        """
        entries = self._store.all_entries()
        attachments = self._attachments
        lookup_count = self.lookup_count
        matched_count = self.matched_count
        rebuilt = OpenFlowLookupTable(
            self.field_names, table_id=self.table_id, config=self.config
        )
        for entry in entries:
            rebuilt.add(entry)
        self.__dict__.clear()
        self.__dict__.update(rebuilt.__dict__)
        self.lookup_count = lookup_count
        self.matched_count = matched_count
        self._frozen = False
        # Keep the mapping alive: sibling tables of this pipeline may
        # still be frozen on the same block, and an early unmap of a
        # superseded generation is the one lifecycle hazard here.
        self._attachments = attachments


# ----------------------------------------------------------------------
# sealing (parent side)
# ----------------------------------------------------------------------


class SharedRuleState:
    """Owner of one sealed generation of shared rule state.

    ``seal`` walks the *live* authoritative tables (always at a
    mutation-log fold point, under the runner's mutation lock) into one
    shared block and returns a state whose :attr:`spec` is the input
    spec with lookup-table entries stripped (they live in the block) and
    the attach layout threaded through ``PipelineSpec.shared``.

    ``close`` unlinks the block through the standard finalize guard —
    attached workers keep valid mappings; nothing survives in
    ``/dev/shm``.
    """

    def __init__(
        self, block: SharedBlock, layout: SharedRuleLayout, spec: Any
    ) -> None:
        self._block = block
        self.layout = layout
        self.spec = spec

    @classmethod
    def seal(cls, pipeline: Any, spec: Any) -> SharedRuleState:
        """Freeze ``pipeline``'s lookup tables as described by ``spec``.

        ``spec`` must be a ``PipelineSpec`` snapshot of ``pipeline`` taken
        at the current instant: its per-table entry tuples are the same
        objects, in the same installation order, as the live tables
        iterate — sealed entry positions are defined by that order.
        """
        writer = BlockWriter()
        layouts = []
        for table_spec in spec.tables:
            if table_spec.kind != "lookup":
                continue
            table = pipeline.table(table_spec.table_id)
            layouts.append(_seal_table(writer, table, table_spec.entries))
        # The recognisable name is for /dev/shm forensics; the per-seal
        # counter keeps concurrent states (several runners, or the old
        # and new generation during a re-seal) from ever sharing a name
        # — SharedBlock reclaims same-name leftovers on FileExistsError,
        # which must only ever hit truly stale segments.
        block = SharedBlock(
            name_prefix=f"reprorules{os.getpid()}x{next(_SEAL_IDS)}"
        )
        block.ensure(writer.nbytes)
        segments = writer.write_to(block.buf)
        layout = SharedRuleLayout(
            block_name=block.name,
            segments=segments,
            tables=tuple(layouts),
        )
        shared_spec = replace(
            spec,
            tables=tuple(
                replace(t, entries=()) if t.kind == "lookup" else t
                for t in spec.tables
            ),
            shared=layout,
        )
        return cls(block=block, layout=layout, spec=shared_spec)

    def close(self) -> None:
        self._block.close()


def _seal_table(writer: BlockWriter, table: Any, entries: tuple[Any, ...]) -> FrozenTableLayout:
    prefix = f"t{table.table_id}"
    positions = {id(entry): pos for pos, entry in enumerate(entries)}

    blobs = [pickle.dumps(entry) for entry in entries]
    offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum(
        np.array([len(blob) for blob in blobs], dtype=np.int64),
        out=offsets[1:],
    )
    writer.put(f"{prefix}/entries/offsets", offsets)
    writer.put(
        f"{prefix}/entries/blob",
        np.frombuffer(b"".join(blobs), dtype=np.uint8),
    )
    miss_position = next(
        (pos for pos, entry in enumerate(entries) if entry.is_table_miss),
        None,
    )

    trie_meta: list[tuple[str, int, int]] = []
    range_meta: list[tuple[str, int]] = []
    for engine in table._flat_engines:
        key = f"{prefix}/{engine.name}"
        if isinstance(engine, TriePartitionEngine):
            default, count = _seal_trie(writer, key, engine.trie)
            trie_meta.append((engine.name, default, count))
        elif isinstance(engine, LutPartitionEngine):
            _seal_lut(writer, key, engine.lut)
        elif isinstance(engine, RangePartitionEngine):
            range_meta.append((engine.name, _seal_range(writer, key, engine.ranges)))

    _seal_index(writer, prefix, table.index)

    slots = np.full(table.actions.allocated_slots, -1, dtype=np.int64)
    for action_entry in table.actions:
        slots[action_entry.index] = positions[id(action_entry.flow_entry)]
    writer.put(f"{prefix}/actions/positions", slots)

    return FrozenTableLayout(
        table_id=table.table_id,
        entry_count=len(entries),
        miss_position=miss_position,
        tries=tuple(trie_meta),
        ranges=tuple(range_meta),
        index_len=len(table.index),
        action_live=len(table.actions),
    )


def _seal_trie(writer: BlockWriter, key: str, trie: Any) -> tuple[int, int]:
    """Write one trie's prefix tables and level maps; return (default, len)."""
    default = NO_LABEL
    buckets: dict[int, list[tuple[int, int]]] = {
        length: [] for length in range(1, trie.key_bits + 1)
    }
    for value, length, label in trie.entries():
        if length == 0:
            default = label
            continue
        buckets[length].append((value, label))
    for length, pairs in buckets.items():
        pairs.sort()
        writer.put(
            f"{key}/trie/len{length}/values",
            np.array([value for value, _ in pairs], dtype=np.uint64),
        )
        writer.put(
            f"{key}/trie/len{length}/labels",
            np.array([label for _, label in pairs], dtype=np.int64),
        )
    for level in range(trie.level_count):
        records = sorted(trie.level_records(level))
        writer.put(
            f"{key}/trie/lvl{level}/paths",
            np.array([path for path, _ in records], dtype=np.uint64),
        )
        writer.put(
            f"{key}/trie/lvl{level}/child",
            np.array(
                [1 if has_child else 0 for _, has_child in records],
                dtype=np.uint8,
            ),
        )
    return default, len(trie)


def _seal_lut(writer: BlockWriter, key: str, lut: Any) -> None:
    items = sorted(lut.items())
    writer.put(
        f"{key}/lut/keys",
        np.array([value for value, _ in items], dtype=np.uint64),
    )
    writer.put(
        f"{key}/lut/labels",
        np.array([label for _, label in items], dtype=np.int64),
    )


def _seal_range(writer: BlockWriter, key: str, ranges: Any) -> int:
    bounds, interval_labels = ranges.elementary_intervals()
    offsets = np.zeros(len(interval_labels) + 1, dtype=np.int64)
    np.cumsum(
        np.array([len(labels) for labels in interval_labels], dtype=np.int64),
        out=offsets[1:],
    )
    flat = [label for labels in interval_labels for label in labels]
    writer.put(f"{key}/range/bounds", np.array(bounds, dtype=np.uint64))
    writer.put(f"{key}/range/offsets", offsets)
    writer.put(f"{key}/range/labels", np.array(flat, dtype=np.int64))
    return len(ranges)


def _seal_index(writer: BlockWriter, prefix: str, index: Any) -> None:
    depth = len(index.partition_names)
    for k in range(depth - 1):
        hashes = sorted(_tuple_hash(t) for t in index.prefix_tuples(k))
        writer.put(
            f"{prefix}/index/d{k}", np.array(hashes, dtype=np.uint64)
        )
    rows = sorted(
        ((_tuple_hash(labels), labels, ref) for labels, ref in index.best_refs()),
        key=lambda row: (row[0], row[1]),
    )
    writer.put(
        f"{prefix}/index/final",
        np.array([h for h, _, _ in rows], dtype=np.uint64),
    )
    for j in range(depth):
        writer.put(
            f"{prefix}/index/key{j}",
            np.array([labels[j] for _, labels, _ in rows], dtype=np.int64),
        )
    for column, pick in (
        ("priority", 0),
        ("specificity", 1),
        ("sequence", 2),
        ("action", 3),
    ):
        writer.put(
            f"{prefix}/index/{column}",
            np.array([ref[pick] for _, _, ref in rows], dtype=np.int64),
        )


# ----------------------------------------------------------------------
# attaching (worker side)
# ----------------------------------------------------------------------


def attach_shared_tables(spec: Any) -> list[Any]:
    """Build the table list for a spec carrying a ``SharedRuleLayout``.

    Lookup tables described by the layout attach as
    :class:`FrozenLookupTable`; everything else (behavioural flow
    tables, lookup tables sealed empty of a layout — there are none
    today, but the fallback keeps the contract local) builds eagerly
    from its spec.
    """
    layout: SharedRuleLayout = spec.shared
    attachments = BlockAttachments()
    reader = BlockReader(attachments.buf(layout.block_name), layout.segments)
    tables: list[Any] = []
    for table_spec in spec.tables:
        table_layout = (
            layout.table_layout(table_spec.table_id)
            if table_spec.kind == "lookup"
            else None
        )
        if table_layout is None:
            tables.append(table_spec.build(spec.config))
        else:
            tables.append(
                FrozenLookupTable(
                    table_spec.field_names,
                    table_layout,
                    reader,
                    attachments,
                    config=spec.config,
                )
            )
    return tables
