"""Batched, cached, sharded high-throughput runtime over the lookup
architecture.

The paper's decomposition architecture fixes the *per-lookup* memory
cost; this package fixes the *per-packet software overhead* so the
reproduction can serve traffic-scale workloads.  Four layers compose:

**Batching model.**  :class:`~repro.runtime.batch.BatchPipeline` drives
packet batches through the multi-table pipeline in waves: all packets
currently at the same table are looked up together via the tables'
``search_batch`` / ``lookup_batch`` APIs (numpy-vectorized header
partitioning, per-batch memoization so duplicate partition keys and
duplicate full header keys are each resolved once), while per-packet
instruction execution reuses the scalar pipeline's machinery unchanged.
Goto-Table is forward-only, so a batch visits each table at most once.

**Two-tier cache hierarchy (microflow → megaflow).**  Mirroring the
Open vSwitch fast path:

- *Tier 2 — per-table microflow.*  A
  :class:`~repro.runtime.cache.MicroflowCache` (LRU, exact-match on the
  table's field tuple) fronts each table.  Invalidation is per-entry
  *revalidation*: records carry the table's ``version`` mutation-counter
  stamp and a stale record re-resolves in place on its next access, so
  a flow-mod no longer evicts the whole working set.
- *Tier 1 — pipeline-level megaflow.*  A
  :class:`~repro.runtime.megaflow.MegaflowCache` keys one entry per
  *traffic aggregate*: during a full traversal a
  :class:`~repro.runtime.megaflow.MegaflowRecorder` accumulates exactly
  the header bits each visited table consulted (trie walk depth,
  empty-structure elision, predicate masks) minus rewritten/derived
  fields; a hit replays the complete
  :class:`~repro.openflow.pipeline.PipelineResult` and skips every
  table.  Entries are tagged ``(table_id, version)`` per visited table
  and invalidate *incrementally* — a rule change in one table only
  kills the aggregates whose traversal consulted that table.

**Sharded parallel execution.**
:class:`~repro.runtime.shard.ShardedBatchPipeline` partitions batches by
a stable hash of the megaflow key across ``multiprocessing`` workers,
each owning a pipeline replica rebuilt from a picklable
:class:`~repro.runtime.shard.PipelineSpec` snapshot plus its own cache
stack.  Consistency uses a mutation-log catch-up protocol: flow-mods go
through the runner's logging ``pipeline`` facade; the parent snapshots
the log length once per batch and every worker replays the suffix up to
that snapshot before classifying its sub-batch, so the whole batch sees
one table state and results are bitwise-identical to the single-process
runner.

**Shared-memory transport and stats return.**  Batches cross to the
workers through :mod:`repro.runtime.transport` (the default
``transport="shm"``): the parent encodes each batch *once* into a
columnar :class:`~repro.runtime.transport.PacketBlockCodec`
shared-memory block (one ``uint64`` lane per 64 field bits, presence
bytes, identical packet dicts encoded once), workers read their member
rows in place and write :class:`~repro.openflow.pipeline.PipelineResult`
columns into worker-owned blocks; only mutation suffixes, block names
and layouts cross the pipes.  Replies carry per-entry
:class:`~repro.runtime.transport.FlowStatsDelta` packet/byte counts
keyed by ``(table_id, position)`` entry refs
(:class:`~repro.runtime.transport.EntryIndex`), which the parent folds
back into its authoritative flow entries — flow stats under sharding
match the single-process run exactly.  ``transport="pickle"`` keeps the
whole-payload pickling path for comparison benchmarks.

**Pipelined dispatch/collect.**  The transport is double-buffered: each
direction keeps a ring of ``depth`` shared blocks, so
:meth:`~repro.runtime.shard.ShardedBatchPipeline.process_batches` (and
:func:`~repro.runtime.batch.run_workload`, which uses it) encodes and
dispatches batch N+1 while the workers still classify batch N.  Every
submitted batch snapshots the mutation-log length and pinned entry
order at submission, so pipelined streams replay the exact serial
sequence of table states — results and flow stats stay
bitwise-identical to the lockstep and single-process runners.

**Frame lengths and byte accounting.**  Packets carry an on-wire
``frame_len`` (:data:`repro.packet.headers.FRAME_LEN_FIELD`): switch
metadata outside every match, cache key and megaflow mask, threaded
through every lookup path's ``FlowStats.record`` and the transport's
stats deltas — per-entry byte counters and
:attr:`~repro.runtime.batch.BatchStats.flow_bytes` count real traffic
volume, and the benches report bits/sec.

**Columnar fast path.**  The hot tiers above also run end-to-end on the
transport's columnar representation, without per-packet dicts.  A
:class:`~repro.packet.batch.PacketBatch` holds a batch as uint64 lanes
plus presence bytes over distinct *rows* (duplicate packets share one
row through a ``pick`` indirection); scenario builders emit it directly
(``columnar=True`` /
:func:`~repro.runtime.scenarios.columnar_workload`), and
:func:`~repro.runtime.batch.run_workload` slices events into views that
share each event's vectorized key memos.  The microflow tier
(:meth:`~repro.runtime.cache.MicroflowCache.lookup_batch_columnar`)
hashes all schema lanes per row in one numpy pass and verifies each
hash hit against exact packed key bytes (collisions degrade to misses,
never wrong results); the megaflow tier
(:meth:`~repro.runtime.megaflow.MegaflowCache.probe_rows`) applies each
cached wildcard mask as vectorized ``lanes & mask`` compares.  Hits
replay without dict materialisation — matched-entry stats are credited
in aggregate from the ``frame_len`` lane, and a replaying
``run_workload`` with ``keep_results=False`` never builds
``PipelineResult`` objects at all.  **Dict materialisation still
happens** for: packets that miss both cache tiers (their rows
materialise lazily, one distinct row at a time, aliased across
duplicates, and walk the unchanged wave machinery), megaflow-miss
traversals installing new aggregates, and any caller that asks for
materialised results (``keep_results=True`` or ``process_batch``'s
return value — built as packet fields + recorded rewrite overrides,
bitwise-identical to the dict path, which the differential property
harness proves across the whole scenario catalog).

**Decode-free worker protocol.**  With a columnar submission
(``PacketBatch`` through the shm transport) the control message carries
a ``columnar`` flag; the worker *attaches* to the request block's
columns in place (:meth:`~repro.runtime.transport.PacketBlockCodec.attach`)
instead of decoding its member rows, classifies via
:meth:`~repro.runtime.batch.BatchPipeline.classify_columnar`, and
encodes its reply straight from the megaflow templates
(:func:`~repro.runtime.transport.encode_outcomes`): flags, ports,
matched-entry refs and action vocabularies come from the cached
aggregate, rewrite overrides from the entry's recorded override dict,
frame lengths from the ``frame_len`` lane — so the shm decode step
disappears from the common (cache-hit) case and only miss rows are
ever materialised worker-side.  The parent's collect path is unchanged
and resolves replies against its own pinned tables.

**Out-of-order collection.**  The in-flight window is keyed by ``seq``:
:meth:`~repro.runtime.shard.ShardedBatchPipeline.collect_batch` takes
``seq=`` to complete any submitted batch (replies from other batches
park in a buffer; per-worker pipes deliver in submission order), and
:meth:`~repro.runtime.shard.ShardedBatchPipeline.collect_any` completes
whichever batch lands first — a stalled shard delays only the batches
actually assigned to it.  Ring slots still guard reuse: a submission
whose slot is held by an uncollected batch raises.

**Fault tolerance.**  Workers are mortal; results are not.  Every
parent-side wait is process-sentinel-aware and (optionally)
deadline-bounded, classifying failures as *crash* (the process died —
sentinel fired or the pipe broke), *wedge* (alive but silent past the
:class:`~repro.runtime.supervise.SupervisionConfig` deadline —
escalated to a kill), or *poison batch* (the same batch killed a
worker twice — classified in-process instead of replayed a third
time).  Recovery rides the pipelining invariants: each submitted batch
pinned its mutation-log prefix and its request block is parent-owned
and immutable in flight, so a replacement worker rebuilt from the
current :class:`~repro.runtime.shard.PipelineSpec` *replays* every
lost seq (a re-send, never a re-encode) and produces bitwise-identical
results, stats and flow deltas.  Each worker carries a restart budget;
past it the shard degrades per ``fallback`` — in-process
classification on a parent-side replica (``"inline"``), rerouting to
survivors (``"redistribute"``), or
:class:`~repro.runtime.supervise.WorkerCrashError` (``"raise"``).
Worker-owned shm blocks are announced to a parent-side registry
*before* creation, so a corpse's segments are always unlinkable;
orphaned workers notice the parent's death themselves and exit.
:mod:`repro.runtime.faults` injects deterministic, seeded
kill/hang/delay faults at named worker-loop steps for chaos testing.

**Flow-entry lifecycle on a virtual clock.**  Entries carry OpenFlow
``idle_timeout`` / ``hard_timeout`` semantics against a
:class:`~repro.runtime.lifecycle.VirtualClock` that only moves via
``("advance", dt)`` workload events — never wall time (the
``wall-clock-ban`` lint rule keeps the whole runtime clock-free), so
every runner path observes the identical tick sequence and lifecycle
behaviour replays bit-for-bit.  ``advance_clock`` runs a *vectorized*
expiry sweep (:class:`~repro.runtime.lifecycle.LifecycleSweeper`):
per-table numpy deadline lanes, idle touches detected from packet-count
deltas (no hot-path stamping — credit sites are untouched, which is
what keeps aggregated and per-packet crediting bitwise-identical), POX
``flow_table.py`` expiry semantics (strict ``>``, hard-before-idle
precedence), and a parent-side ledger of
:class:`~repro.runtime.lifecycle.FlowRemoved` events carrying final
packet/byte counters.  Expired entries leave through the tables'
ordinary remove path, so version counters bump and both cache tiers
revalidate exactly as for explicit uninstalls; in the sharded runtime
the parent alone decides expiry and logs each one as an
``ExpireMutation`` — workers never consult a clock, and replay recovery
applies expiries like any other logged removal.

**Open-loop streaming front-end.**  Every layer above is closed-loop —
callers feed batches as fast as the pipeline drains them.
:mod:`repro.runtime.streaming` adds the open-loop story: seeded
Poisson/bursty/diurnal :class:`~repro.runtime.streaming.ArrivalSchedule`
arrival processes on the virtual clock (replayable bit-for-bit, no wall
time), a hard-capacity
:class:`~repro.runtime.streaming.AdmissionQueue` with tail-drop and
deadline-drop shed policies (every queue in the runtime is
capacity-bounded — the ``bounded-queue`` lint rule enforces it),
size-or-deadline batch formation feeding the pipelined shard transport
behind a bounded in-flight window (backpressure instead of queueing),
and a graduated degradation ladder under sustained overload: shrink the
formation deadline, bypass megaflow capture (``megaflow_bypass`` —
observationally invisible), then shed at admission.
:func:`~repro.runtime.streaming.run_stream` self-checks the
conservation law ``admitted == completed + shed`` (packets and bytes)
and reports per-packet enqueue→completion latencies in virtual ticks
with p50/p99/p999 summaries plus the deterministic shed ledger — the
same report, bit-for-bit, on single-process, sharded and columnar
paths, with or without worker crashes.

**Scenario catalog.**  :mod:`repro.runtime.scenarios` builds replayable
:class:`~repro.runtime.batch.Workload` objects from a rule set —
``uniform``, ``uniform-wide`` (per-packet noise in an unconstrained
schema field: microflow-adversarial, megaflow-friendly), ``zipf``,
``bursty``, ``churn``, and ``timeout-churn`` (short-lived mice expiring
under elephant traffic via clock sweeps), each with ``frame_len``
distribution and ``advance=`` clock-cadence knobs — replayed by
:func:`~repro.runtime.batch.run_workload`.
``benchmarks/bench_throughput.py`` reports packets/sec and bits/sec per
lookup path over these scenarios and records them in
``BENCH_throughput.json``; ``benchmarks/check_regression.py`` gates CI
on the recorded speedup ratios.
"""

from repro.packet.batch import PacketBatch
from repro.runtime.batch import (
    BatchPipeline,
    BatchStats,
    ColumnarOutcomes,
    Workload,
    WorkloadStats,
    run_workload,
)
from repro.runtime.cache import DEFAULT_CAPACITY, MicroflowCache
from repro.runtime.lifecycle import (
    FlowRemoved,
    LifecycleSweeper,
    VirtualClock,
)
from repro.runtime.megaflow import (
    DEFAULT_MEGAFLOW_CAPACITY,
    MegaflowCache,
    MegaflowRecorder,
)
from repro.runtime.scenarios import (
    SCENARIOS,
    bursty_workload,
    churn_workload,
    columnar_workload,
    timeout_churn_workload,
    uniform_wide_workload,
    uniform_workload,
    widen_rule_set,
    with_clock_advances,
    zipf_weights,
    zipf_workload,
)
from repro.runtime.streaming import (
    ARRIVALS,
    AdmissionQueue,
    ArrivalSchedule,
    ShedRecord,
    StreamConfig,
    StreamReport,
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
    run_stream,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.shard import (
    PipelineSpec,
    ShardedBatchPipeline,
    TableSpec,
)
from repro.runtime.supervise import (
    PoisonBatchError,
    SupervisionConfig,
    SupervisionStats,
    WorkerCrashError,
    WorkerSupervisor,
)
from repro.runtime.transport import (
    EntryIndex,
    FlowStatsDelta,
    PacketBlockCodec,
)

__all__ = [
    "ARRIVALS",
    "AdmissionQueue",
    "ArrivalSchedule",
    "BatchPipeline",
    "BatchStats",
    "ColumnarOutcomes",
    "DEFAULT_CAPACITY",
    "DEFAULT_MEGAFLOW_CAPACITY",
    "EntryIndex",
    "FaultPlan",
    "FaultSpec",
    "FlowRemoved",
    "FlowStatsDelta",
    "LifecycleSweeper",
    "MegaflowCache",
    "MegaflowRecorder",
    "MicroflowCache",
    "PacketBatch",
    "PacketBlockCodec",
    "PipelineSpec",
    "PoisonBatchError",
    "SCENARIOS",
    "ShardedBatchPipeline",
    "ShedRecord",
    "StreamConfig",
    "StreamReport",
    "SupervisionConfig",
    "SupervisionStats",
    "TableSpec",
    "VirtualClock",
    "WorkerCrashError",
    "WorkerSupervisor",
    "Workload",
    "WorkloadStats",
    "bursty_arrivals",
    "bursty_workload",
    "churn_workload",
    "columnar_workload",
    "diurnal_arrivals",
    "poisson_arrivals",
    "run_stream",
    "run_workload",
    "timeout_churn_workload",
    "uniform_wide_workload",
    "uniform_workload",
    "widen_rule_set",
    "with_clock_advances",
    "zipf_weights",
    "zipf_workload",
]
