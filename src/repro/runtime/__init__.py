"""Batched, cached, sharded high-throughput runtime over the lookup
architecture.

The paper's decomposition architecture fixes the *per-lookup* memory
cost; this package fixes the *per-packet software overhead* so the
reproduction can serve traffic-scale workloads.  Four layers compose:

**Batching model.**  :class:`~repro.runtime.batch.BatchPipeline` drives
packet batches through the multi-table pipeline in waves: all packets
currently at the same table are looked up together via the tables'
``search_batch`` / ``lookup_batch`` APIs (numpy-vectorized header
partitioning, per-batch memoization so duplicate partition keys and
duplicate full header keys are each resolved once), while per-packet
instruction execution reuses the scalar pipeline's machinery unchanged.
Goto-Table is forward-only, so a batch visits each table at most once.

**Two-tier cache hierarchy (microflow → megaflow).**  Mirroring the
Open vSwitch fast path:

- *Tier 2 — per-table microflow.*  A
  :class:`~repro.runtime.cache.MicroflowCache` (LRU, exact-match on the
  table's field tuple) fronts each table.  Invalidation is per-entry
  *revalidation*: records carry the table's ``version`` mutation-counter
  stamp and a stale record re-resolves in place on its next access, so
  a flow-mod no longer evicts the whole working set.
- *Tier 1 — pipeline-level megaflow.*  A
  :class:`~repro.runtime.megaflow.MegaflowCache` keys one entry per
  *traffic aggregate*: during a full traversal a
  :class:`~repro.runtime.megaflow.MegaflowRecorder` accumulates exactly
  the header bits each visited table consulted (trie walk depth,
  empty-structure elision, predicate masks) minus rewritten/derived
  fields; a hit replays the complete
  :class:`~repro.openflow.pipeline.PipelineResult` and skips every
  table.  Entries are tagged ``(table_id, version)`` per visited table
  and invalidate *incrementally* — a rule change in one table only
  kills the aggregates whose traversal consulted that table.

**Sharded parallel execution.**
:class:`~repro.runtime.shard.ShardedBatchPipeline` partitions batches by
a stable hash of the megaflow key across ``multiprocessing`` workers,
each owning a pipeline replica rebuilt from a picklable
:class:`~repro.runtime.shard.PipelineSpec` snapshot plus its own cache
stack.  Consistency uses a mutation-log catch-up protocol: flow-mods go
through the runner's logging ``pipeline`` facade; the parent snapshots
the log length once per batch and every worker replays the suffix up to
that snapshot before classifying its sub-batch, so the whole batch sees
one table state and results are bitwise-identical to the single-process
runner.

**Shared-memory transport and stats return.**  Batches cross to the
workers through :mod:`repro.runtime.transport` (the default
``transport="shm"``): the parent encodes each batch *once* into a
columnar :class:`~repro.runtime.transport.PacketBlockCodec`
shared-memory block (one ``uint64`` lane per 64 field bits, presence
bytes, identical packet dicts encoded once), workers read their member
rows in place and write :class:`~repro.openflow.pipeline.PipelineResult`
columns into worker-owned blocks; only mutation suffixes, block names
and layouts cross the pipes.  Replies carry per-entry
:class:`~repro.runtime.transport.FlowStatsDelta` packet/byte counts
keyed by ``(table_id, position)`` entry refs
(:class:`~repro.runtime.transport.EntryIndex`), which the parent folds
back into its authoritative flow entries — flow stats under sharding
match the single-process run exactly.  ``transport="pickle"`` keeps the
whole-payload pickling path for comparison benchmarks.

**Pipelined dispatch/collect.**  The transport is double-buffered: each
direction keeps a ring of ``depth`` shared blocks, so
:meth:`~repro.runtime.shard.ShardedBatchPipeline.process_batches` (and
:func:`~repro.runtime.batch.run_workload`, which uses it) encodes and
dispatches batch N+1 while the workers still classify batch N.  Every
submitted batch snapshots the mutation-log length and pinned entry
order at submission, so pipelined streams replay the exact serial
sequence of table states — results and flow stats stay
bitwise-identical to the lockstep and single-process runners.

**Frame lengths and byte accounting.**  Packets carry an on-wire
``frame_len`` (:data:`repro.packet.headers.FRAME_LEN_FIELD`): switch
metadata outside every match, cache key and megaflow mask, threaded
through every lookup path's ``FlowStats.record`` and the transport's
stats deltas — per-entry byte counters and
:attr:`~repro.runtime.batch.BatchStats.flow_bytes` count real traffic
volume, and the benches report bits/sec.

**Scenario catalog.**  :mod:`repro.runtime.scenarios` builds replayable
:class:`~repro.runtime.batch.Workload` objects from a rule set —
``uniform``, ``uniform-wide`` (per-packet noise in an unconstrained
schema field: microflow-adversarial, megaflow-friendly), ``zipf``,
``bursty``, and ``churn``, each with a ``frame_len`` distribution knob
(fixed / IMIX / heavy-tailed / none) — replayed by
:func:`~repro.runtime.batch.run_workload`.
``benchmarks/bench_throughput.py`` reports packets/sec and bits/sec per
lookup path over these scenarios and records them in
``BENCH_throughput.json``; ``benchmarks/check_regression.py`` gates CI
on the recorded speedup ratios.
"""

from repro.runtime.batch import (
    BatchPipeline,
    BatchStats,
    Workload,
    WorkloadStats,
    run_workload,
)
from repro.runtime.cache import DEFAULT_CAPACITY, MicroflowCache
from repro.runtime.megaflow import (
    DEFAULT_MEGAFLOW_CAPACITY,
    MegaflowCache,
    MegaflowRecorder,
)
from repro.runtime.scenarios import (
    SCENARIOS,
    bursty_workload,
    churn_workload,
    uniform_wide_workload,
    uniform_workload,
    widen_rule_set,
    zipf_weights,
    zipf_workload,
)
from repro.runtime.shard import (
    PipelineSpec,
    ShardedBatchPipeline,
    TableSpec,
)
from repro.runtime.transport import (
    EntryIndex,
    FlowStatsDelta,
    PacketBlockCodec,
)

__all__ = [
    "BatchPipeline",
    "BatchStats",
    "DEFAULT_CAPACITY",
    "DEFAULT_MEGAFLOW_CAPACITY",
    "EntryIndex",
    "FlowStatsDelta",
    "MegaflowCache",
    "MegaflowRecorder",
    "MicroflowCache",
    "PacketBlockCodec",
    "PipelineSpec",
    "SCENARIOS",
    "ShardedBatchPipeline",
    "TableSpec",
    "Workload",
    "WorkloadStats",
    "bursty_workload",
    "churn_workload",
    "run_workload",
    "uniform_wide_workload",
    "uniform_workload",
    "widen_rule_set",
    "zipf_weights",
    "zipf_workload",
]
