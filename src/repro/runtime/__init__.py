"""Batched, cached high-throughput runtime over the lookup architecture.

The paper's decomposition architecture fixes the *per-lookup* memory
cost; this package fixes the *per-packet software overhead* so the
reproduction can serve traffic-scale workloads.  Three layers compose:

**Batching model.**  :class:`~repro.runtime.batch.BatchPipeline` drives
packet batches through the multi-table pipeline in waves: all packets
currently at the same table are looked up together via the tables'
``search_batch`` / ``lookup_batch`` APIs (numpy-vectorized header
partitioning, per-batch memoization so duplicate partition keys and
duplicate full header keys are each resolved once), while per-packet
instruction execution reuses the scalar pipeline's machinery unchanged.
Goto-Table is forward-only, so a batch visits each table at most once.

**Microflow caching.**  A :class:`~repro.runtime.cache.MicroflowCache`
(LRU, exact-match on the table's field tuple — the Open vSwitch
fast-path pattern) sits in front of each table.  Invalidation rule: any
``add`` / ``remove`` / ``remove_where`` may reclassify arbitrary cached
microflows, so the cache flushes wholesale on the next lookup after a
mutation, detected via the table's ``version`` counter.  Misses are
cached (negatively) under the same rule.

**Scenario catalog.**  :mod:`repro.runtime.scenarios` builds replayable
:class:`~repro.runtime.batch.Workload` objects from a rule set —
``uniform`` (cache-adversarial), ``zipf`` (heavy-tailed popularity),
``bursty`` (packet trains), and ``churn`` (traffic interleaved with rule
uninstall/reinstall cycles) — replayed by
:func:`~repro.runtime.batch.run_workload`.  ``benchmarks/bench_throughput.py``
reports packets/sec for the scan, decomposition, batched, and
cached-batch paths over these scenarios.
"""

from repro.runtime.batch import (
    BatchPipeline,
    BatchStats,
    Workload,
    WorkloadStats,
    run_workload,
)
from repro.runtime.cache import DEFAULT_CAPACITY, MicroflowCache
from repro.runtime.scenarios import (
    SCENARIOS,
    bursty_workload,
    churn_workload,
    uniform_workload,
    zipf_weights,
    zipf_workload,
)

__all__ = [
    "BatchPipeline",
    "BatchStats",
    "DEFAULT_CAPACITY",
    "MicroflowCache",
    "SCENARIOS",
    "Workload",
    "WorkloadStats",
    "bursty_workload",
    "churn_workload",
    "run_workload",
    "uniform_workload",
    "zipf_weights",
    "zipf_workload",
]
