"""Deterministic fault injection for the sharded runtime.

Chaos testing is only useful when a failing run can be replayed: a
:class:`FaultPlan` is a *picklable, seeded schedule* of worker failures
— kill/hang/delay worker W when it reaches step S of batch seq Q —
threaded through worker spawn, so the same plan produces the same
crash at the same instruction boundary on every run.

The instrumented steps mirror the worker serve loop
(:func:`repro.runtime.shard._worker_main`):

- ``"after-receive"`` — the shard-group message has been read off the
  pipe but nothing has been applied yet;
- ``"mid-classify"`` — the mutation suffix is applied, classification
  has not produced results;
- ``"after-stats"`` — results and the flow-stats delta exist worker-side
  but the reply block has not been written;
- ``"before-reply"`` — everything including the response block is
  written; only the control reply has not been sent.

Together the four boundaries cover every distinct partial-progress
state a crash can leave behind, which is exactly what the parent's
replay recovery must be indifferent to.

Actions:

- ``"crash"`` — ``SIGKILL`` the worker process (no cleanup runs, the
  worst case the supervisor must handle);
- ``"hang"`` — sleep far past any deadline, modelling a wedged worker
  the parent must detect and escalate to a kill;
- ``"delay"`` — a short transient stall that must *not* trip recovery.

A plan is consumed worker-side via :meth:`FaultPlan.fire` and pruned
parent-side via :meth:`FaultPlan.pruned` when a replacement worker is
spawned — a non-sticky fault fires once and must not re-fire on the
replayed batch, while a ``sticky`` fault survives pruning and kills the
replacement too, which is how poison batches are simulated.
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

#: Worker-loop boundaries where a fault can fire, in serve order.
STEPS: tuple[str, ...] = (
    "after-receive",
    "mid-classify",
    "after-stats",
    "before-reply",
)

#: What a firing fault does to the worker.
ACTIONS: tuple[str, ...] = ("crash", "hang", "delay")

#: A "hang" sleeps this long — far beyond any test deadline, short
#: enough that a daemon worker leaked by a broken test still dies.
HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure: worker ``worker`` executing batch ``seq``
    fails with ``action`` at step ``step``."""

    worker: int
    seq: int
    step: str
    action: str
    delay: float = 0.01
    #: Sticky faults survive :meth:`FaultPlan.pruned` and so re-fire on
    #: the respawned worker's replay — the poison-batch scenario.
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.step not in STEPS:
            raise ValueError(f"unknown step {self.step!r}; expected {STEPS}")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; expected {ACTIONS}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of :class:`FaultSpec` entries.

    The plan crosses the spawn boundary with the worker and is consulted
    at each instrumented step; matching is exact on
    ``(worker, seq, step)`` so a plan is deterministic by construction —
    randomness enters only through :meth:`seeded`, which derives the
    schedule from an explicit seed.
    """

    specs: tuple[FaultSpec, ...] = field(default=())

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        seqs: Sequence[int],
        steps: Sequence[str] = STEPS,
        action: str = "crash",
        faults: int = 1,
        sticky: bool = False,
    ) -> FaultPlan:
        """A reproducible random plan: ``faults`` distinct
        ``(worker, seq, step)`` picks drawn from ``random.Random(seed)``.
        """
        rng = random.Random(seed)
        picks: set[tuple[int, int, str]] = set()
        while len(picks) < min(faults, workers * len(seqs) * len(steps)):
            picks.add(
                (
                    rng.randrange(workers),
                    seqs[rng.randrange(len(seqs))],
                    steps[rng.randrange(len(steps))],
                )
            )
        specs = tuple(
            FaultSpec(worker=w, seq=q, step=s, action=action, sticky=sticky)
            for w, q, s in sorted(picks)
        )
        return cls(specs=specs)

    def fire(self, worker: int, seq: int, step: str) -> None:
        """Execute any fault scheduled for this worker/seq/step (called
        worker-side at each instrumented boundary)."""
        for spec in self.specs:
            if (spec.worker, spec.seq, spec.step) != (worker, seq, step):
                continue
            if spec.action == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.action == "hang":
                time.sleep(HANG_SECONDS)
            else:
                time.sleep(spec.delay)

    def pruned(self, worker: int, up_to_seq: int) -> FaultPlan:
        """The plan a respawned ``worker`` should run under: non-sticky
        faults for seqs at or below ``up_to_seq`` have fired (workers
        serve their pipe in order) and must not re-fire on replay."""
        kept = tuple(
            spec
            for spec in self.specs
            if spec.sticky
            or spec.worker != worker
            or spec.seq > up_to_seq
        )
        return FaultPlan(specs=kept)

    def __bool__(self) -> bool:
        return bool(self.specs)
