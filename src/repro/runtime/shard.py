"""Sharded multi-process batch runtime.

The per-table wave structure of :class:`~repro.runtime.batch.BatchPipeline`
is embarrassingly parallel across packets, but the CPython interpreter is
not — so :class:`ShardedBatchPipeline` splits each batch across
``multiprocessing`` workers, each owning a full pipeline **replica**
(rebuilt from a picklable :class:`PipelineSpec` snapshot) with its own
microflow/megaflow cache stack.

**Sharding** hashes each packet onto a worker by its megaflow-relevant
key: initially the full sorted field tuple, then — as workers report the
fields their megaflow masks actually constrain — only that consulted
union, so every packet of one traffic aggregate lands on the worker that
already caches its megaflow entry.  Sharding choices never affect
results (any worker classifies any packet identically); they only steer
cache locality.

**Consistency** uses a mutation log: the parent applies every flow-mod
to its authoritative pipeline *and* appends it to an ordered log
(mutations must go through :attr:`ShardedBatchPipeline.pipeline`, a
logging facade with the ``table(id).add/remove`` surface that
:func:`~repro.runtime.batch.run_workload` drives).  Each worker tracks a
log cursor; the parent snapshots the log length **once per batch** and
ships each worker the suffix up to that snapshot, so every worker
classifies the batch at the *same* log position — a mutation landing
mid-batch (e.g. from a controller thread) defers uniformly to the next
batch instead of splitting one batch across two table states — and
replicas stay sequentially consistent with the single-process runner,
results bitwise-identical.

**Transport** is shared-memory by default (``transport="shm"``): the
parent encodes each batch once into a columnar
:class:`~repro.runtime.transport.PacketBlockCodec` block, workers read
their member rows in place and write results into worker-owned blocks,
and only tiny control messages (mutation suffixes, block names, layouts)
cross the pipes.  ``transport="pickle"`` keeps the PR-2 whole-payload
pickling path for comparison benchmarks.  Either way, every reply
carries a :class:`~repro.runtime.transport.FlowStatsDelta` — per-entry
packet/byte counts the parent folds back into its authoritative
:class:`~repro.openflow.flow.FlowEntry` counters — so flow stats match
the single-process run exactly instead of being stranded in replicas.

Workers are spawned lazily on the first batch (``fork`` start method
when available) and torn down via :meth:`close` / context-manager exit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.flow import FlowEntry
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline, PipelineResult
from repro.openflow.table import FlowTable
from repro.runtime.batch import BatchPipeline, BatchStats
from repro.runtime.cache import DEFAULT_CAPACITY
from repro.runtime.transport import (
    BlockAttachments,
    BlockReader,
    BlockWriter,
    EntryIndex,
    FlowStatsDelta,
    PacketBlockCodec,
    SharedBlock,
    decode_results,
    encode_results,
    ensure_resource_tracker,
)

TRANSPORTS = ("shm", "pickle")


# ----------------------------------------------------------------------
# picklable pipeline snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableSpec:
    """Picklable snapshot of one flow table (schema + entries)."""

    kind: str  # "lookup" | "flow"
    table_id: int
    field_names: tuple[str, ...] | None
    entries: tuple[FlowEntry, ...]
    max_entries: int | None = None

    @classmethod
    def snapshot(cls, table) -> "TableSpec":
        if isinstance(table, OpenFlowLookupTable):
            return cls(
                kind="lookup",
                table_id=table.table_id,
                field_names=tuple(table.field_names),
                entries=tuple(table),
            )
        return cls(
            kind="flow",
            table_id=table.table_id,
            field_names=None,
            entries=tuple(table),
            max_entries=getattr(table, "max_entries", None),
        )

    def build(self, config: ArchitectureConfig):
        if self.kind == "lookup":
            assert self.field_names is not None
            table = OpenFlowLookupTable(
                self.field_names, table_id=self.table_id, config=config
            )
        else:
            table = FlowTable(
                table_id=self.table_id, max_entries=self.max_entries
            )
        for entry in self.entries:
            table.add(entry)
        return table


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable snapshot of a whole pipeline, for worker replicas."""

    tables: tuple[TableSpec, ...]
    config: ArchitectureConfig
    miss_policy: str
    architecture: bool

    @classmethod
    def snapshot(cls, pipeline: OpenFlowPipeline) -> "PipelineSpec":
        return cls(
            tables=tuple(TableSpec.snapshot(t) for t in pipeline.tables),
            config=getattr(pipeline, "config", DEFAULT_CONFIG),
            miss_policy=pipeline.miss_policy.value,
            architecture=isinstance(pipeline, MultiTableLookupArchitecture),
        )

    def build(self) -> OpenFlowPipeline:
        tables = [spec.build(self.config) for spec in self.tables]
        if self.architecture:
            return MultiTableLookupArchitecture(tables, config=self.config)
        return OpenFlowPipeline(
            tables=tables, miss_policy=MissPolicy(self.miss_policy)
        )


# ----------------------------------------------------------------------
# mutation-logging facade
# ----------------------------------------------------------------------


class _LoggedTable:
    """Forwards mutations to the authoritative table and logs them.

    Each mutation holds the runner's lock across the table apply *and*
    the log append, and the batch prologue takes the same lock around
    its log-length + entry-order snapshot — so a flow-mod from another
    thread is either entirely before a batch (in its log prefix and its
    pinned order) or entirely after it, never half-visible.
    """

    def __init__(self, table, log: list[tuple], lock: threading.Lock):
        self._table = table
        self._log = log
        self._lock = lock

    def add(self, entry: FlowEntry) -> None:
        with self._lock:
            self._table.add(entry)
            self._log.append(("add", self._table.table_id, entry))

    def remove(self, match, priority: int) -> bool:
        with self._lock:
            removed = self._table.remove(match, priority)
            if removed:
                self._log.append(
                    ("remove", self._table.table_id, match, priority)
                )
            return removed

    def remove_where(self, predicate) -> int:
        # Predicates don't pickle; expand to the concrete removals so the
        # log stays replayable on the workers.
        doomed = [e for e in self._table if predicate(e)]
        for entry in doomed:
            self.remove(entry.match, entry.priority)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self):
        return iter(self._table)

    def __getattr__(self, name: str):
        return getattr(self._table, name)


class _LoggedPipeline:
    """``pipeline``-shaped facade whose mutations reach the log."""

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        log: list[tuple],
        lock: threading.Lock,
    ):
        self._pipeline = pipeline
        self._log = log
        self._lock = lock

    def table(self, table_id: int) -> _LoggedTable:
        return _LoggedTable(
            self._pipeline.table(table_id), self._log, self._lock
        )

    @property
    def tables(self) -> list[_LoggedTable]:
        return [self.table(t.table_id) for t in self._pipeline.tables]

    def install(self, table_id: int, entry: FlowEntry) -> None:
        with self._lock:
            self._pipeline.install(table_id, entry)
            self._log.append(("add", table_id, entry))

    def __len__(self) -> int:
        return len(self._pipeline)

    def __getattr__(self, name: str):
        return getattr(self._pipeline, name)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _apply_mutations(pipeline: OpenFlowPipeline, mutations) -> None:
    for mutation in mutations:
        kind = mutation[0]
        if kind == "add":
            pipeline.table(mutation[1]).add(mutation[2])
        elif kind == "remove":
            pipeline.table(mutation[1]).remove(mutation[2], mutation[3])
        else:  # pragma: no cover - parent only emits the two kinds
            raise ValueError(f"unknown mutation kind {kind!r}")


def _serve_pickle(runner, index, message) -> tuple:
    _, mutations, packets = message
    _apply_mutations(runner.pipeline, mutations)
    results = runner.process_batch(packets)
    delta = FlowStatsDelta.from_results(results, index)
    return (
        "ok",
        results,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )


def _serve_shm(runner, index, codec, request_blocks, response, message) -> tuple:
    # All numpy views over the shared blocks are confined to this frame:
    # they must be garbage before close() can unmap the segments.
    _, mutations, block_name, segments, layout, members_key = message
    _apply_mutations(runner.pipeline, mutations)
    reader = BlockReader(request_blocks.buf(block_name), segments)
    packets = codec.decode(reader, layout, reader.get(members_key))
    results = runner.process_batch(packets)
    writer = BlockWriter()
    result_layout, vocabulary, delta = encode_results(
        writer, results, index, codec, inputs=packets
    )
    response.ensure(writer.nbytes)
    response_segments = writer.write_to(response.buf)
    return (
        "ok",
        response.name,
        response_segments,
        result_layout,
        vocabulary,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )


def _worker_main(conn, spec: PipelineSpec, cache_capacity, megaflow_capacity):
    """Worker loop: apply log suffix, classify sub-batch, reply.

    Speaks both transports (the message tag selects): ``("batch", ...)``
    is the pickle path, ``("shm", ...)`` the shared-memory path.  Either
    reply carries the worker's megaflow mask fields, its stats snapshot
    and the batch's flow-stats delta.
    """
    runner = BatchPipeline(
        spec.build(),
        cache_capacity=cache_capacity,
        megaflow_capacity=megaflow_capacity,
    )
    index = EntryIndex(runner.pipeline)
    codec = PacketBlockCodec()
    request_blocks = BlockAttachments()
    response = SharedBlock()
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                conn.send(_serve_pickle(runner, index, message))
            elif kind == "shm":
                conn.send(
                    _serve_shm(
                        runner, index, codec, request_blocks, response, message
                    )
                )
            elif kind == "close":
                request_blocks.close()
                response.close()
                conn.send(("bye",))
                return
    except (EOFError, KeyboardInterrupt):  # parent went away
        request_blocks.close()
        response.close()
        return


def _mask_fields(runner: BatchPipeline) -> tuple[str, ...]:
    return (
        runner.megaflow.mask_fields() if runner.megaflow is not None else ()
    )


def _stable_hash(items: tuple) -> int:
    """Process-independent FNV-1a over the key's repr (``hash()`` is
    salted per interpreter; sharding should be reproducible)."""
    h = 0xCBF29CE484222325
    for byte in repr(items).encode():
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


# ----------------------------------------------------------------------
# the sharded runner
# ----------------------------------------------------------------------


class ShardedBatchPipeline:
    """Drop-in ``process_batch`` runner fanning batches across workers.

    Args:
        pipeline: the authoritative pipeline.  Snapshot once at
            construction; afterwards mutate **only** through
            :attr:`pipeline` (the logging facade) so replicas catch up.
        workers: process count (default: ``os.cpu_count()``).
        cache_capacity / megaflow_capacity: per-worker cache stack, as
            in :class:`BatchPipeline`.
        shard_fields: optional explicit field names to hash on; when
            omitted, sharding starts on the full field tuple and
            converges onto the megaflow-consulted union the workers
            report.
        transport: ``"shm"`` (columnar shared-memory blocks, the
            default) or ``"pickle"`` (whole payloads through the pipe).
    """

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        workers: int | None = None,
        cache_capacity: int | None = DEFAULT_CAPACITY,
        megaflow_capacity: int | None = None,
        shard_fields: Sequence[str] | None = None,
        transport: str = "shm",
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.transport = transport
        self._authoritative = pipeline
        self._log: list[tuple] = []
        self._mutation_lock = threading.Lock()
        self.pipeline = _LoggedPipeline(
            pipeline, self._log, self._mutation_lock
        )
        self._spec = PipelineSpec.snapshot(pipeline)
        self._cache_capacity = cache_capacity
        self._megaflow_capacity = megaflow_capacity
        self._shard_fields = tuple(shard_fields) if shard_fields else None
        self._learned_fields: set[str] = set()
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._conns: list = []
        self._procs: list = []
        self._codec = PacketBlockCodec()
        self._entry_index = EntryIndex(pipeline)
        self._request = SharedBlock()
        self._responses = BlockAttachments()
        self.packets = 0
        self.batches = 0
        self.matched = 0
        self.sent_to_controller = 0
        self.dropped = 0
        #: Flow-stats deltas merged back from the workers.
        self.flow_packets = 0
        self.flow_bytes = 0

    # -- lifecycle -----------------------------------------------------

    def _ensure_started(self) -> None:
        if self._procs:
            return
        # One resource tracker shared with the forked workers keeps
        # shared-memory accounting warning-free (see transport module).
        ensure_resource_tracker()
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self._spec,
                    self._cache_capacity,
                    self._megaflow_capacity,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def close(self) -> None:
        """Shut every worker down (idempotent).

        The runner stays usable: a later ``process_batch`` respawns
        workers from the construction-time snapshot, so the log cursors
        rewind to zero — fresh replicas must replay the *entire*
        mutation log to catch back up.
        """
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(("close",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._responses.close()
        self._request.close()

    def __enter__(self) -> "ShardedBatchPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- sharding ------------------------------------------------------

    def shard_of(self, packet_fields: Mapping[str, int]) -> int:
        """Worker index for a packet, by megaflow-key hash."""
        names = self._shard_fields
        if names is None and self._learned_fields:
            names = tuple(sorted(self._learned_fields))
        if names:
            key = tuple((n, packet_fields.get(n)) for n in names)
        else:
            key = tuple(sorted(packet_fields.items()))
        return _stable_hash(key) % self.workers

    # -- classification ------------------------------------------------

    def process(self, packet_fields: Mapping[str, int]) -> PipelineResult:
        return self.process_batch([packet_fields])[0]

    def process_batch(
        self, batch: Sequence[Mapping[str, int]]
    ) -> list[PipelineResult]:
        """Classify a batch across the workers; results in input order,
        bitwise-identical to the single-process :class:`BatchPipeline`."""
        self.packets += len(batch)
        self.batches += 1
        if not batch:
            return []
        self._ensure_started()
        # One atomic snapshot per batch, under the mutation lock: the
        # log length (every worker catches up to the same point) and
        # the authoritative entry order (worker entry refs resolve
        # against this, not whatever the tables look like by reply
        # time).  A mutation landing while sub-batches are in flight
        # defers uniformly to the next batch; taking both snapshots
        # inside one critical section keeps them mutually consistent
        # even against a mutator thread.
        with self._mutation_lock:
            log_len = len(self._log)
            pinned = self._entry_index.pin()
        groups: dict[int, list[int]] = {}
        for i, fields in enumerate(batch):
            groups.setdefault(self.shard_of(fields), []).append(i)
        if self.transport == "shm":
            self._send_shm(batch, groups, log_len)
        else:
            self._send_pickle(batch, groups, log_len)
        results: list[PipelineResult] = [None] * len(batch)  # type: ignore[list-item]
        for worker, members in groups.items():
            reply = self._conns[worker].recv()
            assert reply[0] == "ok"
            if self.transport == "shm":
                worker_results, mask_fields, stats, delta = (
                    self._decode_reply(
                        reply, pinned, [batch[i] for i in members]
                    )
                )
            else:
                _, worker_results, mask_fields, stats, delta = reply
            for i, result in zip(members, worker_results):
                results[i] = result
            self._learned_fields.update(mask_fields)
            self._worker_stats[worker] = stats
            merged_packets, merged_bytes = delta.apply(pinned)
            self.flow_packets += merged_packets
            self.flow_bytes += merged_bytes
        for result in results:
            self.matched += bool(result.matched_entries)
            self.sent_to_controller += result.sent_to_controller
            self.dropped += result.dropped
        self._maybe_prune_log(log_len)
        return results

    def _send_pickle(self, batch, groups, log_len: int) -> None:
        for worker, members in groups.items():
            outstanding = self._log[self._cursors[worker] : log_len]
            self._cursors[worker] = log_len
            self._conns[worker].send(
                ("batch", outstanding, [batch[i] for i in members])
            )

    def _send_shm(self, batch, groups, log_len: int) -> None:
        writer = BlockWriter()
        layout = self._codec.encode(writer, batch, "pkt")
        for worker, members in groups.items():
            writer.put(
                f"members/{worker}", np.asarray(members, dtype=np.int64)
            )
        self._request.ensure(writer.nbytes)
        segments = writer.write_to(self._request.buf)
        for worker in groups:
            outstanding = self._log[self._cursors[worker] : log_len]
            self._cursors[worker] = log_len
            self._conns[worker].send(
                (
                    "shm",
                    outstanding,
                    self._request.name,
                    segments,
                    layout,
                    f"members/{worker}",
                )
            )

    def _decode_reply(self, reply, pinned, inputs):
        (
            _,
            block_name,
            segments,
            result_layout,
            vocabulary,
            mask_fields,
            stats,
            delta,
        ) = reply
        reader = BlockReader(self._responses.buf(block_name), segments)
        worker_results = decode_results(
            reader,
            result_layout,
            vocabulary,
            lambda table_id, position: pinned[table_id][position],
            inputs=inputs,
        )
        return worker_results, mask_fields, stats, delta

    def _maybe_prune_log(self, log_len: int) -> None:
        """Bound the mutation log under long churn.

        Once every worker has replayed the whole log, fold the current
        authoritative state into the replica snapshot and drop the log —
        a later respawn (lazy start or close()/reuse) then builds from
        the fresh snapshot instead of replaying history.  Pruning waits
        for full catch-up, so a worker the hash never feeds can delay it;
        steady traffic reaches every worker and keeps the log short.
        """
        if log_len < 1024:
            return
        if any(cursor != log_len for cursor in self._cursors):
            return
        with self._mutation_lock:
            if len(self._log) != log_len:
                return  # a mutator slipped in; prune on a later batch
            self._spec = PipelineSpec.snapshot(self._authoritative)
            self._log.clear()
            self._cursors = [0] * self.workers

    # -- stats ---------------------------------------------------------

    def stats_snapshot(self) -> BatchStats:
        """Parent-side traffic counters merged with the workers' cache,
        megaflow and wave counters (as of each worker's last reply).

        ``flow_packets`` / ``flow_bytes`` come from the parent's own
        merged deltas (authoritative), never the worker snapshots — the
        workers' copies would double-count them.
        """
        stats = BatchStats(
            packets=self.packets,
            batches=self.batches,
            matched=self.matched,
            sent_to_controller=self.sent_to_controller,
            dropped=self.dropped,
            flow_packets=self.flow_packets,
            flow_bytes=self.flow_bytes,
        )
        for worker_stats in self._worker_stats:
            stats.cache_hits += worker_stats.cache_hits
            stats.cache_misses += worker_stats.cache_misses
            stats.megaflow_hits += worker_stats.megaflow_hits
            stats.megaflow_misses += worker_stats.megaflow_misses
            stats.waves += worker_stats.waves
        return stats
