"""Sharded multi-process batch runtime.

The per-table wave structure of :class:`~repro.runtime.batch.BatchPipeline`
is embarrassingly parallel across packets, but the CPython interpreter is
not — so :class:`ShardedBatchPipeline` splits each batch across
``multiprocessing`` workers, each owning a full pipeline **replica**
(rebuilt from a picklable :class:`PipelineSpec` snapshot) with its own
microflow/megaflow cache stack.

**Sharding** hashes each packet onto a worker by its megaflow-relevant
key: initially the full sorted field tuple, then — as workers report the
fields their megaflow masks actually constrain — only that consulted
union, so every packet of one traffic aggregate lands on the worker that
already caches its megaflow entry.  Sharding choices never affect
results (any worker classifies any packet identically); they only steer
cache locality.

**Consistency** uses a mutation log: the parent applies every flow-mod
to its authoritative pipeline *and* appends it to an ordered log
(mutations must go through :attr:`ShardedBatchPipeline.pipeline`, a
logging facade with the ``table(id).add/remove`` surface that
:func:`~repro.runtime.batch.run_workload` drives).  Each worker tracks a
log cursor; the parent snapshots the log length **once per batch** and
ships each worker the suffix up to that snapshot, so every worker
classifies the batch at the *same* log position — a mutation landing
mid-batch (e.g. from a controller thread) defers uniformly to the next
batch instead of splitting one batch across two table states — and
replicas stay sequentially consistent with the single-process runner,
results bitwise-identical.

**Transport** is shared-memory by default (``transport="shm"``): the
parent encodes each batch once into a columnar
:class:`~repro.runtime.transport.PacketBlockCodec` block, workers read
their member rows in place and write results into worker-owned blocks,
and only tiny control messages (mutation suffixes, block names, layouts)
cross the pipes.  ``transport="pickle"`` keeps the PR-2 whole-payload
pickling path for comparison benchmarks.  Either way, every reply
carries a :class:`~repro.runtime.transport.FlowStatsDelta` — per-entry
packet/byte counts the parent folds back into its authoritative
:class:`~repro.openflow.flow.FlowEntry` counters — so flow stats match
the single-process run exactly instead of being stranded in replicas.

**Pipelining** removes the lockstep round-trip: each direction keeps a
ring of ``depth`` shared blocks (request slot ``seq % depth`` parent-
side, one response slot per worker per ring index), so the parent
encodes and dispatches batch N+1 while the workers are still
classifying batch N.  :meth:`ShardedBatchPipeline.process_batches` (or
the explicit :meth:`submit_batch` / :meth:`collect_batch` pair) drives
the overlap; every submitted batch snapshots the mutation-log length
and the pinned entry order *at submission*, so pipelined batches see
exactly the serial sequence of table states a lockstep runner would
have produced.  A slot is reused only after its batch's replies are
decoded, which bounds worker memory at ``depth`` response blocks and
keeps in-flight columns immutable.

**Out-of-order collection.**  The in-flight window is keyed by ``seq``:
:meth:`collect_batch` accepts ``seq=`` and :meth:`collect_any` completes
whichever batch's replies land first, so a stalled shard delays only
the batches actually assigned to it.  Per-worker pipes deliver replies
in submission order; replies for other in-flight batches that arrive
while waiting are parked in a ``(seq, worker)`` buffer and handed out
at their own collect.  Ring-slot safety is preserved: submitting onto a
slot still held by an uncollected batch raises.

**Columnar submissions** (a :class:`~repro.packet.batch.PacketBatch`
through the shm transport) make the workers *decode-free*: the control
message carries a ``columnar`` flag, the worker attaches to the request
block's columns in place and classifies through
:meth:`~repro.runtime.batch.BatchPipeline.classify_columnar`, encoding
its reply straight from the megaflow templates
(:func:`~repro.runtime.transport.encode_outcomes`) — only rows that
miss both cache tiers are ever materialised as dicts worker-side.
Worker assignment hashes the shard fields' lanes in one vectorized
pass per batch.

Workers are spawned lazily on the first batch (``fork`` start method
when available) and torn down via :meth:`close` / context-manager exit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline, PipelineResult
from repro.openflow.table import FlowTable
from repro.packet.batch import PacketBatch
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime.batch import BatchPipeline, BatchStats
from repro.runtime.cache import DEFAULT_CAPACITY
from repro.runtime.protocol import (
    AddMutation,
    BatchRequest,
    ByeReply,
    CloseRequest,
    Mutation,
    PickleReply,
    RemoveMutation,
    ShmReply,
    ShmRequest,
)
from repro.runtime.transport import (
    BlockAttachments,
    BlockReader,
    BlockWriter,
    EntryIndex,
    FlowStatsDelta,
    PacketBlockCodec,
    SharedBlock,
    decode_results,
    encode_outcomes,
    encode_results,
    ensure_resource_tracker,
)

TRANSPORTS = ("shm", "pickle")


# ----------------------------------------------------------------------
# picklable pipeline snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableSpec:
    """Picklable snapshot of one flow table (schema + entries)."""

    kind: str  # "lookup" | "flow"
    table_id: int
    field_names: tuple[str, ...] | None
    entries: tuple[FlowEntry, ...]
    max_entries: int | None = None

    @classmethod
    def snapshot(cls, table: Any) -> TableSpec:
        if isinstance(table, OpenFlowLookupTable):
            return cls(
                kind="lookup",
                table_id=table.table_id,
                field_names=tuple(table.field_names),
                entries=tuple(table),
            )
        return cls(
            kind="flow",
            table_id=table.table_id,
            field_names=None,
            entries=tuple(table),
            max_entries=getattr(table, "max_entries", None),
        )

    def build(self, config: ArchitectureConfig) -> Any:
        if self.kind == "lookup":
            assert self.field_names is not None
            table = OpenFlowLookupTable(
                self.field_names, table_id=self.table_id, config=config
            )
        else:
            table = FlowTable(
                table_id=self.table_id, max_entries=self.max_entries
            )
        for entry in self.entries:
            table.add(entry)
        return table


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable snapshot of a whole pipeline, for worker replicas."""

    tables: tuple[TableSpec, ...]
    config: ArchitectureConfig
    miss_policy: str
    architecture: bool

    @classmethod
    def snapshot(cls, pipeline: OpenFlowPipeline) -> PipelineSpec:
        return cls(
            tables=tuple(TableSpec.snapshot(t) for t in pipeline.tables),
            config=getattr(pipeline, "config", DEFAULT_CONFIG),
            miss_policy=pipeline.miss_policy.value,
            architecture=isinstance(pipeline, MultiTableLookupArchitecture),
        )

    def build(self) -> OpenFlowPipeline:
        tables = [spec.build(self.config) for spec in self.tables]
        if self.architecture:
            return MultiTableLookupArchitecture(tables, config=self.config)
        return OpenFlowPipeline(
            tables=tables, miss_policy=MissPolicy(self.miss_policy)
        )


# ----------------------------------------------------------------------
# mutation-logging facade
# ----------------------------------------------------------------------


class _LoggedTable:
    """Forwards mutations to the authoritative table and logs them.

    Each mutation holds the runner's lock across the table apply *and*
    the log append, and the batch prologue takes the same lock around
    its log-length + entry-order snapshot — so a flow-mod from another
    thread is either entirely before a batch (in its log prefix and its
    pinned order) or entirely after it, never half-visible.
    """

    def __init__(
        self, table: Any, log: list[Mutation], lock: threading.Lock
    ) -> None:
        self._table = table
        self._log = log
        self._lock = lock

    def add(self, entry: FlowEntry) -> None:
        with self._lock:
            self._table.add(entry)
            self._log.append(AddMutation("add", self._table.table_id, entry))

    def remove(self, match: Match, priority: int) -> bool:
        with self._lock:
            removed = self._table.remove(match, priority)
            if removed:
                self._log.append(
                    RemoveMutation(
                        "remove", self._table.table_id, match, priority
                    )
                )
            return removed

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        # Predicates don't pickle; expand to the concrete removals so the
        # log stays replayable on the workers.
        doomed = [e for e in self._table if predicate(e)]
        for entry in doomed:
            self.remove(entry.match, entry.priority)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._table)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._table, name)


class _LoggedPipeline:
    """``pipeline``-shaped facade whose mutations reach the log."""

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        log: list[Mutation],
        lock: threading.Lock,
    ) -> None:
        self._pipeline = pipeline
        self._log = log
        self._lock = lock

    def table(self, table_id: int) -> _LoggedTable:
        return _LoggedTable(
            self._pipeline.table(table_id), self._log, self._lock
        )

    @property
    def tables(self) -> list[_LoggedTable]:
        return [self.table(t.table_id) for t in self._pipeline.tables]

    def install(self, table_id: int, entry: FlowEntry) -> None:
        with self._lock:
            self._pipeline.install(table_id, entry)
            self._log.append(AddMutation("add", table_id, entry))

    def __len__(self) -> int:
        return len(self._pipeline)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._pipeline, name)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _apply_mutations(
    pipeline: OpenFlowPipeline, mutations: Sequence[Mutation]
) -> None:
    for mutation in mutations:
        if isinstance(mutation, AddMutation):
            pipeline.table(mutation.table_id).add(mutation.entry)
        elif isinstance(mutation, RemoveMutation):
            pipeline.table(mutation.table_id).remove(
                mutation.match, mutation.priority
            )
        else:  # pragma: no cover - parent only emits the two kinds
            raise ValueError(f"unknown mutation kind {mutation[0]!r}")


def _serve_pickle(
    runner: BatchPipeline, index: EntryIndex, message: BatchRequest
) -> PickleReply:
    _, mutations, packets = message
    _apply_mutations(runner.pipeline, mutations)
    results = runner.process_batch(packets)
    delta = FlowStatsDelta.from_results(results, index)
    return PickleReply(
        "ok",
        results,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )


def _serve_shm(
    runner: BatchPipeline,
    index: EntryIndex,
    codec: PacketBlockCodec,
    request_blocks: BlockAttachments,
    response: SharedBlock,
    message: ShmRequest,
) -> ShmReply:
    # All numpy views over the shared blocks are confined to this frame
    # (codec.attach gathers copies): they must be garbage before close()
    # can unmap the segments.
    _, _, mutations, block_name, segments, layout, members_key, columnar = (
        message
    )
    _apply_mutations(runner.pipeline, mutations)
    reader = BlockReader(request_blocks.buf(block_name), segments)
    writer = BlockWriter()
    if columnar:
        # Decode-free: classify straight off the block's columns; only
        # rows that miss both cache tiers are ever materialised as
        # dicts, and megaflow hits are encoded from their templates.
        batch = codec.attach(reader, layout, reader.get(members_key))
        outcomes = runner.classify_columnar(batch)
        result_layout, vocabulary, delta = encode_outcomes(
            writer, outcomes, index
        )
    else:
        packets = codec.decode(reader, layout, reader.get(members_key))
        results = runner.process_batch(packets)
        result_layout, vocabulary, delta = encode_results(
            writer, results, index, codec, inputs=packets
        )
    response.ensure(writer.nbytes)
    response_segments = writer.write_to(response.buf)
    return ShmReply(
        "ok",
        response.name,
        response_segments,
        result_layout,
        vocabulary,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )


def _worker_main(
    conn: mp_connection.Connection,
    spec: PipelineSpec,
    cache_capacity: int | None,
    megaflow_capacity: int | None,
    depth: int,
) -> None:
    """Worker loop: apply log suffix, classify sub-batch, reply.

    Speaks both transports (the message tag selects): ``("batch", ...)``
    is the pickle path, ``("shm", slot, ...)`` the shared-memory path.
    Either reply carries the worker's megaflow mask fields, its stats
    snapshot and the batch's flow-stats delta.

    The worker owns a ring of ``depth`` response blocks, indexed by the
    ``slot`` each shm message names.  The parent never keeps more than
    ``depth`` batches in flight and decodes a reply before reusing its
    slot, so writing response ``slot`` here cannot race a parent-side
    read of the reply ``depth`` batches ago that last used it.
    """
    runner = BatchPipeline(
        spec.build(),
        cache_capacity=cache_capacity,
        megaflow_capacity=megaflow_capacity,
    )
    index = EntryIndex(runner.pipeline)
    codec = PacketBlockCodec()
    request_blocks = BlockAttachments()
    responses = [SharedBlock() for _ in range(depth)]

    def shutdown() -> None:
        request_blocks.close()
        for response in responses:
            response.close()

    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                conn.send(_serve_pickle(runner, index, message))
            elif kind == "shm":
                conn.send(
                    _serve_shm(
                        runner,
                        index,
                        codec,
                        request_blocks,
                        responses[message[1]],
                        message,
                    )
                )
            elif kind == "close":
                shutdown()
                conn.send(ByeReply("bye"))
                return
    except (EOFError, KeyboardInterrupt):  # parent went away
        shutdown()
        return


def _mask_fields(runner: BatchPipeline) -> tuple[str, ...]:
    return (
        runner.megaflow.mask_fields() if runner.megaflow is not None else ()
    )


def _stable_hash(items: tuple) -> int:
    """Process-independent FNV-1a over the key's repr (``hash()`` is
    salted per interpreter; sharding should be reproducible)."""
    h = 0xCBF29CE484222325
    for byte in repr(items).encode():
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


# ----------------------------------------------------------------------
# the sharded runner
# ----------------------------------------------------------------------


@dataclass
class _InFlight:
    """One submitted-but-not-collected batch: everything :meth:`collect`
    needs to resolve its replies against the table state it was
    classified under."""

    seq: int
    batch: Sequence[Mapping[str, int]]
    groups: dict[int, list[int]]
    pinned: Mapping[int, tuple]
    log_len: int


class ShardedBatchPipeline:
    """Drop-in ``process_batch`` runner fanning batches across workers.

    Args:
        pipeline: the authoritative pipeline.  Snapshot once at
            construction; afterwards mutate **only** through
            :attr:`pipeline` (the logging facade) so replicas catch up.
        workers: process count (default: ``os.cpu_count()``).
        cache_capacity / megaflow_capacity: per-worker cache stack, as
            in :class:`BatchPipeline`.
        shard_fields: optional explicit field names to hash on; when
            omitted, sharding starts on the full field tuple and
            converges onto the megaflow-consulted union the workers
            report.
        transport: ``"shm"`` (columnar shared-memory blocks, the
            default) or ``"pickle"`` (whole payloads through the pipe).
        depth: maximum batches in flight (submitted, not yet collected).
            ``depth >= 2`` double-buffers the transport: the parent
            encodes and dispatches batch N+1 while the workers are still
            classifying batch N (each direction keeps a ring of
            ``depth`` shared blocks, so an in-flight batch's columns are
            never overwritten).  ``depth=1`` is the lockstep PR-3
            behaviour.  :meth:`process_batch` is always lockstep;
            :meth:`process_batches` (and
            :func:`~repro.runtime.batch.run_workload`, which calls it)
            exploit the ring.

            Pipelining is an shm-transport feature: with
            ``transport="pickle"`` the depth is clamped to 1, because
            whole payloads cross the pipes — a request and a reply each
            larger than the pipe buffer would leave the parent blocked
            sending batch N+1 while the worker blocks sending batch N's
            reply, a deadlock the lockstep recv-before-send round-trip
            makes impossible.  Shm control messages (block names,
            layouts, member keys) are small by construction; the one
            unbounded rider — the mutation-log suffix — is bounded by
            :data:`MAX_PIPELINED_MUTATION_BACKLOG`: past it, the stream
            drains in flight before submitting (and
            :meth:`submit_batch` raises), so a big suffix is only ever
            written into empty pipes with the workers parked in recv.
    """

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        workers: int | None = None,
        cache_capacity: int | None = DEFAULT_CAPACITY,
        megaflow_capacity: int | None = None,
        shard_fields: Sequence[str] | None = None,
        transport: str = "shm",
        depth: int = 2,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if depth < 1:
            raise ValueError(f"pipeline depth must be positive, got {depth}")
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.transport = transport
        # See the depth docstring: whole-payload pickling can fill both
        # pipe directions at once, so the pickle transport stays
        # lockstep.
        self.depth = depth if transport == "shm" else 1
        self._authoritative = pipeline
        self._log: list[Mutation] = []
        self._mutation_lock = threading.Lock()
        self.pipeline = _LoggedPipeline(
            pipeline, self._log, self._mutation_lock
        )
        self._spec = PipelineSpec.snapshot(pipeline)
        self._cache_capacity = cache_capacity
        self._megaflow_capacity = megaflow_capacity
        self._shard_fields = tuple(shard_fields) if shard_fields else None
        self._learned_fields: set[str] = set()
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._conns: list = []
        self._procs: list = []
        self._codec = PacketBlockCodec()
        self._entry_index = EntryIndex(pipeline)
        #: Request-block ring: slot ``seq % depth`` carries batch
        #: ``seq``'s columns, reused only after that batch is collected.
        self._requests = [SharedBlock() for _ in range(depth)]
        self._responses = BlockAttachments()
        #: In-flight batches by seq, plus their submission order (the
        #: default FIFO collect cadence) — a dict, not a queue, so
        #: :meth:`collect_batch` can complete any seq out of order.
        self._inflight: dict[int, _InFlight] = {}
        self._order: deque[int] = deque()
        #: Per worker, the seqs whose replies will arrive on its pipe,
        #: in arrival order; replies drained while waiting for another
        #: seq park in ``_reply_buffer`` keyed ``(seq, worker)``.
        self._worker_pending: list[deque[int]] = [
            deque() for _ in range(self.workers)
        ]
        self._reply_buffer: dict[tuple[int, int], tuple] = {}
        self._seq = 0
        #: True while a process_batches() stream is live; guards against
        #: a second stream (or lockstep call) interleaving on the shared
        #: in-flight queue and mislabeling results.
        self._streaming = False
        self.packets = 0
        self.batches = 0
        self.matched = 0
        self.sent_to_controller = 0
        self.dropped = 0
        #: Flow-stats deltas merged back from the workers.
        self.flow_packets = 0
        self.flow_bytes = 0

    # -- lifecycle -----------------------------------------------------

    def _ensure_started(self) -> None:
        if self._procs:
            return
        # One resource tracker shared with the forked workers keeps
        # shared-memory accounting warning-free (see transport module).
        ensure_resource_tracker()
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self._spec,
                    self._cache_capacity,
                    self._megaflow_capacity,
                    self.depth,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def close(self) -> None:
        """Shut every worker down (idempotent).

        The runner stays usable: a later ``process_batch`` respawns
        workers from the construction-time snapshot, so the log cursors
        rewind to zero — fresh replicas must replay the *entire*
        mutation log to catch back up.
        """
        while self._inflight:  # drain replies before tearing blocks down
            try:
                self._collect()
            except (EOFError, OSError, AssertionError):
                self._inflight.clear()
                self._order.clear()
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(CloseRequest("close"))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._worker_pending = [deque() for _ in range(self.workers)]
        self._reply_buffer.clear()
        self._responses.close()
        for request in self._requests:
            request.close()
        # Recovery path for a stream that was created but abandoned
        # before its first iteration (the generator's finally never ran).
        self._streaming = False

    def __enter__(self) -> ShardedBatchPipeline:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- sharding ------------------------------------------------------

    def shard_of(self, packet_fields: Mapping[str, int]) -> int:
        """Worker index for a packet, by megaflow-key hash."""
        names = self._shard_fields
        if names is None and self._learned_fields:
            names = tuple(sorted(self._learned_fields))
        if names:
            key = tuple((n, packet_fields.get(n)) for n in names)
        else:
            # frame_len is switch metadata: per-packet length
            # distributions must not scatter a flow across workers.
            key = tuple(
                sorted(
                    item
                    for item in packet_fields.items()
                    if item[0] != FRAME_LEN_FIELD
                )
            )
        return _stable_hash(key) % self.workers

    def _shard_groups(
        self, batch: Sequence[Mapping[str, int]] | PacketBatch
    ) -> dict[int, list[int]]:
        """Positions per worker for one batch.

        Columnar batches assign workers with one vectorized hash pass
        over the shard fields' lanes (per distinct row, fanned out by
        ``pick``); the hash differs from the dict path's — sharding
        steers only cache locality, never results — but is equally
        stable per key, so an aggregate's packets still converge on one
        worker.
        """
        groups: dict[int, list[int]] = {}
        if isinstance(batch, PacketBatch):
            names = self._shard_fields
            if names is None and self._learned_fields:
                names = tuple(sorted(self._learned_fields))
            if not names:
                # Cold-start fallback: all columns except frame_len —
                # per-packet length distributions (imix/pareto) would
                # otherwise scatter one flow's packets across workers.
                names = tuple(
                    sorted(
                        name
                        for name in batch.field_names()
                        if name != FRAME_LEN_FIELD
                    )
                )
            hashes = batch.key_hashes(names)
            workers = (hashes % np.uint64(self.workers)).astype(np.int64)
            for i, worker in enumerate(workers[batch.pick].tolist()):
                groups.setdefault(worker, []).append(i)
        else:
            for i, fields in enumerate(batch):
                groups.setdefault(self.shard_of(fields), []).append(i)
        return groups

    # -- classification ------------------------------------------------

    def process(self, packet_fields: Mapping[str, int]) -> PipelineResult:
        return self.process_batch([packet_fields])[0]

    def process_batch(
        self, batch: Sequence[Mapping[str, int]]
    ) -> list[PipelineResult]:
        """Classify a batch across the workers; results in input order,
        bitwise-identical to the single-process :class:`BatchPipeline`.

        Lockstep: submits the batch and collects its replies before
        returning.  Refuses to run while :meth:`submit_batch` batches
        are in flight (draining them here would have to throw their
        results away silently; collect them first) or while a
        :meth:`process_batches` stream is live."""
        self._guard_idle("process_batch")
        if not self._submit(batch):
            return []
        return self._collect()

    def _guard_idle(self, caller: str) -> None:
        if self._streaming:
            raise RuntimeError(
                f"a process_batches() stream is live; exhaust or close "
                f"it before {caller}()"
            )
        if self._inflight:
            raise RuntimeError(
                f"{len(self._inflight)} submitted batches in flight; "
                f"collect_batch() their results before {caller}()"
            )

    def process_batches(
        self, batches: Iterable[Sequence[Mapping[str, int]]]
    ) -> Iterator[list[PipelineResult]]:
        """Pipelined classification of a stream of batches.

        Keeps up to :attr:`depth` batches in flight: batch N+1 is
        encoded into its own ring slot and dispatched while the workers
        are still classifying batch N, then replies are collected in
        submission order — the encode/classify overlap the lockstep
        :meth:`process_batch` round-trip serialises away.  A generator:
        yields one result list per input batch, in order, each
        bitwise-identical to the single-process runner's, as soon as it
        lands — memory stays O(depth x batch), never O(stream), so
        million-packet events replay without materialising their
        results.

        Like :meth:`process_batch`, refuses to start while
        :meth:`submit_batch` batches are outstanding (their results
        would otherwise be yielded as — and mislabeled as — the new
        stream's first entries) or while another stream is live: two
        streams interleaving on the shared FIFO would silently swap
        results between them.
        """
        self._guard_idle("process_batches")
        self._streaming = True
        return self._stream(batches)

    #: Mutation-log suffixes ride inside the "small" control messages,
    #: but churn can make them arbitrarily large.  Beyond this many
    #: outstanding mutations for the laggiest worker, the stream drains
    #: in flight before submitting — with empty pipes the worker is
    #: parked in recv and consumes the big message as it is written, so
    #: the send-while-reply-blocked deadlock window never opens.  128
    #: pickled FlowEntries sit comfortably under a 64 KiB pipe buffer.
    MAX_PIPELINED_MUTATION_BACKLOG = 128

    def _mutation_backlog(self) -> int:
        return len(self._log) - min(self._cursors, default=0)

    def _stream(
        self, batches: Iterable[Sequence[Mapping[str, int]]]
    ) -> Iterator[list[PipelineResult]]:
        try:
            for batch in batches:
                # The backlog is re-read on every loop pass: the
                # consumer (or a mutator thread) can grow the log while
                # the generator is suspended at a drain yield, and a
                # stale reading would submit a giant suffix into pipes
                # still carrying in-flight replies.
                while self._inflight and (
                    len(self._inflight) >= self.depth
                    or self._mutation_backlog()
                    > self.MAX_PIPELINED_MUTATION_BACKLOG
                ):
                    yield self._collect()
                if not self._submit(batch):
                    # Empty batches produce empty results but occupy no
                    # ring slot (there is nothing for a worker to do);
                    # splice the placeholder in once the preceding
                    # batches land.
                    while self._inflight:
                        yield self._collect()
                    yield []
            while self._inflight:
                yield self._collect()
        finally:
            self._streaming = False

    def submit_batch(self, batch: Sequence[Mapping[str, int]]) -> int:
        """Dispatch one non-empty batch without waiting for its results;
        returns its ``seq`` (collect with :meth:`collect_batch` — FIFO
        by default, or by ``seq`` in any order — or :meth:`collect_any`).
        Never blocks or collects internally: submitting beyond
        :attr:`depth` raises, so callers own the collect cadence
        explicitly — and an empty batch raises rather than silently
        occupying no slot and skewing the submit/collect pairing.  Also
        raises when an out-of-order collect left the new batch's ring
        slot occupied (slot ``seq % depth`` is reused only after its
        previous occupant was collected), or when the mutation backlog
        has outgrown what can safely share the pipe with in-flight
        replies (see :data:`MAX_PIPELINED_MUTATION_BACKLOG`): collect
        first, then resubmit."""
        if not batch:
            raise ValueError(
                "cannot submit an empty batch (it would occupy no ring "
                "slot and break the submit/collect pairing)"
            )
        if self._streaming:
            raise RuntimeError(
                "a process_batches() stream is live; exhaust or close "
                "it before submit_batch()"
            )
        if len(self._inflight) >= self.depth:
            raise RuntimeError(
                f"{len(self._inflight)} batches already in flight "
                f"(depth={self.depth}); collect_batch() first"
            )
        slot = self._seq % self.depth
        stuck = [s for s in self._inflight if s % self.depth == slot]
        if stuck:
            raise RuntimeError(
                f"batch seq {stuck[0]} still occupies ring slot {slot}; "
                "collect it before submitting another batch on that slot"
            )
        if self._inflight and (
            self._mutation_backlog() > self.MAX_PIPELINED_MUTATION_BACKLOG
        ):
            raise RuntimeError(
                f"mutation backlog ({self._mutation_backlog()}) too large "
                "to pipeline safely alongside in-flight replies; "
                "collect_batch() first"
            )
        seq = self._seq
        self._submit(batch)
        return seq

    def collect_batch(self, seq: int | None = None) -> list[PipelineResult]:
        """Results of one in-flight batch — the oldest by default, or
        the given ``seq`` in any order; raises when it is not in flight.

        Collection by ``seq`` never blocks on workers that batch did not
        touch: replies from other in-flight batches arriving first are
        parked (per-worker pipes deliver in submission order) and handed
        out when their own batch is collected — so a slow shard stalls
        only the batches actually assigned to it.
        """
        if seq is None:
            if not self._order:
                raise RuntimeError("no batch in flight")
            seq = self._order[0]
        elif seq not in self._inflight:
            raise RuntimeError(f"batch seq {seq} is not in flight")
        return self._collect(seq)

    def collect_any(self) -> tuple[int, list[PipelineResult]]:
        """``(seq, results)`` of the first in-flight batch able to
        complete, regardless of submission order.

        Polls every worker pipe carrying outstanding replies
        (``multiprocessing.connection.wait``), parking each arrival
        until some batch has all of its shards' replies — so a stalled
        worker delays only its own batches while faster shards' batches
        keep completing.
        """
        if not self._inflight:
            raise RuntimeError("no batch in flight")
        while True:
            for seq in self._order:
                groups = self._inflight[seq].groups
                if all(
                    (seq, worker) in self._reply_buffer for worker in groups
                ):
                    return seq, self._collect(seq)
            pending = [
                self._conns[worker]
                for worker in range(self.workers)
                if self._worker_pending[worker]
            ]
            for conn in mp_connection.wait(pending):
                worker = self._conns.index(conn)
                reply = conn.recv()
                arrived = self._worker_pending[worker].popleft()
                self._reply_buffer[(arrived, worker)] = reply

    @property
    def in_flight(self) -> int:
        """Batches submitted but not yet collected."""
        return len(self._inflight)

    # -- dispatch/collect internals ------------------------------------

    def _submit(self, batch: Sequence[Mapping[str, int]]) -> bool:
        """Encode, dispatch and register one batch; False when empty."""
        assert len(self._inflight) < self.depth
        assert all(
            seq % self.depth != self._seq % self.depth
            for seq in self._inflight
        ), "ring slot still occupied by an uncollected batch"
        self.packets += len(batch)
        self.batches += 1
        if not len(batch):
            return False
        self._ensure_started()
        # One atomic snapshot per *submitted* batch, under the mutation
        # lock: the log length (every worker catches up to the same
        # point) and the authoritative entry order (worker entry refs
        # resolve against this, not whatever the tables look like by
        # reply time).  Each in-flight batch carries its own snapshot
        # pair, so a mutation landing between two pipelined submissions
        # is visible to the second batch and not the first — exactly the
        # serial order a lockstep runner would have produced — and a
        # mutation landing while sub-batches are in flight defers
        # uniformly to the next submission.
        with self._mutation_lock:
            log_len = len(self._log)
            pinned = self._entry_index.pin()
        groups = self._shard_groups(batch)
        if self.transport == "shm":
            self._send_shm(batch, groups, log_len, self._seq % self.depth)
        else:
            self._send_pickle(batch, groups, log_len)
        for worker in groups:
            self._worker_pending[worker].append(self._seq)
        self._inflight[self._seq] = _InFlight(
            seq=self._seq,
            batch=batch,
            groups=groups,
            pinned=pinned,
            log_len=log_len,
        )
        self._order.append(self._seq)
        self._seq += 1
        return True

    def _take_reply(
        self, seq: int, worker: int
    ) -> PickleReply | ShmReply:
        """The reply ``worker`` sent for batch ``seq``.

        A worker's pipe delivers replies in the order its batches were
        submitted, so anything received while waiting belongs to an
        earlier-submitted (still in-flight) batch and is parked in the
        reply buffer for that batch's own collect.
        """
        reply = self._reply_buffer.pop((seq, worker), None)
        while reply is None:
            message = self._conns[worker].recv()
            arrived = self._worker_pending[worker].popleft()
            if arrived == seq:
                reply = message
            else:
                self._reply_buffer[(arrived, worker)] = message
        return reply

    def _collect(self, seq: int | None = None) -> list[PipelineResult]:
        """Receive, decode and merge one in-flight batch (oldest by
        default)."""
        if seq is None:
            seq = self._order[0]
        inflight = self._inflight.pop(seq)
        self._order.remove(seq)
        batch, groups, pinned = inflight.batch, inflight.groups, inflight.pinned
        results: list[PipelineResult] = [None] * len(batch)  # type: ignore[list-item]
        for worker, members in groups.items():
            reply = self._take_reply(seq, worker)
            assert reply[0] == "ok"
            if self.transport == "shm":
                worker_results, mask_fields, stats, delta = (
                    self._decode_reply(
                        reply, pinned, [batch[i] for i in members]
                    )
                )
            else:
                _, worker_results, mask_fields, stats, delta = reply
            for i, result in zip(members, worker_results):
                results[i] = result
            self._learned_fields.update(mask_fields)
            self._worker_stats[worker] = stats
            merged_packets, merged_bytes = delta.apply(pinned)
            self.flow_packets += merged_packets
            self.flow_bytes += merged_bytes
        for result in results:
            self.matched += bool(result.matched_entries)
            self.sent_to_controller += result.sent_to_controller
            self.dropped += result.dropped
        self._maybe_prune_log(inflight.log_len)
        return results

    def _send_pickle(
        self,
        batch: Sequence[Mapping[str, int]] | PacketBatch,
        groups: Mapping[int, list[int]],
        log_len: int,
    ) -> None:
        for worker, members in groups.items():
            outstanding = tuple(self._log[self._cursors[worker] : log_len])
            self._cursors[worker] = log_len
            self._conns[worker].send(
                BatchRequest(
                    "batch", outstanding, [batch[i] for i in members]
                )
            )

    def _send_shm(
        self,
        batch: Sequence[Mapping[str, int]] | PacketBatch,
        groups: Mapping[int, list[int]],
        log_len: int,
        slot: int,
    ) -> None:
        request = self._requests[slot]
        writer = BlockWriter()
        layout = self._codec.encode(writer, batch, "pkt")
        for worker, members in groups.items():
            writer.put(
                f"members/{worker}", np.asarray(members, dtype=np.int64)
            )
        request.ensure(writer.nbytes)
        segments = writer.write_to(request.buf)
        # A batch submitted columnar is classified columnar: the worker
        # attaches to the block's columns in place (decode-free) instead
        # of materialising every member row up front.
        columnar = isinstance(batch, PacketBatch)
        for worker in groups:
            outstanding = tuple(self._log[self._cursors[worker] : log_len])
            self._cursors[worker] = log_len
            self._conns[worker].send(
                ShmRequest(
                    "shm",
                    slot,
                    outstanding,
                    request.name,
                    segments,
                    layout,
                    f"members/{worker}",
                    columnar,
                )
            )

    def _decode_reply(
        self,
        reply: ShmReply,
        pinned: Mapping[int, tuple[FlowEntry, ...]],
        inputs: Sequence[Mapping[str, int]],
    ) -> tuple[
        list[PipelineResult], tuple[str, ...], BatchStats, FlowStatsDelta
    ]:
        (
            _,
            block_name,
            segments,
            result_layout,
            vocabulary,
            mask_fields,
            stats,
            delta,
        ) = reply
        reader = BlockReader(self._responses.buf(block_name), segments)
        worker_results = decode_results(
            reader,
            result_layout,
            vocabulary,
            lambda table_id, position: pinned[table_id][position],
            inputs=inputs,
        )
        return worker_results, mask_fields, stats, delta

    def _maybe_prune_log(self, log_len: int) -> None:
        """Bound the mutation log under long churn.

        Once every worker has replayed the whole log, fold the current
        authoritative state into the replica snapshot and drop the log —
        a later respawn (lazy start or close()/reuse) then builds from
        the fresh snapshot instead of replaying history.  Pruning waits
        for full catch-up, so a worker the hash never feeds can delay it;
        steady traffic reaches every worker and keeps the log short.
        """
        if log_len < 1024:
            return
        if any(cursor != log_len for cursor in self._cursors):
            return
        with self._mutation_lock:
            if len(self._log) != log_len:
                return  # a mutator slipped in; prune on a later batch
            self._spec = PipelineSpec.snapshot(self._authoritative)
            self._log.clear()
            self._cursors = [0] * self.workers

    # -- stats ---------------------------------------------------------

    def stats_snapshot(self) -> BatchStats:
        """Parent-side traffic counters merged with the workers' cache,
        megaflow and wave counters (as of each worker's last reply).

        ``flow_packets`` / ``flow_bytes`` come from the parent's own
        merged deltas (authoritative), never the worker snapshots — the
        workers' copies would double-count them.
        """
        stats = BatchStats(
            packets=self.packets,
            batches=self.batches,
            matched=self.matched,
            sent_to_controller=self.sent_to_controller,
            dropped=self.dropped,
            flow_packets=self.flow_packets,
            flow_bytes=self.flow_bytes,
        )
        for worker_stats in self._worker_stats:
            stats.cache_hits += worker_stats.cache_hits
            stats.cache_misses += worker_stats.cache_misses
            stats.megaflow_hits += worker_stats.megaflow_hits
            stats.megaflow_misses += worker_stats.megaflow_misses
            stats.waves += worker_stats.waves
        return stats
