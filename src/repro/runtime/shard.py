"""Sharded multi-process batch runtime.

The per-table wave structure of :class:`~repro.runtime.batch.BatchPipeline`
is embarrassingly parallel across packets, but the CPython interpreter is
not — so :class:`ShardedBatchPipeline` splits each batch across
``multiprocessing`` workers, each owning a full pipeline **replica**
(rebuilt from a picklable :class:`PipelineSpec` snapshot) with its own
microflow/megaflow cache stack.

**Sharding** hashes each packet onto a worker by its megaflow-relevant
key: initially the full sorted field tuple, then — as workers report the
fields their megaflow masks actually constrain — only that consulted
union, so every packet of one traffic aggregate lands on the worker that
already caches its megaflow entry.  Sharding choices never affect
results (any worker classifies any packet identically); they only steer
cache locality.

**Consistency** uses a mutation log: the parent applies every flow-mod
to its authoritative pipeline *and* appends it to an ordered log
(mutations must go through :attr:`ShardedBatchPipeline.pipeline`, a
logging facade with the ``table(id).add/remove`` surface that
:func:`~repro.runtime.batch.run_workload` drives).  Each worker tracks a
log cursor; the parent snapshots the log length **once per batch** and
ships each worker the suffix up to that snapshot, so every worker
classifies the batch at the *same* log position — a mutation landing
mid-batch (e.g. from a controller thread) defers uniformly to the next
batch instead of splitting one batch across two table states — and
replicas stay sequentially consistent with the single-process runner,
results bitwise-identical.

**Transport** is shared-memory by default (``transport="shm"``): the
parent encodes each batch once into a columnar
:class:`~repro.runtime.transport.PacketBlockCodec` block, workers read
their member rows in place and write results into worker-owned blocks,
and only tiny control messages (mutation suffixes, block names, layouts)
cross the pipes.  ``transport="pickle"`` keeps the PR-2 whole-payload
pickling path for comparison benchmarks.  Either way, every reply
carries a :class:`~repro.runtime.transport.FlowStatsDelta` — per-entry
packet/byte counts the parent folds back into its authoritative
:class:`~repro.openflow.flow.FlowEntry` counters — so flow stats match
the single-process run exactly instead of being stranded in replicas.

**Pipelining** removes the lockstep round-trip: each direction keeps a
ring of ``depth`` shared blocks (request slot ``seq % depth`` parent-
side, one response slot per worker per ring index), so the parent
encodes and dispatches batch N+1 while the workers are still
classifying batch N.  :meth:`ShardedBatchPipeline.process_batches` (or
the explicit :meth:`submit_batch` / :meth:`collect_batch` pair) drives
the overlap; every submitted batch snapshots the mutation-log length
and the pinned entry order *at submission*, so pipelined batches see
exactly the serial sequence of table states a lockstep runner would
have produced.  A slot is reused only after its batch's replies are
decoded, which bounds worker memory at ``depth`` response blocks and
keeps in-flight columns immutable.

**Out-of-order collection.**  The in-flight window is keyed by ``seq``:
:meth:`collect_batch` accepts ``seq=`` and :meth:`collect_any` completes
whichever batch's replies land first, so a stalled shard delays only
the batches actually assigned to it.  Per-worker pipes deliver replies
in submission order; replies for other in-flight batches that arrive
while waiting are parked in a ``(seq, worker)`` buffer and handed out
at their own collect.  Ring-slot safety is preserved: submitting onto a
slot still held by an uncollected batch raises.

**Columnar submissions** (a :class:`~repro.packet.batch.PacketBatch`
through the shm transport) make the workers *decode-free*: the control
message carries a ``columnar`` flag, the worker attaches to the request
block's columns in place and classifies through
:meth:`~repro.runtime.batch.BatchPipeline.classify_columnar`, encoding
its reply straight from the megaflow templates
(:func:`~repro.runtime.transport.encode_outcomes`) — only rows that
miss both cache tiers are ever materialised as dicts worker-side.
Worker assignment hashes the shard fields' lanes in one vectorized
pass per batch.

**Fault tolerance.**  Workers are supervised
(:mod:`repro.runtime.supervise`): every collect-side wait is
process-sentinel-aware and deadline-bounded, so a dead worker raises a
*crash* immediately and a silent one becomes a *wedge* when the
configured deadline lapses (the parent kills it) — never an indefinite
block.  Recovery leans on the snapshot-at-submission protocol: lost
in-flight batches are *replayed* on a respawned replica (the pinned
log prefix plus the immutable parent-owned request block make the
replay bitwise-identical, a re-send rather than a re-encode), a batch
that kills its worker twice is *poison* and classified in-process, and
once a worker's restart budget runs out its traffic degrades to the
surviving workers or to an in-process replica — results and flow-stats
deltas identical either way.  A parent-side block registry (fed by
pre-creation announcements) unlinks crashed workers' response rings,
and each worker watches its parent's pid so an orphaned fleet exits
instead of idling forever.  :mod:`repro.runtime.faults` injects
deterministic crashes/hangs into all of this for chaos tests.

Workers are spawned lazily on the first batch (``fork`` start method
when available) and torn down via :meth:`close` / context-manager exit.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.architecture import MultiTableLookupArchitecture
from repro.core.config import ArchitectureConfig, DEFAULT_CONFIG
from repro.core.lookup_table import OpenFlowLookupTable
from repro.openflow.flow import FlowEntry
from repro.openflow.match import Match
from repro.openflow.pipeline import MissPolicy, OpenFlowPipeline, PipelineResult
from repro.openflow.table import FlowTable
from repro.packet.batch import PacketBatch
from repro.packet.headers import FRAME_LEN_FIELD
from repro.runtime.batch import BatchPipeline, BatchStats
from repro.runtime.cache import DEFAULT_CAPACITY
from repro.runtime.faults import FaultPlan
from repro.runtime.lifecycle import (
    FlowRemoved,
    LifecycleSweeper,
    VirtualClock,
)
from repro.runtime.protocol import (
    AddMutation,
    BatchRequest,
    BlockAnnounce,
    ByeReply,
    CloseRequest,
    ExpireMutation,
    InlineReply,
    Mutation,
    PickleReply,
    RemoveMutation,
    ShmReply,
    ShmRequest,
)
from repro.runtime.rulestate import (
    SharedRuleLayout,
    SharedRuleState,
    attach_shared_tables,
)
from repro.runtime.supervise import (
    PoisonBatchError,
    SupervisionConfig,
    WorkerCrashError,
    WorkerSupervisor,
    await_readable,
)
from repro.runtime.transport import (
    BlockAttachments,
    BlockReader,
    BlockWriter,
    EntryIndex,
    FlowStatsDelta,
    PacketBlockCodec,
    SharedBlock,
    decode_results,
    encode_outcomes,
    encode_results,
    ensure_resource_tracker,
    unlink_segment,
)

TRANSPORTS = ("shm", "pickle")


# ----------------------------------------------------------------------
# picklable pipeline snapshots
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TableSpec:
    """Picklable snapshot of one flow table (schema + entries)."""

    kind: str  # "lookup" | "flow"
    table_id: int
    field_names: tuple[str, ...] | None
    entries: tuple[FlowEntry, ...]
    max_entries: int | None = None

    @classmethod
    def snapshot(cls, table: Any) -> TableSpec:
        if isinstance(table, OpenFlowLookupTable):
            return cls(
                kind="lookup",
                table_id=table.table_id,
                field_names=tuple(table.field_names),
                entries=tuple(table),
            )
        return cls(
            kind="flow",
            table_id=table.table_id,
            field_names=None,
            entries=tuple(table),
            max_entries=getattr(table, "max_entries", None),
        )

    def build(self, config: ArchitectureConfig) -> Any:
        if self.kind == "lookup":
            assert self.field_names is not None
            table = OpenFlowLookupTable(
                self.field_names, table_id=self.table_id, config=config
            )
        else:
            table = FlowTable(
                table_id=self.table_id, max_entries=self.max_entries
            )
        for entry in self.entries:
            table.add(entry)
        return table


@dataclass(frozen=True)
class PipelineSpec:
    """Picklable snapshot of a whole pipeline, for worker replicas.

    With ``shared`` set (a :class:`~repro.runtime.rulestate.SharedRuleLayout`
    minted by ``SharedRuleState.seal``), the lookup tables' entry tuples
    are stripped — the entries live in the sealed shared-memory block —
    and :meth:`build` *attaches* frozen replicas instead of replaying
    O(rules) adds per worker.
    """

    tables: tuple[TableSpec, ...]
    config: ArchitectureConfig
    miss_policy: str
    architecture: bool
    shared: SharedRuleLayout | None = None

    @classmethod
    def snapshot(cls, pipeline: OpenFlowPipeline) -> PipelineSpec:
        return cls(
            tables=tuple(TableSpec.snapshot(t) for t in pipeline.tables),
            config=getattr(pipeline, "config", DEFAULT_CONFIG),
            miss_policy=pipeline.miss_policy.value,
            architecture=isinstance(pipeline, MultiTableLookupArchitecture),
        )

    def build(self) -> OpenFlowPipeline:
        if self.shared is not None:
            tables = attach_shared_tables(self)
        else:
            tables = [spec.build(self.config) for spec in self.tables]
        if self.architecture:
            return MultiTableLookupArchitecture(tables, config=self.config)
        return OpenFlowPipeline(
            tables=tables, miss_policy=MissPolicy(self.miss_policy)
        )


# ----------------------------------------------------------------------
# mutation-logging facade
# ----------------------------------------------------------------------


class _LoggedTable:
    """Forwards mutations to the authoritative table and logs them.

    Each mutation holds the runner's lock across the table apply *and*
    the log append, and the batch prologue takes the same lock around
    its log-length + entry-order snapshot — so a flow-mod from another
    thread is either entirely before a batch (in its log prefix and its
    pinned order) or entirely after it, never half-visible.
    """

    def __init__(
        self, table: Any, log: list[Mutation], lock: threading.Lock
    ) -> None:
        self._table = table
        self._log = log
        self._lock = lock

    def add(self, entry: FlowEntry) -> None:
        with self._lock:
            self._table.add(entry)
            self._log.append(AddMutation("add", self._table.table_id, entry))

    def remove(self, match: Match, priority: int) -> bool:
        with self._lock:
            removed = self._table.remove(match, priority)
            if removed:
                self._log.append(
                    RemoveMutation(
                        "remove", self._table.table_id, match, priority
                    )
                )
            return removed

    def expire(self, match: Match, priority: int) -> bool:
        """Remove an entry the lifecycle sweep timed out, logging it as
        an :class:`~repro.runtime.protocol.ExpireMutation` so workers
        (and replay recovery) apply the identical removal without ever
        consulting a clock."""
        with self._lock:
            removed = self._table.remove(match, priority)
            if removed:
                self._log.append(
                    ExpireMutation(
                        "expire", self._table.table_id, match, priority
                    )
                )
            return removed

    def remove_where(self, predicate: Callable[[FlowEntry], bool]) -> int:
        # Predicates don't pickle; expand to the concrete removals so the
        # log stays replayable on the workers.
        doomed = [e for e in self._table if predicate(e)]
        for entry in doomed:
            self.remove(entry.match, entry.priority)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._table)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._table, name)


class _LoggedPipeline:
    """``pipeline``-shaped facade whose mutations reach the log."""

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        log: list[Mutation],
        lock: threading.Lock,
    ) -> None:
        self._pipeline = pipeline
        self._log = log
        self._lock = lock

    def table(self, table_id: int) -> _LoggedTable:
        return _LoggedTable(
            self._pipeline.table(table_id), self._log, self._lock
        )

    @property
    def tables(self) -> list[_LoggedTable]:
        return [self.table(t.table_id) for t in self._pipeline.tables]

    def install(self, table_id: int, entry: FlowEntry) -> None:
        with self._lock:
            self._pipeline.install(table_id, entry)
            self._log.append(AddMutation("add", table_id, entry))

    def __len__(self) -> int:
        return len(self._pipeline)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._pipeline, name)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _apply_mutations(
    pipeline: OpenFlowPipeline, mutations: Sequence[Mutation]
) -> None:
    for mutation in mutations:
        if isinstance(mutation, AddMutation):
            pipeline.table(mutation.table_id).add(mutation.entry)
        elif isinstance(mutation, (RemoveMutation, ExpireMutation)):
            # Expiry is just a removal here: the parent's sweep already
            # decided it, so workers stay clock-free.
            pipeline.table(mutation.table_id).remove(
                mutation.match, mutation.priority
            )
        else:  # pragma: no cover - parent only emits the three kinds
            raise ValueError(f"unknown mutation kind {mutation[0]!r}")


def _serve_pickle(
    runner: BatchPipeline,
    index: EntryIndex,
    message: BatchRequest,
    faults: FaultPlan,
    worker_id: int,
) -> PickleReply:
    _, seq, mutations, packets, bypass = message
    faults.fire(worker_id, seq, "after-receive")
    _apply_mutations(runner.pipeline, mutations)
    faults.fire(worker_id, seq, "mid-classify")
    runner.megaflow_bypass = bypass
    results = runner.process_batch(packets)
    runner.megaflow_bypass = False
    delta = FlowStatsDelta.from_results(results, index)
    faults.fire(worker_id, seq, "after-stats")
    reply = PickleReply(
        "ok",
        results,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )
    faults.fire(worker_id, seq, "before-reply")
    return reply


def _serve_shm(
    runner: BatchPipeline,
    index: EntryIndex,
    codec: PacketBlockCodec,
    request_blocks: BlockAttachments,
    response: SharedBlock,
    message: ShmRequest,
    conn: mp_connection.Connection,
    faults: FaultPlan,
    worker_id: int,
) -> ShmReply:
    # All numpy views over the shared blocks are confined to this frame
    # (codec.attach gathers copies): they must be garbage before close()
    # can unmap the segments.
    _, seq, slot, mutations, block_name, segments, layout, members_key, (
        columnar
    ), bypass = message
    faults.fire(worker_id, seq, "after-receive")
    _apply_mutations(runner.pipeline, mutations)
    faults.fire(worker_id, seq, "mid-classify")
    runner.megaflow_bypass = bypass
    reader = BlockReader(request_blocks.buf(block_name), segments)
    writer = BlockWriter()
    if columnar:
        # Decode-free: classify straight off the block's columns; only
        # rows that miss both cache tiers are ever materialised as
        # dicts, and megaflow hits are encoded from their templates.
        batch = codec.attach(reader, layout, reader.get(members_key))
        outcomes = runner.classify_columnar(batch)
        result_layout, vocabulary, delta = encode_outcomes(
            writer, outcomes, index
        )
    else:
        packets = codec.decode(reader, layout, reader.get(members_key))
        results = runner.process_batch(packets)
        result_layout, vocabulary, delta = encode_results(
            writer, results, index, codec, inputs=packets
        )
    runner.megaflow_bypass = False
    faults.fire(worker_id, seq, "after-stats")
    # Announce-before-create: the parent's crash registry must know the
    # segment name before the segment can exist, so a death at any
    # point leaves nothing unlinked-but-unknown.
    planned = response.plan(writer.nbytes)
    if planned is not None:
        conn.send(BlockAnnounce("block", slot, planned))
    response.ensure(writer.nbytes)
    response_segments = writer.write_to(response.buf)
    reply = ShmReply(
        "ok",
        response.name,
        response_segments,
        result_layout,
        vocabulary,
        _mask_fields(runner),
        runner.stats_snapshot(),
        delta,
    )
    faults.fire(worker_id, seq, "before-reply")
    return reply


#: How often an idle worker checks that its parent is still alive.
#: With the ``fork`` start method, sibling workers inherit each other's
#: pipe write-ends, so a SIGKILLed parent produces *no* EOF — the pid
#: watch is the only orphan signal that always fires.
_PARENT_POLL_INTERVAL = 0.2


def _worker_main(
    conn: mp_connection.Connection,
    spec: PipelineSpec,
    cache_capacity: int | None,
    megaflow_capacity: int | None,
    depth: int,
    worker_id: int = 0,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Worker loop: apply log suffix, classify sub-batch, reply.

    Speaks both transports (the message tag selects): ``("batch", ...)``
    is the pickle path, ``("shm", seq, slot, ...)`` the shared-memory
    path.  Either reply carries the worker's megaflow mask fields, its
    stats snapshot and the batch's flow-stats delta.

    The worker owns a ring of ``depth`` response blocks, indexed by the
    ``slot`` each shm message names.  The parent never keeps more than
    ``depth`` batches in flight and decodes a reply before reusing its
    slot, so writing response ``slot`` here cannot race a parent-side
    read of the reply ``depth`` batches ago that last used it.

    Response blocks use announced deterministic names
    (``reproshard<pid>s<slot>``): each creation is preceded by a
    :class:`BlockAnnounce` on the pipe, so the parent can unlink this
    worker's segments even after a SIGKILL (the in-process finalize
    guards die with the worker).

    The receive loop polls rather than blocks so it can watch the
    parent's pid between messages: under ``fork``, sibling workers keep
    each other's pipe write-ends open, so parent death never surfaces
    as EOF here — without the watch, a SIGKILLed parent would leave the
    whole fleet idling forever.
    """
    faults = fault_plan if fault_plan is not None else FaultPlan()
    runner = BatchPipeline(
        spec.build(),
        cache_capacity=cache_capacity,
        megaflow_capacity=megaflow_capacity,
    )
    index = EntryIndex(runner.pipeline)
    codec = PacketBlockCodec()
    request_blocks = BlockAttachments()
    responses = [
        SharedBlock(name_prefix=f"reproshard{os.getpid()}s{slot}")
        for slot in range(depth)
    ]
    parent_pid = os.getppid()

    def shutdown() -> None:
        request_blocks.close()
        for response in responses:
            response.close()

    try:
        while True:
            while not conn.poll(_PARENT_POLL_INTERVAL):
                if os.getppid() != parent_pid:  # orphaned: parent died
                    shutdown()
                    return
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                conn.send(
                    _serve_pickle(runner, index, message, faults, worker_id)
                )
            elif kind == "shm":
                conn.send(
                    _serve_shm(
                        runner,
                        index,
                        codec,
                        request_blocks,
                        responses[message[2]],
                        message,
                        conn,
                        faults,
                        worker_id,
                    )
                )
            elif kind == "close":
                shutdown()
                conn.send(ByeReply("bye"))
                return
    except (EOFError, KeyboardInterrupt):  # parent went away
        shutdown()
        return


def _mask_fields(runner: BatchPipeline) -> tuple[str, ...]:
    return (
        runner.megaflow.mask_fields() if runner.megaflow is not None else ()
    )


def _stable_hash(items: tuple) -> int:
    """Process-independent FNV-1a over the key's repr (``hash()`` is
    salted per interpreter; sharding should be reproducible)."""
    h = 0xCBF29CE484222325
    for byte in repr(items).encode():
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


# ----------------------------------------------------------------------
# the sharded runner
# ----------------------------------------------------------------------


@dataclass
class _InFlight:
    """One submitted-but-not-collected batch: everything :meth:`collect`
    needs to resolve its replies against the table state it was
    classified under.

    ``sends`` keeps each worker's request message as a template (with
    an empty mutation suffix): request blocks are parent-owned and
    immutable in flight, so recovering a dead worker re-*sends* the
    template — with the suffix recomputed from the replacement's fresh
    log cursor — instead of re-encoding anything.
    """

    seq: int
    batch: Sequence[Mapping[str, int]]
    groups: dict[int, list[int]]
    pinned: Mapping[int, tuple]
    log_len: int
    sends: dict[int, BatchRequest | ShmRequest] = field(default_factory=dict)
    #: Megaflow-bypass flag the batch was submitted with; the degraded
    #: inline path reads it here (live workers read it off the wire).
    bypass: bool = False


class _WorkerDied(Exception):
    """Internal signal: a worker failed while the parent waited on it.

    ``kind`` carries the taxonomy bucket — ``"crash"`` (sentinel fired
    or the pipe broke) or ``"wedge"`` (the supervision deadline lapsed
    without progress).  Always caught by the recovery layer; never
    escapes the runner.
    """

    def __init__(self, worker: int, kind: str) -> None:
        super().__init__(f"worker {worker} {kind}")
        self.worker = worker
        self.kind = kind


class ShardedBatchPipeline:
    """Drop-in ``process_batch`` runner fanning batches across workers.

    Args:
        pipeline: the authoritative pipeline.  Snapshot once at
            construction; afterwards mutate **only** through
            :attr:`pipeline` (the logging facade) so replicas catch up.
        workers: process count (default: ``os.cpu_count()``).
        cache_capacity / megaflow_capacity: per-worker cache stack, as
            in :class:`BatchPipeline`.
        shard_fields: optional explicit field names to hash on; when
            omitted, sharding starts on the full field tuple and
            converges onto the megaflow-consulted union the workers
            report.
        transport: ``"shm"`` (columnar shared-memory blocks, the
            default) or ``"pickle"`` (whole payloads through the pipe).
        depth: maximum batches in flight (submitted, not yet collected).
            ``depth >= 2`` double-buffers the transport: the parent
            encodes and dispatches batch N+1 while the workers are still
            classifying batch N (each direction keeps a ring of
            ``depth`` shared blocks, so an in-flight batch's columns are
            never overwritten).  ``depth=1`` is the lockstep PR-3
            behaviour.  :meth:`process_batch` is always lockstep;
            :meth:`process_batches` (and
            :func:`~repro.runtime.batch.run_workload`, which calls it)
            exploit the ring.

            Pipelining is an shm-transport feature: with
            ``transport="pickle"`` the depth is clamped to 1, because
            whole payloads cross the pipes — a request and a reply each
            larger than the pipe buffer would leave the parent blocked
            sending batch N+1 while the worker blocks sending batch N's
            reply, a deadlock the lockstep recv-before-send round-trip
            makes impossible.  Shm control messages (block names,
            layouts, member keys) are small by construction; the one
            unbounded rider — the mutation-log suffix — is bounded by
            :data:`MAX_PIPELINED_MUTATION_BACKLOG`: past it, the stream
            drains in flight before submitting (and
            :meth:`submit_batch` raises), so a big suffix is only ever
            written into empty pipes with the workers parked in recv.
        supervision: failure policy (see
            :class:`~repro.runtime.supervise.SupervisionConfig`): wedge
            deadline, restart budget per worker, and the degraded mode
            (``inline`` / ``redistribute`` / ``raise``) once the budget
            is spent.  The default supervises crashes with two respawns
            per worker and inline fallback; wedge detection arms when a
            ``deadline`` is set.
        fault_plan: deterministic fault injection for chaos tests (see
            :mod:`repro.runtime.faults`); threaded through worker spawn
            and pruned on respawn so a non-sticky fault fires exactly
            once.
    """

    def __init__(
        self,
        pipeline: OpenFlowPipeline,
        workers: int | None = None,
        cache_capacity: int | None = DEFAULT_CAPACITY,
        megaflow_capacity: int | None = None,
        shard_fields: Sequence[str] | None = None,
        transport: str = "shm",
        depth: int = 2,
        supervision: SupervisionConfig | None = None,
        fault_plan: FaultPlan | None = None,
        shared_rules: bool = False,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if depth < 1:
            raise ValueError(f"pipeline depth must be positive, got {depth}")
        self.workers = workers or max(1, os.cpu_count() or 1)
        self.transport = transport
        # See the depth docstring: whole-payload pickling can fill both
        # pipe directions at once, so the pickle transport stays
        # lockstep.
        self.depth = depth if transport == "shm" else 1
        self._authoritative = pipeline
        self._log: list[Mutation] = []
        self._mutation_lock = threading.Lock()
        self.pipeline = _LoggedPipeline(
            pipeline, self._log, self._mutation_lock
        )
        self._spec = PipelineSpec.snapshot(pipeline)
        #: Shared read-only rule state (see runtime/rulestate.py): the
        #: static lookup structures are sealed into one shared-memory
        #: block and workers attach instead of rebuilding O(rules)
        #: replicas.  Sealed eagerly at the end of construction so the
        #: first spawn is already O(1)-per-worker; re-sealed at log fold
        #: points.
        self._shared_rules = shared_rules
        self._rule_state: SharedRuleState | None = None
        self._cache_capacity = cache_capacity
        self._megaflow_capacity = megaflow_capacity
        self._shard_fields = tuple(shard_fields) if shard_fields else None
        self._learned_fields: set[str] = set()
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._conns: list = []
        self._procs: list = []
        self._codec = PacketBlockCodec()
        self._entry_index = EntryIndex(pipeline)
        #: Request-block ring: slot ``seq % depth`` carries batch
        #: ``seq``'s columns, reused only after that batch is collected.
        self._requests = [SharedBlock() for _ in range(depth)]
        self._responses = BlockAttachments()
        #: In-flight batches by seq, plus their submission order (the
        #: default FIFO collect cadence) — a dict, not a queue, so
        #: :meth:`collect_batch` can complete any seq out of order.
        self._inflight: dict[int, _InFlight] = {}
        self._order: deque[int] = deque()
        #: Per worker, the seqs whose replies will arrive on its pipe,
        #: in arrival order; replies drained while waiting for another
        #: seq park in ``_reply_buffer`` keyed ``(seq, worker)``.
        self._worker_pending: list[deque[int]] = [
            deque() for _ in range(self.workers)
        ]
        self._reply_buffer: dict[tuple[int, int], tuple] = {}
        self._seq = 0
        self._supervisor = WorkerSupervisor(
            workers=self.workers,
            config=supervision if supervision is not None else SupervisionConfig(),
        )
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self._mp_ctx: Any = None
        #: Parent-side replica for degraded (inline) classification:
        #: built lazily from the current spec and advanced along the
        #: mutation log exactly like a worker would be.
        self._inline_runner: BatchPipeline | None = None
        self._inline_index: EntryIndex | None = None
        self._inline_cursor = 0
        #: True while a process_batches() stream is live; guards against
        #: a second stream (or lockstep call) interleaving on the shared
        #: in-flight queue and mislabeling results.
        self._streaming = False
        self.packets = 0
        self.batches = 0
        self.matched = 0
        self.sent_to_controller = 0
        self.dropped = 0
        #: Flow-stats deltas merged back from the workers.
        self.flow_packets = 0
        self.flow_bytes = 0
        #: Parent-owned lifecycle: the sweep runs over the authoritative
        #: tables only; workers learn of expiries via the mutation log.
        self.lifecycle = LifecycleSweeper()
        if shared_rules:
            self._seal_rules()

    # -- lifecycle -----------------------------------------------------

    def _spawn_worker(
        self, worker: int
    ) -> tuple[mp_connection.Connection, Any]:
        parent_conn, child_conn = self._mp_ctx.Pipe()
        proc = self._mp_ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._spec,
                self._cache_capacity,
                self._megaflow_capacity,
                self.depth,
                worker,
                self._fault_plan,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _seal_rules(self) -> None:
        """(Re)seal the shared rule snapshot before spawning a fleet.

        Only legal with no live workers and nothing in flight: folding
        the mutation log into a fresh spec is then equivalent to every
        worker having replayed it, so cursors rewind to zero and the
        sealed block *is* the log-position-zero state the next fleet
        attaches to.  A still-current seal (no mutations since) is kept.
        """
        assert not self._procs and not self._inflight
        with self._mutation_lock:
            if self._rule_state is not None and not self._log:
                return
            if self._rule_state is not None:
                self._rule_state.close()
                self._rule_state = None
            base = PipelineSpec.snapshot(self._authoritative)
            self._log.clear()
            self._cursors = [0] * self.workers
            self._inline_runner = None
            self._inline_index = None
            self._inline_cursor = 0
            self._rule_state = SharedRuleState.seal(self._authoritative, base)
            self._spec = self._rule_state.spec

    def _ensure_started(self) -> None:
        if self._procs:
            return
        # One resource tracker shared with the forked workers keeps
        # shared-memory accounting warning-free (see transport module).
        ensure_resource_tracker()
        if self._shared_rules:
            # Covers respawn-after-close(): close() released the sealed
            # block, so the stale spec must be re-sealed (folding any
            # mutations logged in between) before workers can attach.
            self._seal_rules()
        if self._mp_ctx is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            self._mp_ctx = mp.get_context(method)
        for worker in range(self.workers):
            conn, proc = self._spawn_worker(worker)
            self._conns.append(conn)
            self._procs.append(proc)

    #: Longest close() waits for one worker's orderly Bye before
    #: escalating to SIGKILL.
    CLOSE_TIMEOUT = 5.0

    def _shutdown_worker(self, worker: int) -> None:
        """Orderly close of one worker, escalating to a kill.

        The Bye wait is sentinel-aware and deadline-bounded like every
        other parent-side wait: a worker that died (or wedged) during
        shutdown cannot park ``close()``.
        """
        conn, proc = self._conns[worker], self._procs[worker]
        try:
            conn.send(CloseRequest("close"))
            deadline = time.monotonic() + self.CLOSE_TIMEOUT  # repro-lint: disable=wall-clock-ban
            while True:
                remaining = deadline - time.monotonic()  # repro-lint: disable=wall-clock-ban
                if remaining <= 0:
                    break
                ready = mp_connection.wait([conn, proc.sentinel], remaining)
                if conn not in ready and not conn.poll(0):
                    break  # timeout, or sentinel fired with a dry pipe
                message = conn.recv()
                if message[0] == "block":
                    self._supervisor.register_block(worker, message[2])
                elif message[0] == "bye":
                    break
        except (BrokenPipeError, EOFError, ConnectionResetError, OSError):
            pass
        conn.close()
        proc.join(timeout=self.CLOSE_TIMEOUT)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.kill()
            proc.join(timeout=self.CLOSE_TIMEOUT)

    def close(self) -> None:
        """Shut every worker down (idempotent).

        The runner stays usable: a later ``process_batch`` respawns
        workers from the construction-time snapshot, so the log cursors
        rewind to zero — fresh replicas must replay the *entire*
        mutation log to catch back up.  Degraded workers are forgiven
        on close (the respawned fleet is whole again); cumulative
        supervision stats survive for reporting.
        """
        while self._inflight:  # drain replies before tearing blocks down
            try:
                self._collect()
            except (EOFError, OSError, AssertionError, WorkerCrashError):
                self._inflight.clear()
                self._order.clear()
        for worker in range(len(self._procs)):
            self._shutdown_worker(worker)
        self._conns = []
        self._procs = []
        self._cursors = [0] * self.workers
        self._worker_stats = [BatchStats() for _ in range(self.workers)]
        self._worker_pending = [deque() for _ in range(self.workers)]
        self._reply_buffer.clear()
        self._responses.close()
        for request in self._requests:
            request.close()
        # A worker that exited cleanly already unlinked its response
        # ring (these unlink as no-ops); one that was killed on the
        # defensive path above did not — the announce registry is the
        # only record of its segments.
        for worker in range(self.workers):
            for name in self._supervisor.drain_blocks(worker):
                unlink_segment(name)
        self._supervisor.reset()
        self._inline_runner = None
        self._inline_index = None
        self._inline_cursor = 0
        # Release the sealed rule block (zero /dev/shm residue after
        # close).  The spec goes stale with it; the next _ensure_started
        # re-seals from the authoritative tables before spawning.
        if self._rule_state is not None:
            self._rule_state.close()
            self._rule_state = None
        # Recovery path for a stream that was created but abandoned
        # before its first iteration (the generator's finally never ran).
        self._streaming = False

    def __enter__(self) -> ShardedBatchPipeline:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- sharding ------------------------------------------------------

    def shard_of(self, packet_fields: Mapping[str, int]) -> int:
        """Worker index for a packet, by megaflow-key hash."""
        names = self._shard_fields
        if names is None and self._learned_fields:
            names = tuple(sorted(self._learned_fields))
        if names:
            key = tuple((n, packet_fields.get(n)) for n in names)
        else:
            # frame_len is switch metadata: per-packet length
            # distributions must not scatter a flow across workers.
            key = tuple(
                sorted(
                    item
                    for item in packet_fields.items()
                    if item[0] != FRAME_LEN_FIELD
                )
            )
        return _stable_hash(key) % self.workers

    def _shard_groups(
        self, batch: Sequence[Mapping[str, int]] | PacketBatch
    ) -> dict[int, list[int]]:
        """Positions per worker for one batch.

        Columnar batches assign workers with one vectorized hash pass
        over the shard fields' lanes (per distinct row, fanned out by
        ``pick``); the hash differs from the dict path's — sharding
        steers only cache locality, never results — but is equally
        stable per key, so an aggregate's packets still converge on one
        worker.
        """
        groups: dict[int, list[int]] = {}
        if isinstance(batch, PacketBatch):
            names = self._shard_fields
            if names is None and self._learned_fields:
                names = tuple(sorted(self._learned_fields))
            if not names:
                # Cold-start fallback: all columns except frame_len —
                # per-packet length distributions (imix/pareto) would
                # otherwise scatter one flow's packets across workers.
                names = tuple(
                    sorted(
                        name
                        for name in batch.field_names()
                        if name != FRAME_LEN_FIELD
                    )
                )
            hashes = batch.key_hashes(names)
            workers = (hashes % np.uint64(self.workers)).astype(np.int64)
            for i, worker in enumerate(workers[batch.pick].tolist()):
                groups.setdefault(worker, []).append(i)
        else:
            for i, fields in enumerate(batch):
                groups.setdefault(self.shard_of(fields), []).append(i)
        if self._supervisor.disabled:
            groups = self._reroute(groups)
        return groups

    def _reroute(self, groups: dict[int, list[int]]) -> dict[int, list[int]]:
        """Degraded routing: a permanently-disabled shard's members go
        to the survivors (``fallback="redistribute"``) or stay grouped
        under the dead worker for in-process classification at submit
        (``fallback="inline"``, or no survivors left).  Either way the
        members classify at the same pinned log position, so results
        stay identical — routing only moves cache locality."""
        if self._supervisor.config.fallback != "redistribute":
            return groups
        survivors = [
            w for w in range(self.workers)
            if w not in self._supervisor.disabled
        ]
        if not survivors:
            return groups
        rerouted: dict[int, list[int]] = {}
        for worker, members in groups.items():
            if worker in self._supervisor.disabled:
                worker = survivors[worker % len(survivors)]
            rerouted.setdefault(worker, []).extend(members)
        for members in rerouted.values():
            members.sort()
        return rerouted

    # -- classification ------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The parent's virtual clock; workers never see one."""
        return self.lifecycle.clock

    @property
    def flow_removed(self) -> list[FlowRemoved]:
        """Parent-side ledger of every expiry swept so far, in order."""
        return self.lifecycle.ledger

    def advance_clock(self, dt: int) -> list[FlowRemoved]:
        """Advance virtual time and expire timed-out entries.

        The sweep reads the *authoritative* tables (whose flow counters
        hold every merged worker delta) and routes each removal through
        the logged facade as an
        :class:`~repro.runtime.protocol.ExpireMutation`, so workers,
        replay recovery and the inline fallback all reconstruct the
        identical post-expiry state from the log.  Refuses to run with
        batches in flight — their un-merged deltas would make the idle
        detection (and flow-removed final counters) racy; workload
        replay always drains each packet event first.
        """
        self._guard_idle("advance_clock")
        return self.lifecycle.advance(
            self._authoritative,
            dt,
            remove=lambda table_id, match, priority: self.pipeline.table(
                table_id
            ).expire(match, priority),
        )

    def process(self, packet_fields: Mapping[str, int]) -> PipelineResult:
        return self.process_batch([packet_fields])[0]

    def process_batch(
        self, batch: Sequence[Mapping[str, int]]
    ) -> list[PipelineResult]:
        """Classify a batch across the workers; results in input order,
        bitwise-identical to the single-process :class:`BatchPipeline`.

        Lockstep: submits the batch and collects its replies before
        returning.  Refuses to run while :meth:`submit_batch` batches
        are in flight (draining them here would have to throw their
        results away silently; collect them first) or while a
        :meth:`process_batches` stream is live."""
        self._guard_idle("process_batch")
        if not self._submit(batch):
            return []
        return self._collect()

    def _guard_idle(self, caller: str) -> None:
        if self._streaming:
            raise RuntimeError(
                f"a process_batches() stream is live; exhaust or close "
                f"it before {caller}()"
            )
        if self._inflight:
            raise RuntimeError(
                f"{len(self._inflight)} submitted batches in flight; "
                f"collect_batch() their results before {caller}()"
            )

    def process_batches(
        self, batches: Iterable[Sequence[Mapping[str, int]]]
    ) -> Iterator[list[PipelineResult]]:
        """Pipelined classification of a stream of batches.

        Keeps up to :attr:`depth` batches in flight: batch N+1 is
        encoded into its own ring slot and dispatched while the workers
        are still classifying batch N, then replies are collected in
        submission order — the encode/classify overlap the lockstep
        :meth:`process_batch` round-trip serialises away.  A generator:
        yields one result list per input batch, in order, each
        bitwise-identical to the single-process runner's, as soon as it
        lands — memory stays O(depth x batch), never O(stream), so
        million-packet events replay without materialising their
        results.

        Like :meth:`process_batch`, refuses to start while
        :meth:`submit_batch` batches are outstanding (their results
        would otherwise be yielded as — and mislabeled as — the new
        stream's first entries) or while another stream is live: two
        streams interleaving on the shared FIFO would silently swap
        results between them.
        """
        self._guard_idle("process_batches")
        self._streaming = True
        return self._stream(batches)

    #: Mutation-log suffixes ride inside the "small" control messages,
    #: but churn can make them arbitrarily large.  Beyond this many
    #: outstanding mutations for the laggiest worker, the stream drains
    #: in flight before submitting — with empty pipes the worker is
    #: parked in recv and consumes the big message as it is written, so
    #: the send-while-reply-blocked deadlock window never opens.  128
    #: pickled FlowEntries sit comfortably under a 64 KiB pipe buffer.
    MAX_PIPELINED_MUTATION_BACKLOG = 128

    def _mutation_backlog(self) -> int:
        log_len = len(self._log)
        live = [
            cursor
            for worker, cursor in enumerate(self._cursors)
            if worker not in self._supervisor.disabled
        ]
        return log_len - min(live, default=log_len)

    def _stream(
        self, batches: Iterable[Sequence[Mapping[str, int]]]
    ) -> Iterator[list[PipelineResult]]:
        try:
            for batch in batches:
                # The backlog is re-read on every loop pass: the
                # consumer (or a mutator thread) can grow the log while
                # the generator is suspended at a drain yield, and a
                # stale reading would submit a giant suffix into pipes
                # still carrying in-flight replies.
                while self._inflight and (
                    len(self._inflight) >= self.depth
                    or self._mutation_backlog()
                    > self.MAX_PIPELINED_MUTATION_BACKLOG
                ):
                    yield self._collect()
                if not self._submit(batch):
                    # Empty batches produce empty results but occupy no
                    # ring slot (there is nothing for a worker to do);
                    # splice the placeholder in once the preceding
                    # batches land.
                    while self._inflight:
                        yield self._collect()
                    yield []
            while self._inflight:
                yield self._collect()
        finally:
            self._streaming = False

    def submit_batch(
        self,
        batch: Sequence[Mapping[str, int]],
        *,
        megaflow_bypass: bool = False,
    ) -> int:
        """Dispatch one non-empty batch without waiting for its results;
        returns its ``seq`` (collect with :meth:`collect_batch` — FIFO
        by default, or by ``seq`` in any order — or :meth:`collect_any`).
        Never blocks or collects internally: submitting beyond
        :attr:`depth` raises, so callers own the collect cadence
        explicitly — and an empty batch raises rather than silently
        occupying no slot and skewing the submit/collect pairing.  Also
        raises when an out-of-order collect left the new batch's ring
        slot occupied (slot ``seq % depth`` is reused only after its
        previous occupant was collected), or when the mutation backlog
        has outgrown what can safely share the pipe with in-flight
        replies (see :data:`MAX_PIPELINED_MUTATION_BACKLOG`): collect
        first, then resubmit."""
        if not batch:
            raise ValueError(
                "cannot submit an empty batch (it would occupy no ring "
                "slot and break the submit/collect pairing)"
            )
        if self._streaming:
            raise RuntimeError(
                "a process_batches() stream is live; exhaust or close "
                "it before submit_batch()"
            )
        if len(self._inflight) >= self.depth:
            raise RuntimeError(
                f"{len(self._inflight)} batches already in flight "
                f"(depth={self.depth}); collect_batch() first"
            )
        slot = self._seq % self.depth
        stuck = [s for s in self._inflight if s % self.depth == slot]
        if stuck:
            raise RuntimeError(
                f"batch seq {stuck[0]} still occupies ring slot {slot}; "
                "collect it before submitting another batch on that slot"
            )
        if self._inflight and (
            self._mutation_backlog() > self.MAX_PIPELINED_MUTATION_BACKLOG
        ):
            raise RuntimeError(
                f"mutation backlog ({self._mutation_backlog()}) too large "
                "to pipeline safely alongside in-flight replies; "
                "collect_batch() first"
            )
        seq = self._seq
        self._submit(batch, bypass=megaflow_bypass)
        return seq

    def collect_batch(self, seq: int | None = None) -> list[PipelineResult]:
        """Results of one in-flight batch — the oldest by default, or
        the given ``seq`` in any order; raises when it is not in flight.

        Collection by ``seq`` never blocks on workers that batch did not
        touch: replies from other in-flight batches arriving first are
        parked (per-worker pipes deliver in submission order) and handed
        out when their own batch is collected — so a slow shard stalls
        only the batches actually assigned to it.
        """
        if seq is None:
            if not self._order:
                raise RuntimeError("no batch in flight")
            seq = self._order[0]
        elif seq not in self._inflight:
            raise RuntimeError(f"batch seq {seq} is not in flight")
        return self._collect(seq)

    def collect_any(self) -> tuple[int, list[PipelineResult]]:
        """``(seq, results)`` of the first in-flight batch able to
        complete, regardless of submission order.

        Waits on every worker pipe carrying outstanding replies *plus*
        each worker's process sentinel
        (``multiprocessing.connection.wait``), parking each arrival
        until some batch has all of its shards' replies — so a stalled
        shard delays only its own batches while faster shards' batches
        keep completing.  A dead worker is recovered on the spot
        (respawn + replay, or degraded fallback); with a supervision
        deadline configured, a wait that makes no progress past it
        declares the laggiest worker wedged and escalates, so this
        never blocks indefinitely.
        """
        if not self._inflight:
            raise RuntimeError("no batch in flight")
        config = self._supervisor.config
        started = time.monotonic()  # repro-lint: disable=wall-clock-ban
        interval = config.initial_interval
        while True:
            for seq in self._order:
                groups = self._inflight[seq].groups
                if all(
                    (seq, worker) in self._reply_buffer for worker in groups
                ):
                    return seq, self._collect(seq)
            waitables: dict[Any, int] = {}
            for worker in range(self.workers):
                if self._worker_pending[worker]:
                    waitables[self._conns[worker]] = worker
                    waitables[self._procs[worker].sentinel] = worker
            assert waitables, "incomplete batches but no replies pending"
            timeout: float | None = None
            if config.deadline is not None:
                elapsed = time.monotonic() - started  # repro-lint: disable=wall-clock-ban
                if elapsed >= config.deadline:
                    self._handle_failure(
                        self._oldest_pending_worker(), "wedge"
                    )
                    started = time.monotonic()  # repro-lint: disable=wall-clock-ban
                    interval = config.initial_interval
                    continue
                timeout = min(interval, config.deadline - elapsed)
                interval = min(interval * 2, config.max_interval)
            ready = mp_connection.wait(list(waitables), timeout)
            progressed = False
            for worker in dict.fromkeys(waitables[obj] for obj in ready):
                try:
                    if not self._conns[worker].poll(0):
                        # Sentinel fired with a dry pipe: a real death.
                        raise _WorkerDied(worker, "crash")
                    progressed |= self._absorb_one(worker)
                except _WorkerDied as died:
                    self._handle_failure(worker, died.kind)
                    progressed = True
            if progressed:
                started = time.monotonic()  # repro-lint: disable=wall-clock-ban
                interval = config.initial_interval

    def _oldest_pending_worker(self) -> int:
        """The wedge suspect: the worker owing the oldest-submitted
        outstanding reply (replies arrive in submission order, so its
        pending head is the globally most overdue one)."""
        owing = [w for w in range(self.workers) if self._worker_pending[w]]
        assert owing, "wedge escalation with no outstanding replies"
        return min(owing, key=lambda w: self._worker_pending[w][0])

    @property
    def in_flight(self) -> int:
        """Batches submitted but not yet collected."""
        return len(self._inflight)

    # -- dispatch/collect internals ------------------------------------

    def _submit(
        self, batch: Sequence[Mapping[str, int]], bypass: bool = False
    ) -> bool:
        """Encode, dispatch and register one batch; False when empty.

        ``bypass`` rides in every worker's request template (and the
        in-flight record for degraded shards), so replays after a crash
        skip — or keep — the megaflow tier exactly as the original
        submission asked."""
        assert len(self._inflight) < self.depth
        # _order mirrors _inflight one-to-one, so the same depth bound
        # caps it (the bounded-queue invariant for this deque).
        assert len(self._order) < self.depth
        assert all(
            seq % self.depth != self._seq % self.depth
            for seq in self._inflight
        ), "ring slot still occupied by an uncollected batch"
        self.packets += len(batch)
        self.batches += 1
        if not len(batch):
            return False
        self._ensure_started()
        # One atomic snapshot per *submitted* batch, under the mutation
        # lock: the log length (every worker catches up to the same
        # point) and the authoritative entry order (worker entry refs
        # resolve against this, not whatever the tables look like by
        # reply time).  Each in-flight batch carries its own snapshot
        # pair, so a mutation landing between two pipelined submissions
        # is visible to the second batch and not the first — exactly the
        # serial order a lockstep runner would have produced — and a
        # mutation landing while sub-batches are in flight defers
        # uniformly to the next submission.
        with self._mutation_lock:
            log_len = len(self._log)
            pinned = self._entry_index.pin()
        seq = self._seq
        groups = self._shard_groups(batch)
        if self.transport == "shm":
            sends = self._encode_shm(seq, batch, groups, bypass)
        else:
            sends = self._encode_pickle(seq, batch, groups, bypass)
        # Registered before dispatch: a send that trips over a corpse
        # recovers mid-submit, and recovery reads the in-flight record.
        self._inflight[seq] = _InFlight(
            seq=seq,
            batch=batch,
            groups=groups,
            pinned=pinned,
            log_len=log_len,
            sends=sends,
            bypass=bypass,
        )
        self._order.append(seq)
        self._seq += 1
        for worker in groups:
            if worker in self._supervisor.disabled:
                self._classify_inline(seq, worker)
            else:
                self._dispatch_or_recover(seq, worker)
        return True

    def _encode_pickle(
        self,
        seq: int,
        batch: Sequence[Mapping[str, int]] | PacketBatch,
        groups: Mapping[int, list[int]],
        bypass: bool = False,
    ) -> dict[int, BatchRequest | ShmRequest]:
        """Request templates (empty mutation suffix) per live worker."""
        return {
            worker: BatchRequest(
                "batch", seq, (), [batch[i] for i in members], bypass
            )
            for worker, members in groups.items()
            if worker not in self._supervisor.disabled
        }

    def _encode_shm(
        self,
        seq: int,
        batch: Sequence[Mapping[str, int]] | PacketBatch,
        groups: Mapping[int, list[int]],
        bypass: bool = False,
    ) -> dict[int, BatchRequest | ShmRequest]:
        """Encode the batch once into its ring slot; request templates
        (empty mutation suffix) per live worker."""
        live = [
            worker
            for worker in groups
            if worker not in self._supervisor.disabled
        ]
        if not live:
            return {}
        slot = seq % self.depth
        request = self._requests[slot]
        writer = BlockWriter()
        layout = self._codec.encode(writer, batch, "pkt")
        for worker in live:
            writer.put(
                f"members/{worker}",
                np.asarray(groups[worker], dtype=np.int64),
            )
        request.ensure(writer.nbytes)
        segments = writer.write_to(request.buf)
        # A batch submitted columnar is classified columnar: the worker
        # attaches to the block's columns in place (decode-free) instead
        # of materialising every member row up front.
        columnar = isinstance(batch, PacketBatch)
        return {
            worker: ShmRequest(
                "shm",
                seq,
                slot,
                (),
                request.name,
                segments,
                layout,
                f"members/{worker}",
                columnar,
                bypass,
            )
            for worker in live
        }

    def _dispatch(self, seq: int, worker: int) -> bool:
        """Send batch ``seq``'s template to ``worker`` with the log
        suffix recomputed from its current cursor; False when the pipe
        is already broken.  Serves first sends and replays alike — the
        template is immutable, only the suffix depends on the cursor."""
        inflight = self._inflight[seq]
        template = inflight.sends[worker]
        suffix = tuple(self._log[self._cursors[worker] : inflight.log_len])
        self._cursors[worker] = inflight.log_len
        try:
            self._conns[worker].send(template._replace(mutations=suffix))
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False
        return True

    def _dispatch_or_recover(self, seq: int, worker: int) -> None:
        """First send of ``seq`` to ``worker``; a corpse discovered at
        send time is recovered (respawn or degrade) before the batch is
        queued — possibly onto the in-process fallback."""
        while worker not in self._supervisor.disabled:
            if self._dispatch(seq, worker):
                # A worker owes at most one reply per in-flight batch,
                # so its pending deque is depth-bounded too.
                assert len(self._worker_pending[worker]) < self.depth
                self._worker_pending[worker].append(seq)
                return
            self._handle_failure(worker, "crash")
        self._classify_inline(seq, worker)

    def _take_reply(
        self, seq: int, worker: int
    ) -> PickleReply | ShmReply | InlineReply:
        """The reply ``worker`` sent for batch ``seq``.

        A worker's pipe delivers replies in the order its batches were
        submitted, so anything received while waiting belongs to an
        earlier-submitted (still in-flight) batch and is parked in the
        reply buffer for that batch's own collect.  A worker that died
        is recovered here: after a respawn-and-replay the loop resumes
        waiting on the replacement, after a degraded fallback the reply
        is already parked inline.
        """
        reply = self._reply_buffer.pop((seq, worker), None)
        while reply is None:
            try:
                self._recv_reply(worker)
            except _WorkerDied as died:
                self._handle_failure(worker, died.kind)
            reply = self._reply_buffer.pop((seq, worker), None)
        return reply

    def _recv_reply(self, worker: int) -> None:
        """Wait (sentinel-aware, deadline-bounded) for one reply from
        ``worker`` and park it; raises :class:`_WorkerDied` on a crash
        or deadline expiry."""
        while True:
            outcome = await_readable(
                self._conns[worker],
                self._procs[worker].sentinel,
                self._supervisor.config,
            )
            if outcome != "ready":
                raise _WorkerDied(worker, outcome)
            if self._absorb_one(worker):
                return

    def _absorb_one(self, worker: int) -> bool:
        """Receive one buffered message from ``worker``; True when it
        was a reply (now parked), False for a control rider (a block
        announcement).  The pipe must be readable."""
        conn = self._conns[worker]
        if not conn.poll(0):
            return False
        try:
            message = conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise _WorkerDied(worker, "crash") from exc
        if message[0] == "block":
            self._supervisor.register_block(worker, message[2])
            return False
        if message[0] == "ok" and self.transport == "shm":
            self._supervisor.register_block(worker, message[1])
        arrived = self._worker_pending[worker].popleft()
        self._reply_buffer[(arrived, worker)] = message
        return True

    def _collect(self, seq: int | None = None) -> list[PipelineResult]:
        """Receive, decode and merge one in-flight batch (oldest by
        default)."""
        if seq is None:
            seq = self._order[0]
        inflight = self._inflight[seq]
        batch, groups, pinned = inflight.batch, inflight.groups, inflight.pinned
        results: list[PipelineResult] = [None] * len(batch)  # type: ignore[list-item]
        for worker, members in groups.items():
            reply = self._take_reply(seq, worker)
            assert reply[0] in ("ok", "inline")
            if reply[0] == "inline":
                _, worker_results, stats, delta = reply
            elif self.transport == "shm":
                worker_results, mask_fields, stats, delta = (
                    self._decode_reply(
                        reply, pinned, [batch[i] for i in members]
                    )
                )
                self._learned_fields.update(mask_fields)
            else:
                _, worker_results, mask_fields, stats, delta = reply
                self._learned_fields.update(mask_fields)
            for i, result in zip(members, worker_results):
                results[i] = result
            self._worker_stats[worker] = stats
            merged_packets, merged_bytes = delta.apply(pinned)
            self.flow_packets += merged_packets
            self.flow_bytes += merged_bytes
        # Popped only after every reply landed: recovery during the
        # waits above re-reads this in-flight record to replay it.
        del self._inflight[seq]
        self._order.remove(seq)
        for result in results:
            self.matched += bool(result.matched_entries)
            self.sent_to_controller += result.sent_to_controller
            self.dropped += result.dropped
        self._maybe_prune_log(inflight.log_len)
        return results

    # -- failure recovery ----------------------------------------------

    def _handle_failure(self, worker: int, kind: str) -> None:
        """Recover one dead (or wedged) worker.

        In order: escalate a wedge to a kill; drain replies the worker
        delivered before dying (they are valid — replaying them would
        double-count flow stats); unlink every shm segment the corpse
        owned (its own finalize guards died with it); classify the
        failure against the poison ledger and the restart budget; then
        either respawn a replacement and deterministically replay every
        lost seq, or degrade the shard to in-process classification.
        """
        sup = self._supervisor
        proc = self._procs[worker]
        if kind == "wedge":
            proc.kill()  # deadline lapsed: escalate to termination
        sup.record_failure(worker, "wedge" if kind == "wedge" else "crash")
        proc.join(timeout=self.CLOSE_TIMEOUT)
        self._drain_dead_pipe(worker)
        self._conns[worker].close()
        if self.transport == "shm":
            # Replies parked before death still point into the dead
            # worker's blocks: attach them now so the views survive the
            # unlink below until their batches are decoded.
            for (_, w), reply in self._reply_buffer.items():
                if w == worker and reply[0] == "ok":
                    self._responses.buf(reply[1])
        for name in sup.drain_blocks(worker):
            unlink_segment(name)
        lost = list(self._worker_pending[worker])
        poison = (
            lost[0] if lost and sup.record_death_at(lost[0]) else None
        )
        # The replacement (if any) must not re-run non-sticky faults
        # that already fired: workers serve their pipe in order, so
        # everything at or below the pending head has been reached.
        if self._fault_plan:
            self._fault_plan = self._fault_plan.pruned(
                worker, lost[0] if lost else self._seq
            )
        if poison is not None and sup.config.fallback == "raise":
            raise PoisonBatchError(
                f"batch seq {poison} killed worker {worker} twice"
            )
        if not sup.within_budget(worker):
            if sup.config.fallback == "raise":
                raise WorkerCrashError(
                    f"worker {worker} exceeded its restart budget "
                    f"({sup.config.restart_budget})"
                )
            sup.disable(worker)
            self._worker_pending[worker].clear()
            for seq in lost:
                self._classify_inline(seq, worker)
            return
        conn, proc = self._spawn_worker(worker)
        self._conns[worker] = conn
        self._procs[worker] = proc
        self._cursors[worker] = 0
        self._worker_stats[worker] = BatchStats()
        sup.stats.restarts += 1
        # Deterministic replay: each lost seq re-sent in order, the log
        # suffix recomputed against the fresh replica's zero cursor and
        # the batch's pinned log length — bitwise the same classification
        # the dead worker would have produced.  A poison seq skips the
        # pipe and classifies in-process instead.
        pending = self._worker_pending[worker]
        for seq in lost:
            if seq == poison:
                pending.remove(seq)
                self._classify_inline(seq, worker)
                continue
            if self._dispatch(seq, worker):
                sup.stats.replayed_batches += 1
            else:
                # The replacement died before accepting the replay;
                # recurse (bounded by the restart budget).
                self._handle_failure(worker, "crash")
                return

    def _drain_dead_pipe(self, worker: int) -> None:
        """Salvage messages a dying worker managed to send: pipes
        outlive their writer, and a reply that was delivered must not
        be replayed (double classification, double flow-stats)."""
        conn = self._conns[worker]
        while True:
            try:
                if not conn.poll(0):
                    return
                message = conn.recv()
            except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
                return
            if message[0] == "block":
                self._supervisor.register_block(worker, message[2])
            elif message[0] == "ok" and self._worker_pending[worker]:
                if self.transport == "shm":
                    self._supervisor.register_block(worker, message[1])
                arrived = self._worker_pending[worker].popleft()
                self._reply_buffer[(arrived, worker)] = message

    def _classify_inline(self, seq: int, worker: int) -> None:
        """Classify ``worker``'s share of batch ``seq`` in-process and
        park the reply.

        The degraded path must stay bitwise-identical to a live worker:
        the parent keeps its own replica built from the same spec and
        advanced along the same mutation log to exactly the batch's
        pinned ``log_len`` — so results, stats and the flow-stats delta
        match what the dead shard would have sent.  A replay can demand
        an older log position than the replica has already advanced
        past; the replica is then rebuilt from the spec (position 0).
        """
        inflight = self._inflight[seq]
        members = inflight.groups[worker]
        runner = self._inline_runner
        if runner is None or self._inline_cursor > inflight.log_len:
            # Pickle round-trip the spec exactly as a worker spawn
            # would: the spec (and the log) reference the parent's
            # *authoritative* FlowEntry objects, and classifying on
            # those would record flow stats directly into them — which
            # the delta apply below would then double-count.
            spec: PipelineSpec = pickle.loads(pickle.dumps(self._spec))
            runner = BatchPipeline(
                spec.build(),
                cache_capacity=self._cache_capacity,
                megaflow_capacity=self._megaflow_capacity,
            )
            self._inline_runner = runner
            self._inline_index = EntryIndex(runner.pipeline)
            self._inline_cursor = 0
        suffix: tuple[Mutation, ...] = pickle.loads(
            pickle.dumps(tuple(self._log[self._inline_cursor : inflight.log_len]))
        )
        _apply_mutations(runner.pipeline, suffix)
        self._inline_cursor = inflight.log_len
        packets = [inflight.batch[i] for i in members]
        runner.megaflow_bypass = inflight.bypass
        results = runner.process_batch(packets)
        runner.megaflow_bypass = False
        assert self._inline_index is not None
        delta = FlowStatsDelta.from_results(results, self._inline_index)
        self._reply_buffer[(seq, worker)] = InlineReply(
            "inline", results, runner.stats_snapshot(), delta
        )
        self._supervisor.stats.inline_packets += len(packets)

    def _decode_reply(
        self,
        reply: ShmReply,
        pinned: Mapping[int, tuple[FlowEntry, ...]],
        inputs: Sequence[Mapping[str, int]],
    ) -> tuple[
        list[PipelineResult], tuple[str, ...], BatchStats, FlowStatsDelta
    ]:
        (
            _,
            block_name,
            segments,
            result_layout,
            vocabulary,
            mask_fields,
            stats,
            delta,
        ) = reply
        reader = BlockReader(self._responses.buf(block_name), segments)
        worker_results = decode_results(
            reader,
            result_layout,
            vocabulary,
            lambda table_id, position: pinned[table_id][position],
            inputs=inputs,
        )
        return worker_results, mask_fields, stats, delta

    def _maybe_prune_log(self, log_len: int) -> None:
        """Bound the mutation log under long churn.

        Once every live worker has replayed the whole log, fold the
        current authoritative state into the replica snapshot and drop
        the log — a later respawn (lazy start, recovery, or
        close()/reuse) then builds from the fresh snapshot instead of
        replaying history.  Pruning waits for full catch-up, so a
        worker the hash never feeds can delay it; steady traffic
        reaches every worker and keeps the log short.  Degraded workers
        are exempt (their cursors are dead), so churn past a disabled
        shard still prunes.
        """
        if log_len < 1024:
            return
        if any(
            cursor != log_len
            for worker, cursor in enumerate(self._cursors)
            if worker not in self._supervisor.disabled
        ):
            return
        # Recovery must be able to replay any in-flight batch at its
        # pinned log position; a batch pinned *before* this prune point
        # would need history the prune is about to drop, so wait for it
        # to land (FIFO streaming collects it first anyway).
        if any(
            inflight.log_len != log_len
            for inflight in self._inflight.values()
        ):
            return
        with self._mutation_lock:
            if len(self._log) != log_len:
                return  # a mutator slipped in; prune on a later batch
            self._spec = PipelineSpec.snapshot(self._authoritative)
            if self._shared_rules:
                # Re-seal at the fold point so future spawns (recovery
                # respawns included) attach instead of replaying the
                # authoritative state.  Long-lived workers never attach
                # to the new block — tables they already thawed stay
                # private, still-frozen ones keep valid mappings of the
                # old (now unlinked) generation.
                old_state = self._rule_state
                self._rule_state = SharedRuleState.seal(
                    self._authoritative, self._spec
                )
                self._spec = self._rule_state.spec
                if old_state is not None:
                    old_state.close()
            self._log.clear()
            self._cursors = [0] * self.workers
            # The fresh spec *is* the table state at the old log's end,
            # so everything still in flight (all pinned exactly there,
            # per the guard above) rebases to prefix 0 of the now-empty
            # log — a recovery replay then applies no suffix at all.
            for inflight in self._inflight.values():
                inflight.log_len = 0
            # The inline replica's cursor died with the log; rebuild
            # from the new spec on next use.
            self._inline_runner = None
            self._inline_index = None
            self._inline_cursor = 0

    # -- stats ---------------------------------------------------------

    def stats_snapshot(self) -> BatchStats:
        """Parent-side traffic counters merged with the workers' cache,
        megaflow and wave counters (as of each worker's last reply).

        ``flow_packets`` / ``flow_bytes`` come from the parent's own
        merged deltas (authoritative), never the worker snapshots — the
        workers' copies would double-count them.
        """
        stats = BatchStats(
            packets=self.packets,
            batches=self.batches,
            matched=self.matched,
            sent_to_controller=self.sent_to_controller,
            dropped=self.dropped,
            flow_packets=self.flow_packets,
            flow_bytes=self.flow_bytes,
            advances=self.lifecycle.stats.advances,
            expired=self.lifecycle.stats.expired,
        )
        for worker_stats in self._worker_stats:
            stats.cache_hits += worker_stats.cache_hits
            stats.cache_misses += worker_stats.cache_misses
            stats.megaflow_hits += worker_stats.megaflow_hits
            stats.megaflow_misses += worker_stats.megaflow_misses
            stats.waves += worker_stats.waves
        return stats

    def supervision_snapshot(self) -> dict[str, int]:
        """Cumulative recovery counters: crashes, wedges, restarts,
        replayed batches, poison batches and inline-classified packets.
        All zero on a healthy run — the benchmark gate records (but
        never bands) these, so any nonzero value in a perf report flags
        a run whose timings included recovery work."""
        return self._supervisor.stats.as_dict()
