"""Exact-match microflow cache (the Open vSwitch fast-path pattern).

A :class:`MicroflowCache` sits in front of one flow table and memoizes
full lookups keyed on the *exact* tuple of the table's match-field values
— the definition of a microflow.  Two packets with identical header
fields necessarily classify identically, so a cache hit skips the whole
decomposition (or scan) path.

Invalidation is per-entry **revalidation**, not a wholesale flush: every
cached record is stamped with the table's ``version`` mutation counter —
bumped by ``add`` / ``remove`` / ``remove_where`` on both
:class:`~repro.openflow.table.FlowTable` and
:class:`~repro.core.lookup_table.OpenFlowLookupTable` — at resolution
time.  A later access finding the stamp stale re-resolves just that key
against the table and refreshes the record in place, so a flow-mod costs
one table lookup per *re-touched* key instead of evicting the whole
working set (the PR-1 behaviour).  Mutating the table directly (not
through any wrapper) stays safe.

Misses are cached too (negative caching): a miss is just another
classification outcome, and the stale-stamp rule keeps it correct.

The cache also participates in megaflow capture: pass a consulted-bits
sink (``mask=``, see :mod:`repro.runtime.megaflow`) and the table's raw
consulted-bits masks are captured on miss, stored with the record, and
replayed into the sink on every hit — so a traversal resolved from the
microflow tier still produces a sound wildcard mask.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

from repro.openflow.flow import FlowEntry
from repro.openflow.match import FieldMaskSink
from repro.packet.headers import frame_length

#: Sentinel distinguishing a cached miss from an absent key.
_MISS = object()

DEFAULT_CAPACITY = 4096


class _Record:
    """One cached microflow: outcome, version stamp, consulted bits."""

    __slots__ = ("outcome", "version", "mask")

    def __init__(self, outcome, version: int, mask: dict[str, int] | None):
        self.outcome = outcome
        self.version = version
        self.mask = mask


class MicroflowCache:
    """LRU exact-match cache in front of one flow table.

    Args:
        table: the backing table; must expose ``lookup`` and a
            ``version`` mutation counter.  ``lookup_batch`` is used for
            miss resolution when available.
        capacity: maximum cached microflows; least recently used entries
            are evicted beyond it.
        field_names: the match schema the cache keys on; defaults to the
            table's own ``field_names``.
    """

    def __init__(
        self,
        table,
        capacity: int = DEFAULT_CAPACITY,
        field_names: tuple[str, ...] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        names = field_names if field_names is not None else getattr(
            table, "field_names", None
        )
        if names is None:
            raise ValueError(
                "table has no field_names; pass field_names= explicitly"
            )
        if not hasattr(table, "version"):
            raise ValueError(
                "table exposes no version counter; the cache cannot "
                "detect mutations and would serve stale results"
            )
        self.table = table
        self.capacity = capacity
        self.field_names = tuple(names)
        self._entries: OrderedDict[tuple, _Record] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        #: Stale-stamp accesses that re-resolved an existing key in place.
        self.revalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(self, packet_fields: Mapping[str, int]) -> tuple:
        """The microflow key: the exact tuple of schema-field values."""
        return tuple(packet_fields.get(name) for name in self.field_names)

    def flush(self) -> None:
        """Drop every cached microflow (explicit only; mutations do not
        flush — they stale-stamp, and records revalidate on access)."""
        if self._entries:
            self.flushes += 1
        self._entries.clear()

    def lookup(
        self, packet_fields: Mapping[str, int], mask=None
    ) -> FlowEntry | None:
        """Cached highest-priority match for one packet.

        ``mask``, when given, receives the table's consulted bits for
        this key (captured on miss, replayed from the record on hit).
        """
        version = self.table.version
        key = self.key(packet_fields)
        record = self._entries.get(key)
        if record is not None and record.version == version:
            self.hits += 1
            self._entries.move_to_end(key)
            if mask is not None:
                if record.mask is None:
                    record.mask = self._capture_mask(packet_fields)
                _replay_mask(record.mask, mask)
            return self._outcome(record, packet_fields)
        if record is not None:
            self.revalidations += 1
        self.misses += 1
        outcome, captured = self._resolve(packet_fields, mask is not None)
        if mask is not None:
            assert captured is not None
            _replay_mask(captured, mask)
        self._insert(key, outcome, version, captured)
        return outcome

    def lookup_batch(
        self,
        batch_fields: Sequence[Mapping[str, int]],
        masks: Sequence | None = None,
    ) -> list[FlowEntry | None]:
        """Cached batch lookup: hits resolve from the cache, the misses go
        to the table's batch path in one call.

        ``masks``, when given, is one consulted-bits sink per packet,
        aligned with ``batch_fields``; miss resolution then runs
        per-packet through the table's mask-threading scalar path.
        """
        version = self.table.version
        results: list[FlowEntry | None] = [None] * len(batch_fields)
        miss_positions: list[int] = []
        miss_fields: list[Mapping[str, int]] = []
        for i, fields in enumerate(batch_fields):
            key = self.key(fields)
            record = self._entries.get(key)
            if record is not None and record.version == version:
                self.hits += 1
                self._entries.move_to_end(key)
                if masks is not None:
                    if record.mask is None:
                        record.mask = self._capture_mask(fields)
                    _replay_mask(record.mask, masks[i])
                results[i] = self._outcome(record, fields)
            else:
                if record is not None:
                    self.revalidations += 1
                self.misses += 1
                miss_positions.append(i)
                miss_fields.append(fields)
        if miss_fields:
            if masks is not None:
                # Mask capture forces the scalar resolution path, but
                # duplicate keys — the common case in skewed traffic —
                # still resolve once per batch and replay their captured
                # mask (with a stats record per packet, matching the
                # scalar path).
                resolved = []
                memo: dict[tuple, tuple] = {}
                for position, fields in zip(miss_positions, miss_fields):
                    key = self.key(fields)
                    cached = memo.get(key)
                    if cached is None:
                        cached = self._resolve(fields, True)
                        memo[key] = cached
                        self._insert(key, cached[0], version, cached[1])
                    else:
                        if cached[0] is not None:
                            cached[0].stats.record(frame_length(fields))
                    outcome, captured = cached
                    assert captured is not None
                    _replay_mask(captured, masks[position])
                    resolved.append(outcome)
            elif hasattr(self.table, "lookup_batch"):
                resolved = self.table.lookup_batch(miss_fields)
                for fields, outcome in zip(miss_fields, resolved):
                    self._insert(self.key(fields), outcome, version, None)
            else:
                resolved = []
                for fields in miss_fields:
                    outcome = self.table.lookup(fields)
                    self._insert(self.key(fields), outcome, version, None)
                    resolved.append(outcome)
            for position, outcome in zip(miss_positions, resolved):
                results[position] = outcome
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _outcome(
        self, record: _Record, packet_fields: Mapping[str, int]
    ) -> FlowEntry | None:
        """Resolve a cache hit, recording the *hitting* packet's frame
        length (records are shared across every packet of the microflow,
        but byte counters are per packet)."""
        if record.outcome is _MISS:
            return None
        entry = record.outcome
        assert isinstance(entry, FlowEntry)
        entry.stats.record(frame_length(packet_fields))
        return entry

    def _resolve(
        self, packet_fields: Mapping[str, int], want_mask: bool
    ) -> tuple[FlowEntry | None, dict[str, int] | None]:
        if want_mask:
            sink = FieldMaskSink()
            return self.table.lookup(packet_fields, mask=sink), sink.fields
        return self.table.lookup(packet_fields), None

    def _capture_mask(self, packet_fields: Mapping[str, int]) -> dict[str, int]:
        """Backfill the consulted-bits mask for a record cached without
        one (the cache was used mask-less first); the mask is a pure
        function of the key and the table's current structures.

        Prefers the table's side-effect-free ``consulted_mask`` so a
        cache *hit* never double-counts lookup counters or flow stats;
        the lookup fallback covers schema-only table stand-ins.
        """
        consulted = getattr(self.table, "consulted_mask", None)
        if consulted is not None:
            return consulted(packet_fields)
        sink = FieldMaskSink()
        self.table.lookup(packet_fields, mask=sink)
        return sink.fields

    def _insert(
        self,
        key: tuple,
        entry: FlowEntry | None,
        version: int,
        mask: dict[str, int] | None,
    ) -> None:
        self._entries[key] = _Record(
            _MISS if entry is None else entry, version, mask
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


def _replay_mask(captured: dict[str, int], mask) -> None:
    for name, bits in captured.items():
        mask.consult(name, bits)
