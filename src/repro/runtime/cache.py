"""Exact-match microflow cache (the Open vSwitch fast-path pattern).

A :class:`MicroflowCache` sits in front of one flow table and memoizes
full lookups keyed on the *exact* tuple of the table's match-field values
— the definition of a microflow.  Two packets with identical header
fields necessarily classify identically, so a cache hit skips the whole
decomposition (or scan) path.

Invalidation is per-entry **revalidation**, not a wholesale flush: every
cached record is stamped with the table's ``version`` mutation counter —
bumped by ``add`` / ``remove`` / ``remove_where`` on both
:class:`~repro.openflow.table.FlowTable` and
:class:`~repro.core.lookup_table.OpenFlowLookupTable` — at resolution
time.  A later access finding the stamp stale re-resolves just that key
against the table and refreshes the record in place, so a flow-mod costs
one table lookup per *re-touched* key instead of evicting the whole
working set (the PR-1 behaviour).  Mutating the table directly (not
through any wrapper) stays safe.

Misses are cached too (negative caching): a miss is just another
classification outcome, and the stale-stamp rule keeps it correct.

The cache also participates in megaflow capture: pass a consulted-bits
sink (``mask=``, see :mod:`repro.runtime.megaflow`) and the table's raw
consulted-bits masks are captured on miss, stored with the record, and
replayed into the sink on every hit — so a traversal resolved from the
microflow tier still produces a sound wildcard mask.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.openflow.flow import FlowEntry
from repro.openflow.match import ConsultSink, FieldMaskSink
from repro.packet.batch import PacketBatch
from repro.packet.headers import frame_length

#: Sentinel distinguishing a cached miss from an absent key.
_MISS = object()

DEFAULT_CAPACITY = 4096


class _Record:
    """One cached microflow: outcome, version stamp, consulted bits.

    ``key`` is the canonical tuple key; ``chash`` / ``sig`` / ``packed``
    are populated when the record entered (or was touched by) the
    columnar fast path — the vectorized probe keys on the uint64 hash
    and verifies against the exact packed bytes, so hash collisions
    degrade to misses instead of wrong hits.
    """

    __slots__ = ("outcome", "version", "mask", "key", "chash", "sig", "packed")

    def __init__(
        self,
        outcome: FlowEntry | object,  # a FlowEntry or the _MISS sentinel
        version: int,
        mask: dict[str, int] | None,
    ) -> None:
        self.outcome = outcome
        self.version = version
        self.mask = mask
        self.key: tuple = ()
        self.chash: int | None = None
        self.sig = None
        self.packed: bytes | None = None


class MicroflowCache:
    """LRU exact-match cache in front of one flow table.

    Args:
        table: the backing table; must expose ``lookup`` and a
            ``version`` mutation counter.  ``lookup_batch`` is used for
            miss resolution when available.
        capacity: maximum cached microflows; least recently used entries
            are evicted beyond it.
        field_names: the match schema the cache keys on; defaults to the
            table's own ``field_names``.
    """

    def __init__(
        self,
        table: Any,
        capacity: int = DEFAULT_CAPACITY,
        field_names: tuple[str, ...] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        names = field_names if field_names is not None else getattr(
            table, "field_names", None
        )
        if names is None:
            raise ValueError(
                "table has no field_names; pass field_names= explicitly"
            )
        if not hasattr(table, "version"):
            raise ValueError(
                "table exposes no version counter; the cache cannot "
                "detect mutations and would serve stale results"
            )
        self.table = table
        self.capacity = capacity
        self.field_names = tuple(names)
        self._entries: OrderedDict[tuple, _Record] = OrderedDict()
        #: Columnar sidecar index: uint64 key hash -> record (verified
        #: against the record's packed key bytes on every probe).
        self._columnar: dict[int, _Record] = {}
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        #: Stale-stamp accesses that re-resolved an existing key in place.
        self.revalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(self, packet_fields: Mapping[str, int]) -> tuple:
        """The microflow key: the exact tuple of schema-field values."""
        return tuple(packet_fields.get(name) for name in self.field_names)

    def flush(self) -> None:
        """Drop every cached microflow (explicit only; mutations do not
        flush — they stale-stamp, and records revalidate on access)."""
        if self._entries:
            self.flushes += 1
        self._entries.clear()
        self._columnar.clear()

    def lookup(
        self,
        packet_fields: Mapping[str, int],
        mask: ConsultSink | None = None,
    ) -> FlowEntry | None:
        """Cached highest-priority match for one packet.

        ``mask``, when given, receives the table's consulted bits for
        this key (captured on miss, replayed from the record on hit).
        """
        version = self.table.version
        key = self.key(packet_fields)
        record = self._entries.get(key)
        if record is not None and record.version == version:
            self.hits += 1
            self._entries.move_to_end(key)
            if mask is not None:
                if record.mask is None:
                    record.mask = self._capture_mask(packet_fields)
                _replay_mask(record.mask, mask)
            return self._outcome(record, packet_fields)
        if record is not None:
            self.revalidations += 1
        self.misses += 1
        outcome, captured = self._resolve(packet_fields, mask is not None)
        if mask is not None:
            assert captured is not None
            _replay_mask(captured, mask)
        self._insert(key, outcome, version, captured)
        return outcome

    def lookup_batch(
        self,
        batch_fields: Sequence[Mapping[str, int]],
        masks: Sequence[ConsultSink] | None = None,
    ) -> list[FlowEntry | None]:
        """Cached batch lookup: hits resolve from the cache, the misses go
        to the table's batch path in one call.

        ``masks``, when given, is one consulted-bits sink per packet,
        aligned with ``batch_fields``; miss resolution then runs
        per-packet through the table's mask-threading scalar path.
        """
        version = self.table.version
        results: list[FlowEntry | None] = [None] * len(batch_fields)
        miss_positions: list[int] = []
        miss_fields: list[Mapping[str, int]] = []
        for i, fields in enumerate(batch_fields):
            key = self.key(fields)
            record = self._entries.get(key)
            if record is not None and record.version == version:
                self.hits += 1
                self._entries.move_to_end(key)
                if masks is not None:
                    if record.mask is None:
                        record.mask = self._capture_mask(fields)
                    _replay_mask(record.mask, masks[i])
                results[i] = self._outcome(record, fields)
            else:
                if record is not None:
                    self.revalidations += 1
                self.misses += 1
                miss_positions.append(i)
                miss_fields.append(fields)
        if miss_fields:
            if masks is not None:
                # Mask capture forces the scalar resolution path, but
                # duplicate keys — the common case in skewed traffic —
                # still resolve once per batch and replay their captured
                # mask (with a stats record per packet, matching the
                # scalar path).
                resolved = []
                memo: dict[tuple, tuple] = {}
                for position, fields in zip(miss_positions, miss_fields):
                    key = self.key(fields)
                    cached = memo.get(key)
                    if cached is None:
                        cached = self._resolve(fields, True)
                        memo[key] = cached
                        self._insert(key, cached[0], version, cached[1])
                    else:
                        if cached[0] is not None:
                            cached[0].stats.record(frame_length(fields))
                    outcome, captured = cached
                    assert captured is not None
                    _replay_mask(captured, masks[position])
                    resolved.append(outcome)
            elif hasattr(self.table, "lookup_batch"):
                resolved = self.table.lookup_batch(miss_fields)
                for fields, outcome in zip(miss_fields, resolved):
                    self._insert(self.key(fields), outcome, version, None)
            else:
                resolved = []
                for fields in miss_fields:
                    outcome = self.table.lookup(fields)
                    self._insert(self.key(fields), outcome, version, None)
                    resolved.append(outcome)
            for position, outcome in zip(miss_positions, resolved):
                results[position] = outcome
        return results

    def lookup_batch_columnar(
        self, batch: PacketBatch
    ) -> list[FlowEntry | None]:
        """Vectorized batch lookup over a columnar
        :class:`~repro.packet.batch.PacketBatch` — the fast path.

        One numpy pass computes a uint64 key hash per distinct *row*
        (lanes and presence bytes of the schema fields, so ``frame_len``
        and other non-match metadata never enter the key); each row is
        then a single hash probe verified against the exact packed key
        bytes.  Hits replay without materialising a dict anywhere: the
        matched entries' stats are credited from the ``frame_len`` lane,
        aggregated per row.  Only rows that miss are materialised (once,
        aliased across duplicates) and resolved through the table's
        batch path, exactly like :meth:`lookup_batch` — so results and
        per-entry flow stats are bitwise-identical to the dict path.
        """
        version = self.table.version
        sig, hashes, packed = batch.probe_keys(self.field_names)
        pick = batch.pick
        probe = self._columnar.get
        move_to_end = self._entries.move_to_end

        # Everything below works in *local* row codes (0..distinct rows
        # of this view), so chunked views of a large store never touch
        # arrays sized by the whole event.
        uniq, inverse = np.unique(pick, return_inverse=True)
        rows = uniq.tolist()
        outcome_of: list = [None] * len(rows)
        hit_records: list[tuple[int, _Record]] = []
        miss_locals: list[int] = []
        for local, row in enumerate(rows):
            record = probe(hashes[row])
            if (
                record is not None
                and record.version == version
                and record.packed == packed[row]
                and (record.sig is sig or record.sig == sig)
            ):
                hit_records.append((local, record))
                if record.outcome is not _MISS:
                    outcome_of[local] = record.outcome
                move_to_end(record.key)
            else:
                miss_locals.append(local)

        if miss_locals:
            # Rescue rows the *dict* path cached (they have no sidecar
            # entry): the tuple key is cheap here because a genuine miss
            # would materialise the row for table resolution anyway.
            # Found records are promoted into the sidecar, so a cache
            # warmed by dict batches serves columnar traffic at full
            # speed after this one touch instead of re-resolving a whole
            # working-set pass through the table.
            still_missing: list[int] = []
            for local in miss_locals:
                row = rows[local]
                key = self.key(batch.row_fields(row))
                record = self._entries.get(key)
                if record is not None and record.version == version:
                    # Drop any previous sidecar slot first (a layout
                    # change re-hashes the same key), so eviction can
                    # always unindex the record it finds.
                    self._unindex(record)
                    record.chash = hashes[row]
                    record.sig = sig
                    record.packed = packed[row]
                    self._columnar[hashes[row]] = record
                    hit_records.append((local, record))
                    if record.outcome is not _MISS:
                        outcome_of[local] = record.outcome
                    move_to_end(key)
                else:
                    if record is not None:
                        # Same semantics as the dict path: a stale stamp
                        # on an existing key re-resolves in place.
                        self.revalidations += 1
                    still_missing.append(local)
            miss_locals = still_missing

        if hit_records:
            # Hit replay without dicts: per-row stats aggregated from the
            # frame_len lane (bincount sums are exact below 2**53 bytes),
            # counters credited per position.
            counts = np.bincount(inverse, minlength=len(rows)).tolist()
            byte_sums = np.bincount(
                inverse, weights=batch.frame_lengths(), minlength=len(rows)
            ).tolist()
            for local, record in hit_records:
                count = counts[local]
                self.hits += count
                if record.outcome is not _MISS:
                    record.outcome.stats.add(count, int(byte_sums[local]))

        if miss_locals:
            local_is_miss = np.zeros(len(rows), dtype=bool)
            local_is_miss[miss_locals] = True
            miss_positions = np.nonzero(local_is_miss[inverse])[0].tolist()
            miss_fields = [batch.fields_at(i) for i in miss_positions]
            self.misses += len(miss_positions)
            if hasattr(self.table, "lookup_batch"):
                resolved = self.table.lookup_batch(miss_fields)
            else:
                resolved = [self.table.lookup(fields) for fields in miss_fields]
            inverse_list = inverse.tolist()
            inserted: set[int] = set()
            for position, fields, outcome in zip(
                miss_positions, miss_fields, resolved
            ):
                local = inverse_list[position]
                if local in inserted:
                    continue  # duplicates of one row share the outcome
                inserted.add(local)
                outcome_of[local] = outcome
                row = rows[local]
                self._insert(
                    self.key(fields),
                    outcome,
                    version,
                    None,
                    chash=hashes[row],
                    sig=sig,
                    packed=packed[row],
                )
            return [outcome_of[local] for local in inverse_list]
        return [outcome_of[local] for local in inverse.tolist()]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _outcome(
        self, record: _Record, packet_fields: Mapping[str, int]
    ) -> FlowEntry | None:
        """Resolve a cache hit, recording the *hitting* packet's frame
        length (records are shared across every packet of the microflow,
        but byte counters are per packet)."""
        if record.outcome is _MISS:
            return None
        entry = record.outcome
        assert isinstance(entry, FlowEntry)
        entry.stats.record(frame_length(packet_fields))
        return entry

    def _resolve(
        self, packet_fields: Mapping[str, int], want_mask: bool
    ) -> tuple[FlowEntry | None, dict[str, int] | None]:
        if want_mask:
            sink = FieldMaskSink()
            return self.table.lookup(packet_fields, mask=sink), sink.fields
        return self.table.lookup(packet_fields), None

    def _capture_mask(self, packet_fields: Mapping[str, int]) -> dict[str, int]:
        """Backfill the consulted-bits mask for a record cached without
        one (the cache was used mask-less first); the mask is a pure
        function of the key and the table's current structures.

        Prefers the table's side-effect-free ``consulted_mask`` so a
        cache *hit* never double-counts lookup counters or flow stats;
        the lookup fallback covers schema-only table stand-ins.
        """
        consulted = getattr(self.table, "consulted_mask", None)
        if consulted is not None:
            return consulted(packet_fields)
        sink = FieldMaskSink()
        self.table.lookup(packet_fields, mask=sink)
        return sink.fields

    def _insert(
        self,
        key: tuple,
        entry: FlowEntry | None,
        version: int,
        mask: dict[str, int] | None,
        chash: int | None = None,
        sig: object = None,
        packed: bytes | None = None,
    ) -> None:
        previous = self._entries.get(key)
        if previous is not None:
            self._unindex(previous)
        record = _Record(_MISS if entry is None else entry, version, mask)
        record.key = key
        self._entries[key] = record
        self._entries.move_to_end(key)
        if chash is not None:
            record.chash = chash
            record.sig = sig
            record.packed = packed
            self._columnar[chash] = record
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self._unindex(evicted)

    def _unindex(self, record: _Record) -> None:
        if (
            record.chash is not None
            and self._columnar.get(record.chash) is record
        ):
            del self._columnar[record.chash]


def _replay_mask(captured: dict[str, int], mask: ConsultSink) -> None:
    for name, bits in captured.items():
        mask.consult(name, bits)
