"""Exact-match microflow cache (the Open vSwitch fast-path pattern).

A :class:`MicroflowCache` sits in front of one flow table and memoizes
full lookups keyed on the *exact* tuple of the table's match-field values
— the definition of a microflow.  Two packets with identical header
fields necessarily classify identically, so a cache hit skips the whole
decomposition (or scan) path.

Invalidation follows the Open vSwitch rule: any flow-table mutation may
change the classification of arbitrary cached keys (a new wildcard rule
can cover many microflows), so the only sound per-mutation response is a
full flush.  Rather than wrapping the table's mutation interface, the
cache watches the table's ``version`` counter — bumped by ``add`` /
``remove`` / ``remove_where`` on both :class:`~repro.openflow.table.FlowTable`
and :class:`~repro.core.lookup_table.OpenFlowLookupTable` — and flushes
lazily on the next lookup after a change.  Mutating the table directly
(not through any wrapper) therefore stays safe.

Misses are cached too (negative caching): a miss is just another
classification outcome, and the flush-on-mutation rule keeps it correct.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

from repro.openflow.flow import FlowEntry

#: Sentinel distinguishing a cached miss from an absent key.
_MISS = object()

DEFAULT_CAPACITY = 4096


class MicroflowCache:
    """LRU exact-match cache in front of one flow table.

    Args:
        table: the backing table; must expose ``lookup`` and a
            ``version`` mutation counter.  ``lookup_batch`` is used for
            miss resolution when available.
        capacity: maximum cached microflows; least recently used entries
            are evicted beyond it.
        field_names: the match schema the cache keys on; defaults to the
            table's own ``field_names``.
    """

    def __init__(
        self,
        table,
        capacity: int = DEFAULT_CAPACITY,
        field_names: tuple[str, ...] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        names = field_names if field_names is not None else getattr(
            table, "field_names", None
        )
        if names is None:
            raise ValueError(
                "table has no field_names; pass field_names= explicitly"
            )
        if not hasattr(table, "version"):
            raise ValueError(
                "table exposes no version counter; the cache cannot "
                "detect mutations and would serve stale results"
            )
        self.table = table
        self.capacity = capacity
        self.field_names = tuple(names)
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._seen_version = table.version
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(self, packet_fields: Mapping[str, int]) -> tuple:
        """The microflow key: the exact tuple of schema-field values."""
        return tuple(packet_fields.get(name) for name in self.field_names)

    def flush(self) -> None:
        """Drop every cached microflow."""
        if self._entries:
            self.flushes += 1
        self._entries.clear()

    def _check_version(self) -> None:
        version = self.table.version
        if version != self._seen_version:
            self.flush()
            self._seen_version = version

    def _insert(self, key: tuple, entry: FlowEntry | None) -> None:
        self._entries[key] = _MISS if entry is None else entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def lookup(self, packet_fields: Mapping[str, int]) -> FlowEntry | None:
        """Cached highest-priority match for one packet."""
        self._check_version()
        key = self.key(packet_fields)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            if cached is _MISS:
                return None
            assert isinstance(cached, FlowEntry)
            cached.stats.record()
            return cached
        self.misses += 1
        entry = self.table.lookup(packet_fields)
        self._insert(key, entry)
        return entry

    def lookup_batch(
        self, batch_fields: Sequence[Mapping[str, int]]
    ) -> list[FlowEntry | None]:
        """Cached batch lookup: hits resolve from the cache, the misses go
        to the table's batch path in one call."""
        self._check_version()
        results: list[FlowEntry | None] = [None] * len(batch_fields)
        miss_positions: list[int] = []
        miss_fields: list[Mapping[str, int]] = []
        for i, fields in enumerate(batch_fields):
            key = self.key(fields)
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                if cached is _MISS:
                    results[i] = None
                else:
                    assert isinstance(cached, FlowEntry)
                    cached.stats.record()
                    results[i] = cached
            else:
                self.misses += 1
                miss_positions.append(i)
                miss_fields.append(fields)
        if miss_fields:
            if hasattr(self.table, "lookup_batch"):
                resolved = self.table.lookup_batch(miss_fields)
            else:
                resolved = [self.table.lookup(f) for f in miss_fields]
            for position, fields, entry in zip(
                miss_positions, miss_fields, resolved
            ):
                results[position] = entry
                self._insert(self.key(fields), entry)
        return results
