"""Worker supervision: failure taxonomy, budgets and wait policies.

The sharded runtime assumed immortal workers until PR 7: a dead shard
parked every collect path in a bare blocking ``recv()`` forever and
stranded its shared-memory response ring.  This module holds the
parent-side policy objects the recovery layer in
:mod:`repro.runtime.shard` is built on:

**Failure taxonomy.**  Every worker failure is classified as one of

- *crash* — the process died (its sentinel fired, or the pipe raised
  ``BrokenPipeError``/``EOFError``/``ConnectionResetError``);
- *wedge* — the process is alive but no reply arrived within the
  configured deadline; the supervisor escalates by killing it, after
  which it is handled like a crash;
- *poison batch* — the same batch killed a worker twice.  Replaying it
  a third time would loop forever, so it is classified in-process
  instead (results stay bitwise-identical — see the replay invariant
  below).

**Replay invariant.**  Every submitted batch pins its mutation-log
prefix and entry order at submission (PR 4), and request blocks are
parent-owned and immutable while in flight.  A replacement worker
built from the current :class:`~repro.runtime.shard.PipelineSpec`
therefore reproduces the lost worker's replies *bitwise-identically*
by replaying each lost seq in order with the log suffix recomputed
from its fresh cursor — recovery is a re-send, never a re-encode, and
the parent's merged results and flow-stats deltas cannot tell a
replayed batch from a first-try one.

**Budgets and degradation.**  Each worker may be respawned
``restart_budget`` times; past that, ``fallback`` decides: ``"inline"``
classifies the dead shard's traffic in-process on the parent's own
replica, ``"redistribute"`` reassigns it to surviving workers, and
``"raise"`` propagates a :class:`WorkerCrashError`.  Either degraded
mode preserves bitwise-identical results by the same replay invariant.

``docs/architecture.md`` ("Supervision") situates this layer in the
runtime stack; with shared sealed rule state
(:mod:`repro.runtime.rulestate`) respawn is O(1) in rules, so the
recovery path stays cheap at 10^5+ rule tables.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from multiprocessing import connection as mp_connection
from typing import Literal

FailureKind = Literal["crash", "wedge"]
Fallback = Literal["inline", "redistribute", "raise"]
WaitOutcome = Literal["ready", "crash", "wedge"]


class WorkerCrashError(RuntimeError):
    """A shard worker died and recovery was configured off
    (``fallback="raise"``) or impossible."""


class PoisonBatchError(WorkerCrashError):
    """The same batch killed a worker twice; with ``fallback="raise"``
    the parent refuses to replay it a third time."""


@dataclass(frozen=True)
class SupervisionConfig:
    """Parent-side failure policy for one sharded runner.

    Args:
        deadline: seconds a collect wait may go without progress before
            a worker is declared *wedged* and killed.  ``None`` (the
            default) waits indefinitely — crash detection via the
            process sentinel stays armed, wedge detection is opt-in.
        initial_interval / max_interval: the exponential-backoff wait
            slices used while a deadline is armed; each fruitless wait
            doubles the slice up to ``max_interval``.
        restart_budget: respawns allowed per worker before it is
            permanently degraded.  ``0`` disables respawning — every
            failure goes straight to ``fallback``.
        fallback: what to do past the budget — ``"inline"`` classifies
            the dead shard's traffic in-process, ``"redistribute"``
            reroutes future batches to surviving workers (in-flight
            replays still run inline: their request blocks named only
            the dead worker's member rows), ``"raise"`` propagates
            :class:`WorkerCrashError`.
    """

    deadline: float | None = None
    initial_interval: float = 0.05
    max_interval: float = 1.0
    restart_budget: int = 2
    fallback: Fallback = "inline"

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.restart_budget < 0:
            raise ValueError(
                f"restart budget must be >= 0, got {self.restart_budget}"
            )
        if self.initial_interval <= 0 or self.max_interval <= 0:
            raise ValueError("backoff intervals must be positive")


@dataclass
class SupervisionStats:
    """Cumulative recovery counters (all zero on a healthy run)."""

    crashes: int = 0
    wedges: int = 0
    restarts: int = 0
    replayed_batches: int = 0
    poison_batches: int = 0
    inline_packets: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass
class WorkerSupervisor:
    """Per-runner supervision state: failure counts, degraded workers,
    the crash-safe shm block registry and the poison-batch ledger.

    The *block registry* is the parent-side mirror of every shared
    segment a worker owns (its response ring).  Workers announce each
    segment name *before* creating it, so even a death mid-create
    leaves the registry a superset of reality — unlinking a
    never-created name is a no-op, and recovery can always clean up
    after a worker whose own finalize guards died with it.
    """

    workers: int
    config: SupervisionConfig = field(default_factory=SupervisionConfig)
    stats: SupervisionStats = field(default_factory=SupervisionStats)
    failures: list[int] = field(default_factory=list)
    disabled: set[int] = field(default_factory=set)
    #: worker → names of shm segments that worker owns (announced).
    blocks: list[set[str]] = field(default_factory=list)
    #: seq → how many workers died holding it at the head of their
    #: pending queue; two deaths classify the batch as poison.
    seq_deaths: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.failures:
            self.failures = [0] * self.workers
        if not self.blocks:
            self.blocks = [set() for _ in range(self.workers)]

    # -- block registry ------------------------------------------------

    def register_block(self, worker: int, name: str) -> None:
        self.blocks[worker].add(name)

    def drain_blocks(self, worker: int) -> tuple[str, ...]:
        """All block names registered for ``worker``, clearing them."""
        names = tuple(sorted(self.blocks[worker]))
        self.blocks[worker].clear()
        return names

    # -- failure accounting --------------------------------------------

    def record_failure(self, worker: int, kind: FailureKind) -> None:
        if kind == "wedge":
            self.stats.wedges += 1
        else:
            self.stats.crashes += 1
        self.failures[worker] += 1

    def record_death_at(self, seq: int) -> bool:
        """Note that a worker died with ``seq`` at the head of its
        pending queue; True once that makes the batch poison."""
        deaths = self.seq_deaths.get(seq, 0) + 1
        self.seq_deaths[seq] = deaths
        poisoned = deaths >= 2
        if poisoned:
            self.stats.poison_batches += 1
        return poisoned

    def within_budget(self, worker: int) -> bool:
        return self.failures[worker] <= self.config.restart_budget

    def disable(self, worker: int) -> None:
        self.disabled.add(worker)

    def reset(self) -> None:
        """Forget per-run state (a closed runner respawns a full fleet);
        cumulative :attr:`stats` survive for reporting."""
        self.failures = [0] * self.workers
        self.disabled.clear()
        self.seq_deaths.clear()
        for names in self.blocks:
            names.clear()


def await_readable(
    conn: mp_connection.Connection,
    sentinel: int,
    config: SupervisionConfig,
) -> WaitOutcome:
    """Sentinel-aware bounded wait for one worker's reply pipe.

    Waits on ``[conn, sentinel]`` so a dying worker wakes the parent
    immediately instead of leaving it parked in a blocking ``recv()``.
    With a deadline configured the wait runs in exponential-backoff
    slices and classifies deadline expiry as ``"wedge"``; without one
    it blocks until the pipe is readable or the sentinel fires.

    A fired sentinel with data still buffered reports ``"ready"`` —
    replies a worker sent before dying are valid and must be drained
    before the death is handled.
    """
    deadline = config.deadline
    started = time.monotonic()  # repro-lint: disable=wall-clock-ban
    interval = config.initial_interval
    while True:
        timeout: float | None = None
        if deadline is not None:
            elapsed = time.monotonic() - started  # repro-lint: disable=wall-clock-ban
            remaining = deadline - elapsed
            if remaining <= 0:
                return "wedge"
            timeout = min(interval, remaining)
            interval = min(interval * 2, config.max_interval)
        ready = mp_connection.wait([conn, sentinel], timeout)
        if not ready:
            continue
        if conn in ready or conn.poll(0):
            return "ready"
        return "crash"
